// Dialer is the one client-construction surface for everything that
// crosses a home boundary. It replaces the four ad-hoc constructions
// that grew over PRs 3–7 — Client(), ClientWithTimeout(), NewAuthClient,
// MemNet.AuthClient — with a single object that owns:
//
//   - credentials: per-operation request signing on the SOAP/HTTP path
//     (exactly what NewAuthClientOver built), and the session handshake
//     on the binary path;
//   - protocol negotiation: whether a given authority speaks the binary
//     fast path, discovered once and remembered, with degradation back
//     to SOAP that never drops application state (the request body —
//     watch cursor included — is simply re-sent over HTTP);
//   - the MemNet seam: a custom RoundTripper carries the HTTP path, and
//     confines binary negotiation to in-process authorities.
//
// soap, uddi, events, upnp and peer clients take a *Dialer; the old
// entry points remain as deprecated aliases so out-of-tree callers keep
// compiling.
package transport

import (
	"context"
	"errors"
	"fmt"
	"net"
	"net/http"
	"net/url"
	"sync"
	"time"
)

// ErrBinaryUnavailable reports that the binary fast path is not (or no
// longer) negotiated for an authority; the caller re-issues the same
// request over SOAP/HTTP. It is a routing signal, not a failure of the
// request itself.
var ErrBinaryUnavailable = errors.New("transport: binary fast path unavailable")

// errLaneClosed marks a local lane whose server has shut down.
var errLaneClosed = errors.New("transport: binary lane closed")

// Link modes.
const (
	modeUnknown = iota // not yet probed
	modeBinary         // handshake succeeded at least once
	modeSOAP           // refused, failed, or downgraded — HTTP only
)

const (
	// binDialTimeout bounds the TCP probe + handshake on first contact.
	binDialTimeout = 3 * time.Second
	// binReprobeInterval is how long a downgraded authority stays
	// SOAP-only before a fresh negotiation attempt.
	binReprobeInterval = time.Minute
	// maxIdleBinLinks bounds pooled idle links per authority; a watch
	// long-poll occupies one, calls share the rest.
	maxIdleBinLinks = 4
)

// LinkStats is one authority's wire-mode state, surfaced through
// Federation.Health (homeconnect.WireStats re-exports the map).
type LinkStats struct {
	// Protocol is "binary" when the fast path is negotiated, "soap"
	// when the authority is on the HTTP fallback.
	Protocol string `json:"protocol"`
	// SessionAgeMS is the age of the newest session, milliseconds.
	SessionAgeMS int64 `json:"session_age_ms,omitempty"`
	// Handshakes counts completed session handshakes (establishes and
	// rekeys both).
	Handshakes uint64 `json:"handshakes"`
	// Rekeys counts in-place session renewals on lifetime expiry.
	Rekeys uint64 `json:"rekeys"`
	// Downgrades counts binary→SOAP degradations (transport failure or
	// protocol fault mid-session).
	Downgrades uint64 `json:"downgrades"`
}

// WireStats maps authority ("host:port") to its link state.
type WireStats map[string]LinkStats

// Dialer owns credentials, protocol negotiation and the transport seam
// for one principal (usually one home). Configure fields before first
// use; the zero value is an anonymous, SOAP-only dialer over the shared
// TCP transport.
type Dialer struct {
	// Creds signs SOAP/HTTP requests per-operation and verifies
	// response signatures; nil or inactive means plain HTTP (open
	// mode).
	Creds Credentials
	// Session is the binary handshake provider; nil or inactive
	// disables fast-path negotiation entirely.
	Session SessionAuth
	// Transport, when set, carries the HTTP path (the MemNet seam) and
	// restricts binary negotiation to in-process authorities.
	Transport http.RoundTripper
	// Binary gates fast-path negotiation. NewDialer turns it on when
	// the credentials can run session handshakes.
	Binary bool
	// Timeout, when set, bounds each HTTP request (the old
	// ClientWithTimeout behaviour).
	Timeout time.Duration

	mu    sync.Mutex
	httpC *http.Client
	links map[string]*linkState
	nowFn func() time.Time
}

// linkState is one authority's negotiation state and link pool.
type linkState struct {
	mode       int
	retryAt    time.Time // earliest re-probe after a downgrade
	idle       []*binLink
	handshakes uint64
	rekeys     uint64
	downgrades uint64
	lastStart  time.Time // newest session establishment
}

// NewDialer builds a dialer for the given credentials. When the
// credentials also implement SessionAuth (a home identity does), binary
// negotiation is enabled; open-mode dialers stay SOAP-only and
// byte-identical to the pre-session wire.
func NewDialer(creds Credentials) *Dialer {
	d := &Dialer{Creds: creds}
	if sa, ok := creds.(SessionAuth); ok && creds != nil {
		d.Session = sa
		d.Binary = true
	}
	return d
}

// now returns the dialer clock.
func (d *Dialer) now() time.Time {
	if d.nowFn != nil {
		return d.nowFn()
	}
	return time.Now()
}

// setClock overrides the dialer clock (tests force expiry with it).
func (d *Dialer) setClock(now func() time.Time) {
	d.mu.Lock()
	d.nowFn = now
	d.mu.Unlock()
}

// HTTPClient returns the SOAP/HTTP side of the dialer: per-operation
// signing when credentials are present, over Transport or the shared
// keep-alive transport. The client is built once and reused.
func (d *Dialer) HTTPClient() *http.Client {
	d.mu.Lock()
	defer d.mu.Unlock()
	if d.httpC != nil {
		return d.httpC
	}
	rt := d.Transport
	if rt == nil {
		rt = Shared()
	}
	if d.Creds != nil {
		d.httpC = &http.Client{Transport: &authRoundTripper{creds: d.Creds, next: rt}, Timeout: d.Timeout}
	} else {
		d.httpC = &http.Client{Transport: rt, Timeout: d.Timeout}
	}
	return d.httpC
}

// binaryEligible reports whether fast-path negotiation is even possible.
func (d *Dialer) binaryEligible() bool {
	return d.Binary && d.Session != nil && d.Session.SessionActive()
}

// link returns (creating if needed) the state for an authority.
func (d *Dialer) link(authority string) *linkState {
	d.mu.Lock()
	defer d.mu.Unlock()
	if d.links == nil {
		d.links = make(map[string]*linkState)
	}
	st := d.links[authority]
	if st == nil {
		st = &linkState{}
		d.links[authority] = st
	}
	return st
}

// BinResult is a completed binary exchange.
type BinResult struct {
	// Status is the HTTP-equivalent status code, so binary and SOAP
	// responses classify identically.
	Status      int
	ContentType string
	Body        []byte
}

// Exchange runs one request over the binary fast path to rawURL's
// authority. ErrBinaryUnavailable means the authority has not (or no
// longer) negotiated binary — re-send the same body over HTTPClient();
// because the request body carries all application state (watch cursors
// included), nothing is lost in the downgrade. Context cancellation
// surfaces as the context's error, never as a downgrade.
func (d *Dialer) Exchange(ctx context.Context, rawURL, contentType, action string, body []byte) (*BinResult, error) {
	if !d.binaryEligible() {
		return nil, ErrBinaryUnavailable
	}
	u, err := url.Parse(rawURL)
	if err != nil || u.Host == "" {
		return nil, ErrBinaryUnavailable
	}
	authority, path := u.Host, u.Path
	if path == "" {
		path = "/"
	}
	st := d.link(authority)

	l, err := d.acquire(st, authority)
	if err != nil {
		return nil, err
	}
	res, err := l.exchange(ctx, path, contentType, action, body)
	if err != nil {
		l.discard()
		if ctx.Err() != nil {
			return nil, fmt.Errorf("transport: binary exchange: %w", ctx.Err())
		}
		d.downgrade(st)
		return nil, fmt.Errorf("%w: %v", ErrBinaryUnavailable, err)
	}
	d.release(st, l)
	return res, nil
}

// acquire pops an idle link for the authority or negotiates a new one.
func (d *Dialer) acquire(st *linkState, authority string) (*binLink, error) {
	now := d.now()
	d.mu.Lock()
	if st.mode == modeSOAP && now.Before(st.retryAt) {
		d.mu.Unlock()
		return nil, ErrBinaryUnavailable
	}
	if n := len(st.idle); n > 0 {
		l := st.idle[n-1]
		st.idle = st.idle[:n-1]
		d.mu.Unlock()
		return l, nil
	}
	d.mu.Unlock()

	l, err := d.negotiate(st, authority)
	if err != nil {
		d.mu.Lock()
		st.mode = modeSOAP
		st.retryAt = now.Add(binReprobeInterval)
		d.mu.Unlock()
		return nil, fmt.Errorf("%w: %v", ErrBinaryUnavailable, err)
	}
	d.mu.Lock()
	st.mode = modeBinary
	st.handshakes++
	st.lastStart = now
	d.mu.Unlock()
	return l, nil
}

// negotiate establishes one new link: the in-process registry first,
// then — only on the default TCP transport — a dial with the BinMagic
// preamble and a handshake.
func (d *Dialer) negotiate(st *linkState, authority string) (*binLink, error) {
	if srv := lookupLocal(authority); srv != nil {
		lane, err := newLocalLane(d.Session, srv)
		if err != nil {
			return nil, err
		}
		return &binLink{d: d, st: st, lane: lane}, nil
	}
	if d.Transport != nil {
		// A custom transport (MemNet) has no socket to dial.
		return nil, fmt.Errorf("no in-process binary endpoint for %s", authority)
	}
	conn, err := net.DialTimeout("tcp", authority, binDialTimeout)
	if err != nil {
		return nil, err
	}
	deadline := time.Now().Add(binDialTimeout)
	conn.SetDeadline(deadline)
	hc, err := d.Session.NewSessionClient()
	if err != nil {
		conn.Close()
		return nil, err
	}
	hello := appendFrame([]byte(BinMagic), encodeHello(hc.Hello()))
	if _, err := conn.Write(hello); err != nil {
		conn.Close()
		return nil, err
	}
	payload, _, err := readFrame(conn, nil)
	if err != nil {
		conn.Close()
		return nil, err
	}
	sess, err := finishAccept(hc, payload)
	if err != nil {
		conn.Close()
		return nil, err
	}
	conn.SetDeadline(time.Time{})
	return &binLink{d: d, st: st, conn: conn, sess: sess}, nil
}

// finishAccept folds an accept-or-error payload into a session.
func finishAccept(hc SessionClient, payload []byte) (*Session, error) {
	if len(payload) == 0 {
		return nil, fmt.Errorf("transport: empty handshake reply")
	}
	switch payload[0] {
	case opAccept:
		blob, err := decodeBlob(payload)
		if err != nil {
			return nil, err
		}
		return hc.Finish(blob)
	case opError:
		code, msg, err := decodeError(payload)
		if err != nil {
			return nil, err
		}
		return nil, fmt.Errorf("transport: peer refused binary handshake (%s): %s", code, msg)
	default:
		return nil, fmt.Errorf("transport: unexpected handshake op %q", payload[0])
	}
}

// release returns a healthy link to the pool (bounded; overflow closes).
func (d *Dialer) release(st *linkState, l *binLink) {
	d.mu.Lock()
	if len(st.idle) < maxIdleBinLinks {
		st.idle = append(st.idle, l)
		d.mu.Unlock()
		return
	}
	d.mu.Unlock()
	l.discard()
}

// downgrade records a binary→SOAP degradation for an authority. Pooled
// links are dropped; the authority re-probes after binReprobeInterval.
func (d *Dialer) downgrade(st *linkState) {
	d.mu.Lock()
	st.mode = modeSOAP
	st.retryAt = d.now().Add(binReprobeInterval)
	st.downgrades++
	idle := st.idle
	st.idle = nil
	d.mu.Unlock()
	for _, l := range idle {
		l.discard()
	}
}

// noteRekey counts one in-place session renewal.
func (d *Dialer) noteRekey(st *linkState) {
	d.mu.Lock()
	st.rekeys++
	st.handshakes++
	st.lastStart = d.now()
	d.mu.Unlock()
}

// ProtocolFor reports the negotiated protocol for a URL's authority:
// "binary", "soap", or "" when the authority has never been dialed.
func (d *Dialer) ProtocolFor(rawURL string) string {
	u, err := url.Parse(rawURL)
	if err != nil || u.Host == "" {
		return ""
	}
	d.mu.Lock()
	defer d.mu.Unlock()
	st := d.links[u.Host]
	if st == nil {
		return ""
	}
	switch st.mode {
	case modeBinary:
		return "binary"
	case modeSOAP:
		return "soap"
	}
	return ""
}

// WireStatsSnapshot reports every dialed authority's link state.
func (d *Dialer) WireStatsSnapshot() WireStats {
	now := d.now()
	d.mu.Lock()
	defer d.mu.Unlock()
	out := make(WireStats, len(d.links))
	for authority, st := range d.links {
		ls := LinkStats{Protocol: "soap", Handshakes: st.handshakes,
			Rekeys: st.rekeys, Downgrades: st.downgrades}
		if st.mode == modeBinary {
			ls.Protocol = "binary"
			if !st.lastStart.IsZero() {
				ls.SessionAgeMS = now.Sub(st.lastStart).Milliseconds()
			}
		}
		out[authority] = ls
	}
	return out
}

// Close drops every pooled link, ending their sessions.
func (d *Dialer) Close() {
	d.mu.Lock()
	var all []*binLink
	for _, st := range d.links {
		all = append(all, st.idle...)
		st.idle = nil
	}
	d.mu.Unlock()
	for _, l := range all {
		l.discard()
	}
}

// binLink is one pooled fast-path link: either an in-process lane or a
// TCP connection with its session. Links are used serially; the pool
// provides concurrency.
type binLink struct {
	d  *Dialer
	st *linkState

	// Exactly one of lane / conn is set.
	lane *localLane
	conn net.Conn
	sess *Session // TCP-side session (lane keeps its own pair)
	buf  []byte   // readFrame buffer, reused across exchanges
	enc  []byte   // encoded request payload scratch (conn path)
	wbuf []byte   // framed request scratch (conn path)
}

// copyBody detaches a response body from the link's reusable buffers
// before the link goes back to the pool — the one steady-state copy the
// fast path pays so callers can hold results indefinitely.
func copyBody(b []byte) []byte {
	if len(b) == 0 {
		return nil
	}
	return append([]byte(nil), b...)
}

// exchange runs one request, rekeying in place when the session lifetime
// has elapsed (proactively on the dialer clock, or reactively when the
// listener says 'E' expired).
func (l *binLink) exchange(ctx context.Context, path, contentType, action string, body []byte) (*BinResult, error) {
	now := l.d.now()
	if l.lane != nil {
		if l.lane.client.Expired(now) {
			if err := l.lane.rekey(l.d.Session); err != nil {
				return nil, err
			}
			l.d.noteRekey(l.st)
		}
		resp, err := l.lane.exchange(ctx, path, contentType, action, body)
		if errors.Is(err, errSessionExpired) {
			// Listener clock ran ahead of ours: rekey and retry once.
			if err := l.lane.rekey(l.d.Session); err != nil {
				return nil, err
			}
			l.d.noteRekey(l.st)
			resp, err = l.lane.exchange(ctx, path, contentType, action, body)
		}
		if err != nil {
			return nil, err
		}
		return &BinResult{Status: resp.Status, ContentType: resp.ContentType, Body: copyBody(resp.Body)}, nil
	}
	if l.sess.Expired(now) {
		if err := l.rekeyConn(); err != nil {
			return nil, err
		}
		l.d.noteRekey(l.st)
	}
	resp, retry, err := l.exchangeConn(ctx, path, contentType, action, body)
	if retry {
		if err := l.rekeyConn(); err != nil {
			return nil, err
		}
		l.d.noteRekey(l.st)
		resp, _, err = l.exchangeConn(ctx, path, contentType, action, body)
	}
	if err != nil {
		return nil, err
	}
	return &BinResult{Status: resp.Status, ContentType: resp.ContentType, Body: copyBody(resp.Body)}, nil
}

// exchangeConn runs one request over the TCP link. retry reports an 'E'
// expired reply — the session should be rekeyed and the request re-sent.
func (l *binLink) exchangeConn(ctx context.Context, path, contentType, action string, body []byte) (resp binResponse, retry bool, err error) {
	if deadline, ok := ctx.Deadline(); ok {
		l.conn.SetDeadline(deadline)
		defer l.conn.SetDeadline(time.Time{})
	}
	stop := watchCtx(ctx, l.conn)
	defer stop()
	ctr := l.sess.peekSendCtr()
	l.enc = encodeRequest(l.enc[:0], l.sess, path, contentType, action, body)
	l.wbuf = appendFrame(l.wbuf[:0], l.enc)
	if _, err := l.conn.Write(l.wbuf); err != nil {
		return binResponse{}, false, err
	}
	payload, nbuf, err := readFrame(l.conn, l.buf)
	if err != nil {
		return binResponse{}, false, err
	}
	l.buf = nbuf
	if len(payload) > 0 && payload[0] == opError {
		code, msg, derr := decodeError(payload)
		if derr != nil {
			return binResponse{}, false, derr
		}
		if code == binErrExpired {
			return binResponse{}, true, nil
		}
		return binResponse{}, false, fmt.Errorf("transport: peer reported %s: %s", code, msg)
	}
	resp, err = decodeResponse(l.sess, payload, ctr)
	return resp, false, err
}

// rekeyConn renews the TCP link's session with an in-place hello.
func (l *binLink) rekeyConn() error {
	hc, err := l.d.Session.NewSessionClient()
	if err != nil {
		return err
	}
	l.conn.SetDeadline(time.Now().Add(binDialTimeout))
	defer l.conn.SetDeadline(time.Time{})
	if err := writeFrame(l.conn, encodeHello(hc.Hello())); err != nil {
		return err
	}
	payload, nbuf, err := readFrame(l.conn, l.buf)
	if err != nil {
		return err
	}
	l.buf = nbuf
	sess, err := finishAccept(hc, payload)
	if err != nil {
		return err
	}
	l.d.Session.NoteSessionEnd(l.sess, true)
	l.sess = sess
	return nil
}

// discard closes the link for good.
func (l *binLink) discard() {
	if l.lane != nil {
		l.lane.close(l.d.Session)
		l.lane = nil
		return
	}
	if l.conn != nil {
		if l.sess != nil {
			l.d.Session.NoteSessionEnd(l.sess, false)
		}
		l.conn.Close()
		l.conn = nil
	}
}

// watchCtx interrupts a blocking conn read/write when ctx is canceled;
// the returned stop must be called when the exchange completes.
func watchCtx(ctx context.Context, conn net.Conn) (stop func()) {
	if ctx.Done() == nil {
		return func() {}
	}
	done := make(chan struct{})
	go func() {
		select {
		case <-ctx.Done():
			conn.SetDeadline(time.Unix(1, 0)) // unblock immediately
		case <-done:
		}
	}()
	return func() { close(done) }
}
