// Session-keyed authentication for the binary fast path: one signed
// mutual handshake per connection establishes an HMAC session, so
// steady-state operations pay a MAC instead of the per-operation ed25519
// sign/verify the SOAP path carries. The handshake itself is owned by a
// SessionAuth provider (internal/core/identity); the transport only sees
// opaque blobs and the resulting Session key material.
package transport

import (
	"crypto/hmac"
	"crypto/sha256"
	"fmt"
	"hash"
	"sync"
	"time"
)

// Session is one direction-pair of HMAC keys established by a signed
// handshake, bound to a single binary connection (or one in-process
// lane). Counters are strictly increasing per direction; because every
// connection is serial, a gap or repeat can only mean replay or loss.
type Session struct {
	// ID names the session in audit events; it is derived from the
	// handshake transcript, not from key material.
	ID string
	// Peer is the authenticated remote home.
	Peer string
	// Established and Expiry bound the session lifetime; an expired
	// session is rekeyed in place by a fresh handshake on the same
	// connection.
	Established time.Time
	Expiry      time.Time

	sendKey [32]byte
	recvKey [32]byte

	mu      sync.Mutex
	sendCtr uint64
	recvCtr uint64
	// sendMAC/recvMAC are lazily built HMAC states reused (via Reset)
	// across the session's frames, so steady-state MACs skip the key
	// schedule and its allocations. Guarded by mu.
	sendMAC hash.Hash
	recvMAC hash.Hash
	// macSum is scratch for verifyRecvMAC's computed digest.
	macSum [macSize]byte
}

// NewSession assembles a session from handshake-derived material. The
// SessionAuth provider calls this once per completed handshake, with the
// key pair oriented for its own side (send = the key this side MACs
// with).
func NewSession(id, peer string, established, expiry time.Time, send, recv [32]byte) *Session {
	return &Session{ID: id, Peer: peer, Established: established, Expiry: expiry,
		sendKey: send, recvKey: recv}
}

// Expired reports whether the session lifetime has elapsed at now.
func (s *Session) Expired(now time.Time) bool { return now.After(s.Expiry) }

// Age returns the session age at now.
func (s *Session) Age(now time.Time) time.Duration { return now.Sub(s.Established) }

// nextSendCtr consumes one send counter.
func (s *Session) nextSendCtr() uint64 {
	s.mu.Lock()
	s.sendCtr++
	c := s.sendCtr
	s.mu.Unlock()
	return c
}

// peekSendCtr returns the counter the next request will carry.
func (s *Session) peekSendCtr() uint64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.sendCtr + 1
}

// admitRecvCtr enforces the strictly-increasing receive counter.
func (s *Session) admitRecvCtr(ctr uint64) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if ctr <= s.recvCtr {
		return fmt.Errorf("transport: replayed or reordered counter %d (last %d)", ctr, s.recvCtr)
	}
	s.recvCtr = ctr
	return nil
}

// appendSendMAC appends the HMAC-SHA256 of b under the send key.
func (s *Session) appendSendMAC(b []byte) []byte {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.sendMAC == nil {
		s.sendMAC = hmac.New(sha256.New, s.sendKey[:])
	} else {
		s.sendMAC.Reset()
	}
	s.sendMAC.Write(b)
	return s.sendMAC.Sum(b)
}

// verifyRecvMAC checks the trailing MAC under the receive key and
// returns the payload without it.
func (s *Session) verifyRecvMAC(payload []byte) ([]byte, error) {
	if len(payload) < 1+macSize {
		return nil, fmt.Errorf("transport: payload too short for MAC")
	}
	body, mac := payload[:len(payload)-macSize], payload[len(payload)-macSize:]
	s.mu.Lock()
	if s.recvMAC == nil {
		s.recvMAC = hmac.New(sha256.New, s.recvKey[:])
	} else {
		s.recvMAC.Reset()
	}
	s.recvMAC.Write(body)
	sum := s.recvMAC.Sum(s.macSum[:0])
	s.mu.Unlock()
	if !hmac.Equal(sum, mac) {
		return nil, fmt.Errorf("transport: session MAC verification failed")
	}
	return body, nil
}

// SessionAuth is the handshake provider behind the binary fast path.
// internal/core/identity implements it over the home's ed25519 identity
// and trust store; the transport treats hello/accept blobs as opaque.
type SessionAuth interface {
	// SessionActive reports whether handshakes are possible — an
	// identity is installed. When false the dialer never attempts
	// binary negotiation and every call stays on the SOAP/HTTP path.
	SessionActive() bool
	// NewSessionClient starts one dialing-side handshake.
	NewSessionClient() (SessionClient, error)
	// AcceptSession processes a dialer's hello blob, returning the
	// accept blob and the listener-side session. A refusal (untrusted
	// or unverifiable dialer, replayed hello) is an error.
	AcceptSession(hello []byte) (accept []byte, s *Session, err error)
	// NoteSessionEnd records the end of a session's life: rekeyed true
	// means a fresh handshake replaced it in place, false means the
	// connection (or process) is going away.
	NoteSessionEnd(s *Session, rekeyed bool)
}

// SessionClient is one in-flight dialing-side handshake.
type SessionClient interface {
	// Hello returns the signed hello blob to send.
	Hello() []byte
	// Finish verifies the accept blob and yields the dialer-side
	// session.
	Finish(accept []byte) (*Session, error)
}
