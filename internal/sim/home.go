// Package sim assembles the paper's smart home end to end: the
// middleware substrates (Jini lookup + devices, an X10 powerline behind a
// CM11A, a HAVi IEEE 1394 bus with AV appliances, SMTP/POP3 mail, and a
// UPnP light), one federation network per middleware, and the matching
// Protocol Conversion Managers. Integration tests, the benchmark harness,
// the examples and cmd/homesim all build on it.
package sim

import (
	"context"
	"fmt"
	"path/filepath"
	"sync"
	"time"

	"homeconnect/internal/bridge/havipcm"
	"homeconnect/internal/bridge/jinipcm"
	"homeconnect/internal/bridge/mailpcm"
	"homeconnect/internal/bridge/upnppcm"
	"homeconnect/internal/bridge/x10pcm"
	"homeconnect/internal/core"
	"homeconnect/internal/core/identity"
	"homeconnect/internal/core/vsr"
	"homeconnect/internal/havi"
	"homeconnect/internal/ieee1394"
	"homeconnect/internal/jini"
	"homeconnect/internal/mail"
	"homeconnect/internal/upnp"
	"homeconnect/internal/x10"
)

// Config selects which middleware networks to build.
type Config struct {
	Jini bool
	X10  bool
	HAVi bool
	Mail bool
	UPnP bool
	// Home, when set, names this residence for inter-home federation:
	// the federation is built with core.NewHomeFederation and can peer
	// with other homes (see NewNeighborhood).
	Home string
	// Identity, when set, arms authentication before any network or
	// device comes up: the federation signs its wire traffic and admits
	// only Trusted homes. The identity must name Home.
	Identity *identity.Identity
	// Trusted maps peer home names to their hex public keys; applied
	// with Identity.
	Trusted map[string]string
	// Audit enables the home's in-memory audit log and its /health and
	// /audit faces before any network or device comes up, so the log
	// captures the whole lifetime.
	Audit bool
	// DataDir, when set, makes the home's repository durable (WAL +
	// snapshots under this directory, recovered on restart). Multi-home
	// constructions (NewNeighborhood) give each home a subdirectory.
	DataDir string
	// SOAPOnly keeps this home off the session-keyed binary fast path:
	// it neither offers nor accepts the handshake, so every framework
	// link it takes part in rides signed SOAP/HTTP. The disable lands
	// before any peering traffic, making the home a genuine mixed-mode
	// interop partner rather than one that downgraded mid-session.
	SOAPOnly bool
	// SOAPOnlyLast, in neighborhood constructions, marks the last N homes
	// SOAPOnly — the mixed-mode fleet: binary-capable homes must fall
	// back to SOAP on links toward these homes while still negotiating
	// binary among themselves. Ignored by NewHome.
	SOAPOnlyLast int
}

// All enables every middleware — the paper's Figure 3 prototype plus the
// §5 UPnP extension.
func All() Config { return Config{Jini: true, X10: true, HAVi: true, Mail: true, UPnP: true} }

// Prototype enables the four middleware of Figure 3 exactly.
func Prototype() Config { return Config{Jini: true, X10: true, HAVi: true, Mail: true} }

// Home is a running simulated smart home.
type Home struct {
	Fed *core.Federation

	// Jini network.
	Lookup       *jini.LookupService
	JiniExporter *jini.Exporter
	Laserdisc    *Laserdisc
	JiniPCM      *jinipcm.PCM

	// X10 network.
	Powerline  *x10.Powerline
	CM11A      *x10.CM11A
	Controller *x10.Controller
	Lamp       *x10.LampModule
	Motion     *x10.MotionSensor
	Remote     *x10.Remote
	X10PCM     *x10pcm.PCM

	// HAVi network.
	Bus       *ieee1394.Bus
	VCRDevice *havi.Device
	CamDevice *havi.Device
	TVDevice  *havi.Device
	VCR       *havi.VCR
	Camera    *havi.Camera
	Display   *havi.Display
	Tuner     *havi.Tuner
	HaviPCM   *havipcm.PCM

	// Mail network.
	MailStore *mail.Store
	SMTP      *mail.SMTPServer
	POP3      *mail.POP3Server
	MailPCM   *mailpcm.PCM

	// UPnP network.
	Light      *upnp.Device
	LightState *upnp.BinaryLightState
	UPnPPCM    *upnppcm.PCM

	closers []func()
	mu      sync.Mutex
	closed  bool
}

// X10 layout used by the simulated home.
var (
	// LampAddr is the living-room lamp module.
	LampAddr = x10.Address{House: 'A', Unit: 1}
	// MotionAddr is the hallway motion sensor.
	MotionAddr = x10.Address{House: 'A', Unit: 5}
	// RemoteLaserdiscUnit is the remote key bound to the Jini Laserdisc.
	RemoteLaserdiscUnit = x10.UnitCode(2)
	// RemoteCameraUnit is the remote key bound to the HAVi camera.
	RemoteCameraUnit = x10.UnitCode(3)
)

// CommandMailbox is the mail PCM's watched address.
const CommandMailbox = "home@house.example"

// Laserdisc is the Jini-based Laserdisc player of the paper's Figure 5.
type Laserdisc struct {
	mu      sync.Mutex
	state   string
	chapter int64
}

// Spec returns the Jini interface of the Laserdisc.
func (l *Laserdisc) Spec() jini.InterfaceSpec {
	return jini.InterfaceSpec{
		Name: "Laserdisc",
		Methods: []jini.MethodSpec{
			{Name: "Play"},
			{Name: "Stop"},
			{Name: "SetChapter", Params: []string{"int"}},
			{Name: "Chapter", Return: "int"},
			{Name: "State", Return: "string"},
		},
	}
}

// State returns the transport state.
func (l *Laserdisc) State() string {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.state
}

// Chapter returns the selected chapter.
func (l *Laserdisc) Chapter() int64 {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.chapter
}

// Call implements jini.Invocable.
func (l *Laserdisc) Call(method string, args []any) (any, error) {
	l.mu.Lock()
	defer l.mu.Unlock()
	switch method {
	case "Play":
		l.state = "playing"
		return nil, nil
	case "Stop":
		l.state = "stopped"
		return nil, nil
	case "SetChapter":
		n, ok := args[0].(int64)
		if !ok {
			return nil, fmt.Errorf("%w: SetChapter wants int", jini.ErrBadArgs)
		}
		l.chapter = n
		return nil, nil
	case "Chapter":
		return l.chapter, nil
	case "State":
		if l.state == "" {
			return "stopped", nil
		}
		return l.state, nil
	default:
		return nil, fmt.Errorf("%w: %s", jini.ErrNoSuchMethod, method)
	}
}

// NewHome builds and starts the configured home. Call Close when done.
// The federation prologue — identity before anything else, then audit,
// then the loopback gate (off: the paper's deployment has one gateway
// per physical middleware network, so every cross-network call pays the
// real SOAP/HTTP hop the Figure 1–5 experiments measure) — is
// HomeSpec.Build, shared with the neighborhood harness.
func NewHome(ctx context.Context, cfg Config) (*Home, error) {
	h := &Home{}
	fed, err := cfg.spec().Build()
	if err != nil {
		return nil, err
	}
	h.Fed = fed
	h.closers = append(h.closers, fed.Close)

	ok := false
	defer func() {
		if !ok {
			h.Close()
		}
	}()

	if cfg.Jini {
		if err := h.buildJini(ctx); err != nil {
			return nil, err
		}
	}
	if cfg.X10 {
		if err := h.buildX10(ctx); err != nil {
			return nil, err
		}
	}
	if cfg.HAVi {
		if err := h.buildHAVi(ctx); err != nil {
			return nil, err
		}
	}
	if cfg.Mail {
		if err := h.buildMail(ctx); err != nil {
			return nil, err
		}
	}
	if cfg.UPnP {
		if err := h.buildUPnP(ctx); err != nil {
			return nil, err
		}
	}
	ok = true
	return h, nil
}

func (h *Home) buildJini(ctx context.Context) error {
	h.Lookup = jini.NewLookupService()
	if err := h.Lookup.Start("127.0.0.1:0"); err != nil {
		return fmt.Errorf("sim: jini lookup: %w", err)
	}
	h.closers = append(h.closers, h.Lookup.Close)

	h.JiniExporter = jini.NewExporter()
	if err := h.JiniExporter.Start("127.0.0.1:0"); err != nil {
		return fmt.Errorf("sim: jini exporter: %w", err)
	}
	h.closers = append(h.closers, h.JiniExporter.Close)

	// The Laserdisc registers itself in the lookup service, as any Jini
	// service would.
	h.Laserdisc = &Laserdisc{}
	proxy := h.JiniExporter.Export(h.Laserdisc.Spec(), h.Laserdisc)
	reg, err := jini.Discover(ctx, h.Lookup.Addr())
	if err != nil {
		return fmt.Errorf("sim: jini discover: %w", err)
	}
	lease, err := reg.Register(ctx, jini.ServiceItem{
		Proxy: proxy,
		Attrs: []jini.Entry{{Name: jinipcm.EntryName, Value: "laserdisc-1"}},
	}, time.Minute)
	if err != nil {
		return fmt.Errorf("sim: jini register: %w", err)
	}
	renewCtx, cancel := context.WithCancel(context.Background())
	wait := lease.AutoRenew(renewCtx, 10*time.Second)
	h.closers = append(h.closers, func() { cancel(); _ = wait() })

	net, err := h.Fed.AddNetwork("jini-net")
	if err != nil {
		return err
	}
	h.JiniPCM = jinipcm.New(h.Lookup.Addr())
	return net.Attach(ctx, h.JiniPCM)
}

func (h *Home) buildX10(ctx context.Context) error {
	h.Powerline = x10.NewPowerline()
	pcPort, devPort := x10.NewLink()
	h.CM11A = x10.NewCM11A(h.Powerline, devPort)
	h.closers = append(h.closers, h.CM11A.Close)
	h.Controller = x10.NewController(pcPort)
	h.closers = append(h.closers, h.Controller.Close)

	h.Lamp = x10.NewLampModule(h.Powerline, LampAddr)
	h.closers = append(h.closers, h.Lamp.Close)
	h.Motion = x10.NewMotionSensor(h.Powerline, MotionAddr)
	h.Remote = x10.NewRemote(h.Powerline, 'A')

	net, err := h.Fed.AddNetwork("x10-net")
	if err != nil {
		return err
	}
	h.X10PCM = x10pcm.New(x10pcm.Config{
		Controller: h.Controller,
		Devices: []x10pcm.DeviceConfig{
			{Name: "lamp-1", Addr: LampAddr, Kind: x10pcm.Lamp},
			{Name: "motion-1", Addr: MotionAddr, Kind: x10pcm.Sensor},
		},
		Bindings: map[x10.Address]x10pcm.Binding{
			{House: 'A', Unit: RemoteLaserdiscUnit}: {ServiceID: "jini:laserdisc-1", OnOp: "Play", OffOp: "Stop"},
			{House: 'A', Unit: RemoteCameraUnit}:    {ServiceID: "havi:dvcam-cam1", OnOp: "StartCapture", OffOp: "StopCapture"},
		},
	})
	return net.Attach(ctx, h.X10PCM)
}

func (h *Home) buildHAVi(ctx context.Context) error {
	h.Bus = ieee1394.NewBus()
	h.VCRDevice = havi.NewDevice(h.Bus, 0xB0001, "vcr")
	h.closers = append(h.closers, h.VCRDevice.Close)
	h.CamDevice = havi.NewDevice(h.Bus, 0xCA001, "dvcam")
	h.closers = append(h.closers, h.CamDevice.Close)
	h.TVDevice = havi.NewDevice(h.Bus, 0x77001, "tv")
	h.closers = append(h.closers, h.TVDevice.Close)

	h.VCR = havi.NewVCR(h.VCRDevice, "vcr1")
	h.Camera = havi.NewCamera(h.CamDevice, "cam1")
	h.Display = havi.NewDisplay(h.TVDevice, "screen")
	h.Tuner = havi.NewTuner(h.TVDevice, "tuner")

	net, err := h.Fed.AddNetwork("havi-net")
	if err != nil {
		return err
	}
	h.HaviPCM = havipcm.New(h.Bus, 0xFC001)
	return net.Attach(ctx, h.HaviPCM)
}

func (h *Home) buildMail(ctx context.Context) error {
	h.MailStore = mail.NewStore()
	h.SMTP = mail.NewSMTPServer(h.MailStore)
	if err := h.SMTP.Start("127.0.0.1:0"); err != nil {
		return fmt.Errorf("sim: smtp: %w", err)
	}
	h.closers = append(h.closers, h.SMTP.Close)
	h.POP3 = mail.NewPOP3Server(h.MailStore)
	if err := h.POP3.Start("127.0.0.1:0"); err != nil {
		return fmt.Errorf("sim: pop3: %w", err)
	}
	h.closers = append(h.closers, h.POP3.Close)

	net, err := h.Fed.AddNetwork("mail-net")
	if err != nil {
		return err
	}
	h.MailPCM = mailpcm.New(mailpcm.Config{
		SMTPAddr:    h.SMTP.Addr(),
		POP3Addr:    h.POP3.Addr(),
		CommandAddr: CommandMailbox,
	})
	return net.Attach(ctx, h.MailPCM)
}

func (h *Home) buildUPnP(ctx context.Context) error {
	h.Light, h.LightState = upnp.NewBinaryLight("porch")
	if err := h.Light.Start("127.0.0.1:0", "127.0.0.1:0"); err != nil {
		return fmt.Errorf("sim: upnp light: %w", err)
	}
	h.closers = append(h.closers, h.Light.Close)

	net, err := h.Fed.AddNetwork("upnp-net")
	if err != nil {
		return err
	}
	h.UPnPPCM = upnppcm.New(upnppcm.Config{SSDPAddrs: []string{h.Light.SSDPAddr()}})
	return net.Attach(ctx, h.UPnPPCM)
}

// NewNeighborhood builds n copies of the configured home — named
// "home-1" … "home-n" (cfg.Home, if set, is used as the name prefix
// instead of "home") — and peers every pair in both directions, so each
// home resolves every other home's services under their home scopes.
// The returned homes are fully built but replication may still be in
// flight; use WaitForFederation to block until every home sees the whole
// neighborhood.
func NewNeighborhood(ctx context.Context, n int, cfg Config) ([]*Home, error) {
	if n < 1 {
		return nil, fmt.Errorf("sim: neighborhood of %d homes", n)
	}
	prefix := cfg.Home
	if prefix == "" {
		prefix = "home"
	}
	homes := make([]*Home, 0, n)
	ok := false
	defer func() {
		if !ok {
			for _, h := range homes {
				h.Close()
			}
		}
	}()
	for i := 1; i <= n; i++ {
		hcfg := cfg
		hcfg.Home = fmt.Sprintf("%s-%d", prefix, i)
		if cfg.DataDir != "" {
			hcfg.DataDir = filepath.Join(cfg.DataDir, hcfg.Home)
		}
		if cfg.SOAPOnlyLast > 0 && i > n-cfg.SOAPOnlyLast {
			hcfg.SOAPOnly = true
		}
		h, err := NewHome(ctx, hcfg)
		if err != nil {
			return nil, fmt.Errorf("sim: build %s: %w", hcfg.Home, err)
		}
		homes = append(homes, h)
	}
	for i, h := range homes {
		for j, other := range homes {
			if i == j {
				continue
			}
			if err := h.Fed.Peer(other.Fed.PeerURL()); err != nil {
				return nil, fmt.Errorf("sim: peer %s with %s: %w", h.Fed.Home(), other.Fed.Home(), err)
			}
		}
	}
	ok = true
	return homes, nil
}

// NewSecureNeighborhood is NewNeighborhood with per-home identities and
// a deliberately incomplete trust web: every home gets a generated
// identity, the first n-untrusted homes ("the neighborhood") trust one
// another mutually, and the last untrusted homes trust everyone but are
// trusted by no one — outsiders running the full protocol against homes
// that refuse them. Every pair still peers in both directions, so the
// rejected links are observable in each home's PeerStatus: the
// neighborhood replicates normally among itself, while an untrusted
// home's links never authenticate and its repository never sees a
// neighbor's services (nor, thanks to response verification, do the
// neighbors accept anything of its).
func NewSecureNeighborhood(ctx context.Context, n, untrusted int, cfg Config) ([]*Home, error) {
	if n < 1 || untrusted < 0 || untrusted >= n {
		return nil, fmt.Errorf("sim: secure neighborhood of %d homes with %d untrusted", n, untrusted)
	}
	prefix := cfg.Home
	if prefix == "" {
		prefix = "home"
	}
	names := make([]string, n)
	ids := make([]*identity.Identity, n)
	for i := range names {
		names[i] = fmt.Sprintf("%s-%d", prefix, i+1)
		id, err := identity.Generate(names[i])
		if err != nil {
			return nil, err
		}
		ids[i] = id
	}
	trustedCount := n - untrusted
	homes := make([]*Home, 0, n)
	ok := false
	defer func() {
		if !ok {
			for _, h := range homes {
				h.Close()
			}
		}
	}()
	for i := 0; i < n; i++ {
		trust := make(map[string]string)
		for j := 0; j < n; j++ {
			if j == i {
				continue
			}
			// Neighborhood homes trust only one another; untrusted homes
			// trust everybody (their requests are honest — the refusals
			// they meet are the neighborhood's decision, not a protocol
			// failure on their side).
			if i < trustedCount && j >= trustedCount {
				continue
			}
			trust[names[j]] = ids[j].PublicKey()
		}
		hcfg := cfg
		hcfg.Home = names[i]
		hcfg.Identity = ids[i]
		hcfg.Trusted = trust
		if cfg.SOAPOnlyLast > 0 && i >= n-cfg.SOAPOnlyLast {
			hcfg.SOAPOnly = true
		}
		h, err := NewHome(ctx, hcfg)
		if err != nil {
			return nil, fmt.Errorf("sim: build %s: %w", hcfg.Home, err)
		}
		homes = append(homes, h)
	}
	for i, h := range homes {
		for j, other := range homes {
			if i == j {
				continue
			}
			if err := h.Fed.Peer(other.Fed.PeerURL()); err != nil {
				return nil, fmt.Errorf("sim: peer %s with %s: %w", h.Fed.Home(), other.Fed.Home(), err)
			}
		}
	}
	ok = true
	return homes, nil
}

// WaitForFederation polls each home's repository until it sees at least
// total services (own plus imports) or the context expires.
func WaitForFederation(ctx context.Context, homes []*Home, total int) error {
	for _, h := range homes {
		if err := h.WaitForServices(ctx, total); err != nil {
			return fmt.Errorf("sim: %s: %w", h.Fed.Home(), err)
		}
	}
	return nil
}

// WaitForServices polls the repository until at least n services are
// visible or the context expires.
func (h *Home) WaitForServices(ctx context.Context, n int) error {
	for {
		remotes, err := h.Fed.Services(ctx)
		if err == nil && len(remotes) >= n {
			return nil
		}
		select {
		case <-ctx.Done():
			got := len(remotes)
			ids := make([]string, 0, got)
			for _, r := range remotes {
				ids = append(ids, r.Desc.ID)
			}
			return fmt.Errorf("sim: %d/%d services after wait (%v): %w", got, n, ids, ctx.Err())
		case <-time.After(25 * time.Millisecond):
		}
	}
}

// ServiceIDs returns the sorted federation service IDs currently visible.
func (h *Home) ServiceIDs(ctx context.Context) ([]string, error) {
	remotes, err := h.Fed.Services(ctx)
	if err != nil {
		return nil, err
	}
	out := make([]string, 0, len(remotes))
	for _, r := range remotes {
		out = append(out, r.Desc.ID)
	}
	return out, nil
}

// Find returns the repository view of one service.
func (h *Home) Find(ctx context.Context, id string) (vsr.Remote, error) {
	gw := h.Fed.Network(h.Fed.Networks()[0]).Gateway()
	return gw.Resolve(ctx, id)
}

// Close tears the home down in reverse construction order.
func (h *Home) Close() {
	h.mu.Lock()
	if h.closed {
		h.mu.Unlock()
		return
	}
	h.closed = true
	closers := h.closers
	h.mu.Unlock()
	for i := len(closers) - 1; i >= 0; i-- {
		closers[i]()
	}
}
