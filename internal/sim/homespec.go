// HomeSpec: the federation-level description of one home, shared by
// every construction path. NewHome's middleware-laden homes and the
// neighborhood harness's virtual homes both arm their federations
// through Build, so the prologue — naming, identity, trust, audit,
// loopback gating — cannot drift between them (homespec_test.go holds
// the equivalence by comparing Health and PeerStatus of both paths).
package sim

import (
	"homeconnect/internal/core"
	"homeconnect/internal/core/audit"
	"homeconnect/internal/core/identity"
	"homeconnect/internal/uddi"
)

// HomeSpec describes one home independent of which middleware networks
// ride on it.
type HomeSpec struct {
	// Name names this residence for inter-home federation ("" for the
	// paper's single-home deployment).
	Name string
	// Identity, when set, arms authentication before anything else comes
	// up; it must name Name.
	Identity *identity.Identity
	// Trusted maps peer home names to their hex public keys; applied
	// with Identity.
	Trusted map[string]string
	// Audit enables the home's audit log and operability faces before
	// any traffic flows.
	Audit bool
	// Loopback keeps the in-process fast path on. NewHome turns it off —
	// the paper's one-gateway-per-physical-network deployment — while the
	// neighborhood harness keeps it on for same-home calls.
	Loopback bool
	// SOAPOnly disables the session-keyed binary wire on every endpoint
	// of this home before any traffic flows: hellos are refused and
	// dialers never offer the handshake, so peers fall back to SOAP.
	SOAPOnly bool
	// DataDir, when set, makes the home's repository durable: the change
	// journal is write-ahead logged and snapshotted under this directory
	// and recovered on the next Build from it, so registrations, sequence
	// numbers and remaining TTLs survive a restart.
	DataDir string
	// Fsync and SnapshotEvery tune the durable repository (see
	// uddi.DurabilityOptions); zero values take the uddi defaults.
	// Ignored without DataDir.
	Fsync         uddi.FsyncPolicy
	SnapshotEvery int
}

// spec is the HomeSpec equivalent of a Config's federation prologue.
func (c Config) spec() HomeSpec {
	return HomeSpec{
		Name:     c.Home,
		Identity: c.Identity,
		Trusted:  c.Trusted,
		Audit:    c.Audit,
		Loopback: false,
		SOAPOnly: c.SOAPOnly,
		DataDir:  c.DataDir,
	}
}

// Build constructs and arms the home's federation: name, then identity
// and trust (before the first gateway or device exists, so no window of
// open traffic precedes enforcement), then audit, then the loopback
// gate. The caller owns the federation and must Close it.
func (s HomeSpec) Build() (*core.Federation, error) {
	var fed *core.Federation
	var err error
	if s.DataDir != "" {
		fed, err = core.NewDurableHomeFederation(s.Name, uddi.DurabilityOptions{
			Dir: s.DataDir, Fsync: s.Fsync, SnapshotEvery: s.SnapshotEvery,
		})
	} else {
		fed, err = core.NewHomeFederation(s.Name)
	}
	if err != nil {
		return nil, err
	}
	ok := false
	defer func() {
		if !ok {
			fed.Close()
		}
	}()
	if s.Identity != nil {
		if err := fed.SetIdentity(s.Identity); err != nil {
			return nil, err
		}
		for home, key := range s.Trusted {
			if err := fed.TrustHome(home, key); err != nil {
				return nil, err
			}
		}
	}
	if s.Audit {
		if err := fed.EnableAudit(audit.Options{}); err != nil {
			return nil, err
		}
	}
	fed.SetLoopback(s.Loopback)
	if s.SOAPOnly {
		fed.SetBinaryWire(false)
	}
	ok = true
	return fed, nil
}
