// Regression test for the shared HomeSpec builder: a federation built
// through Config/NewHome and one built directly through HomeSpec.Build
// must be indistinguishable at the Health and PeerStatus surfaces. This
// is the contract that lets the neighborhood harness construct homes the
// harness way while measuring the homes NewHome would have built.
package sim

import (
	"context"
	"testing"
	"time"

	"homeconnect/internal/core"
	"homeconnect/internal/core/identity"
	"homeconnect/internal/core/peer"
	"homeconnect/internal/service"
)

func testDescSim(id string) service.Description {
	return service.Description{
		ID: id, Name: id, Middleware: "test",
		Interface: service.Interface{Name: "Svc", Operations: []service.Operation{
			{Name: "Ping", Output: service.KindVoid},
		}},
	}
}

var testInvoker = service.InvokerFunc(func(ctx context.Context, op string, args []service.Value) (service.Value, error) {
	return service.Void(), nil
})

// buildPair constructs "alpha" twice — once per path — with identical
// identity/trust/audit inputs, plus a shared peer home "omega" both
// replicate from.
func buildPair(t *testing.T) (cfgFed, specFed, omega *core.Federation) {
	t.Helper()
	idAlpha, err := identity.Generate("alpha")
	if err != nil {
		t.Fatal(err)
	}
	idOmega, err := identity.Generate("omega")
	if err != nil {
		t.Fatal(err)
	}
	trust := map[string]string{"omega": idOmega.PublicKey()}

	// Path 1: the Config/NewHome prologue (no middleware networks — the
	// comparison targets the federation surface both paths share).
	h, err := NewHome(context.Background(), Config{
		Home: "alpha", Identity: idAlpha, Trusted: trust, Audit: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(h.Close)

	// Path 2: the harness's direct HomeSpec build.
	spec := HomeSpec{Name: "alpha", Identity: idAlpha, Trusted: trust, Audit: true}
	sf, err := spec.Build()
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(sf.Close)

	of, err := HomeSpec{
		Name: "omega", Identity: idOmega, Audit: true,
		Trusted: map[string]string{"alpha": idAlpha.PublicKey()},
	}.Build()
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(of.Close)
	return h.Fed, sf, of
}

func waitConnected(t *testing.T, f *core.Federation, url string) peer.Status {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for {
		st, ok := f.PeerStatus()[url]
		if ok && st.Connected && st.Imported >= 1 {
			return st
		}
		if time.Now().After(deadline) {
			t.Fatalf("%s: link to %s never synced: %+v", f.Home(), url, st)
		}
		time.Sleep(10 * time.Millisecond)
	}
}

func TestHomeSpecMatchesConfigConstruction(t *testing.T) {
	cfgFed, specFed, omega := buildPair(t)

	// Give omega one export so the links have something to replicate.
	net, err := omega.AddNetwork("test-net")
	if err != nil {
		t.Fatal(err)
	}
	gw := net.Gateway()
	if err := gw.Export(context.Background(), testDescSim("svc-1"), testInvoker); err != nil {
		t.Fatal(err)
	}

	for _, f := range []*core.Federation{cfgFed, specFed} {
		if _, err := f.AddNetwork("test-net"); err != nil {
			t.Fatalf("%v: add network: %v", f, err)
		}
		if err := f.Peer(omega.PeerURL()); err != nil {
			t.Fatal(err)
		}
	}

	stCfg := waitConnected(t, cfgFed, omega.PeerURL())
	stSpec := waitConnected(t, specFed, omega.PeerURL())

	// PeerStatus equivalence (URL and timestamps aside, which differ by
	// construction): both links authenticated, same remote, same import
	// footprint.
	if stCfg.RemoteHome != stSpec.RemoteHome ||
		stCfg.Connected != stSpec.Connected ||
		stCfg.Authenticated != stSpec.Authenticated ||
		stCfg.Imported != stSpec.Imported {
		t.Errorf("peer status diverged:\n config: %+v\n spec:   %+v", stCfg, stSpec)
	}
	if !stCfg.Authenticated {
		t.Error("links not authenticated despite identities")
	}

	// Health equivalence: same networks, same watch state, no refresh
	// failures on either path.
	hc, hs := cfgFed.Health(), specFed.Health()
	if len(hc) != len(hs) {
		t.Fatalf("health map sizes differ: %d vs %d", len(hc), len(hs))
	}
	for name, c := range hc {
		s, ok := hs[name]
		if !ok {
			t.Fatalf("spec path missing network %q", name)
		}
		if c.WatchActive != s.WatchActive ||
			c.ConsecutiveRefreshFailures != s.ConsecutiveRefreshFailures ||
			c.LastRefreshError != s.LastRefreshError {
			t.Errorf("health diverged for %q:\n config: %+v\n spec:   %+v", name, c, s)
		}
	}

	// Auth surface equivalence.
	if cfgFed.Auth().Enabled() != specFed.Auth().Enabled() {
		t.Error("auth enablement diverged")
	}
	if (cfgFed.Audit() == nil) != (specFed.Audit() == nil) {
		t.Error("audit enablement diverged")
	}
}
