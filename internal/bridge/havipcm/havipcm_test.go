package havipcm

import (
	"context"
	"testing"
	"time"

	"homeconnect/internal/core/vsg"
	"homeconnect/internal/core/vsr"
	"homeconnect/internal/havi"
	"homeconnect/internal/ieee1394"
	"homeconnect/internal/service"
)

func TestFCMInterfaceTable(t *testing.T) {
	types := []string{"VCR", "Camera", "Tuner", "Display", "Amplifier"}
	for _, ft := range types {
		iface, opcodes, ok := fcmInterface(ft)
		if !ok {
			t.Fatalf("no interface for FCM type %s", ft)
		}
		if err := iface.Validate(); err != nil {
			t.Errorf("%s interface invalid: %v", ft, err)
		}
		// Every operation needs an opcode mapping.
		for _, op := range iface.Operations {
			if _, ok := opcodes[op.Name]; !ok {
				t.Errorf("%s operation %s has no opcode", ft, op.Name)
			}
		}
		if len(opcodes) != len(iface.Operations) {
			t.Errorf("%s: %d opcodes for %d operations", ft, len(opcodes), len(iface.Operations))
		}
	}
	if _, _, ok := fcmInterface("Toaster"); ok {
		t.Error("unknown FCM type mapped")
	}
}

// TestPCMExportsAndImports runs the PCM on a real bus with a VCR and
// checks both directions.
func TestPCMExportsAndImports(t *testing.T) {
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()

	bus := ieee1394.NewBus()
	vcrDev := havi.NewDevice(bus, 0xB0001, "vcr")
	defer vcrDev.Close()
	vcr := havi.NewVCR(vcrDev, "vcr1")

	srv, err := vsr.StartServer("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	gw := vsg.New("havi-net", srv.URL())
	if err := gw.Start("127.0.0.1:0"); err != nil {
		t.Fatal(err)
	}
	defer gw.Close()

	p := New(bus, 0xFC001)
	if err := p.Start(ctx, gw); err != nil {
		t.Fatal(err)
	}
	defer func() { _ = p.Stop() }()

	// CP: the VCR appears and is controllable.
	waitFor(t, func() bool {
		_, err := gw.VSR().Lookup(ctx, "havi:vcr-vcr1")
		return err == nil
	})
	if _, err := gw.Call(ctx, "havi:vcr-vcr1", "Record", nil); err != nil {
		t.Fatalf("Record: %v", err)
	}
	if vcr.State() != havi.StateRecording {
		t.Errorf("vcr state = %s", vcr.State())
	}
	got, err := gw.Call(ctx, "havi:vcr-vcr1", "State", nil)
	if err != nil || got.Str() != havi.StateRecording {
		t.Errorf("State = %v, %v", got, err)
	}

	// SP: a synthetic remote service appears as a virtual element.
	gw2 := vsg.New("other-net", srv.URL())
	if err := gw2.Start("127.0.0.1:0"); err != nil {
		t.Fatal(err)
	}
	defer gw2.Close()
	desc := service.Description{
		ID: "synth:adder", Name: "adder", Middleware: "synth",
		Interface: service.Interface{Name: "Adder", Operations: []service.Operation{
			{Name: "Add", Inputs: []service.Parameter{
				{Name: "a", Type: service.KindInt}, {Name: "b", Type: service.KindInt},
			}, Output: service.KindInt},
		}},
	}
	adder := service.InvokerFunc(func(_ context.Context, _ string, args []service.Value) (service.Value, error) {
		return service.IntValue(args[0].Int() + args[1].Int()), nil
	})
	if err := gw2.Export(ctx, desc, adder); err != nil {
		t.Fatal(err)
	}

	// A plain HAVi client finds and calls it.
	client := havi.NewDevice(bus, 0xC0C0A, "client")
	defer client.Close()
	var target havi.SEID
	waitFor(t, func() bool {
		infos, err := client.Query(ctx, map[string]string{AttrOrigin: "synth:adder"})
		if err != nil || len(infos) != 1 {
			return false
		}
		target = infos[0].SEID
		return true
	})
	vals, err := InvokeVirtual(ctx, client, target, "Add", int64(2), int64(40))
	if err != nil || len(vals) != 1 || vals[0].(int64) != 42 {
		t.Fatalf("InvokeVirtual = %v, %v", vals, err)
	}

	// Error paths through the virtual element.
	if _, err := InvokeVirtual(ctx, client, target, "Nope"); err == nil {
		t.Error("unknown op accepted")
	}
	if _, err := InvokeVirtual(ctx, client, target, "Add", int64(1)); err == nil {
		t.Error("arity error accepted")
	}

	// Loop guard: the virtual element must not be re-exported.
	remotes, err := gw.List(ctx, vsr.Query{Middleware: "havi"})
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range remotes {
		if r.Desc.ID != "havi:vcr-vcr1" {
			t.Errorf("leaked virtual element: %s", r.Desc.ID)
		}
	}
}

func waitFor(t *testing.T, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for !cond() {
		if time.Now().After(deadline) {
			t.Fatal("condition not reached")
		}
		time.Sleep(20 * time.Millisecond)
	}
}
