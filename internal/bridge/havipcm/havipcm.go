// Package havipcm is the Protocol Conversion Manager for the HAVi
// simulation — the third middleware of the paper's prototype (§4.1),
// controlling digital AV appliances on the IEEE 1394 bus.
//
// Client Proxy direction: the PCM joins the bus as its own HAVi device,
// queries the distributed registry for FCMs, converts each FCM type's
// well-known opcode API into a federation interface, and exports Invokers
// that send HAVi control messages.
//
// Server Proxy direction: remote federation services are registered as
// virtual software elements on the PCM's device, so unmodified HAVi
// clients find them in the registry and control them with messages. The
// virtual elements accept the generic OpInvokeByName opcode whose first
// argument names the operation — HAVi's opcode space has no slot for
// foreign interfaces, so the PCM defines one, and advertises each
// operation's signature in the element attributes.
package havipcm

import (
	"context"
	"fmt"
	"strings"
	"sync"

	"homeconnect/internal/core/pcm"
	"homeconnect/internal/core/vsg"
	"homeconnect/internal/core/vsr"
	"homeconnect/internal/havi"
	"homeconnect/internal/ieee1394"
	"homeconnect/internal/service"
)

// OpInvokeByName is the generic opcode virtual (Server Proxy) elements
// accept: args[0] is the operation name, the rest are its arguments.
const OpInvokeByName uint16 = 0x7F00

// Attribute names on virtual elements.
const (
	// AttrImported tags Server Proxy elements.
	AttrImported = service.CtxImported
	// AttrOrigin carries the origin federation service ID.
	AttrOrigin = service.CtxOrigin
	// AttrOps lists the offered operation signatures, comma separated.
	AttrOps = "homeconnect.ops"
)

// PCM bridges one HAVi bus to the federation.
type PCM struct {
	bus    *ieee1394.Bus
	guid   ieee1394.GUID
	runner pcm.Runner

	mu  sync.Mutex
	dev *havi.Device

	exp *pcm.Exporter
	imp *pcm.Importer
}

// New builds a PCM that joins bus with the given GUID.
func New(bus *ieee1394.Bus, guid ieee1394.GUID) *PCM {
	return &PCM{bus: bus, guid: guid}
}

// Middleware implements pcm.PCM.
func (p *PCM) Middleware() string { return "havi" }

// Device returns the PCM's bus presence (tests).
func (p *PCM) Device() *havi.Device {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.dev
}

// Start implements pcm.PCM.
func (p *PCM) Start(ctx context.Context, gw *vsg.VSG) error {
	runCtx := p.runner.Start(ctx)
	dev := havi.NewDevice(p.bus, p.guid, "homeconnect-pcm")
	p.mu.Lock()
	p.dev = dev
	p.mu.Unlock()

	p.exp = &pcm.Exporter{List: p.listLocal}
	p.imp = &pcm.Importer{Middleware: "havi", Offer: func(ctx context.Context, r vsr.Remote) (func(), error) {
		return p.offer(gw, r)
	}}
	p.runner.Go(func() { p.exp.Run(runCtx, gw) })
	p.runner.Go(func() { p.imp.Run(runCtx, gw) })

	// Bridge HAVi transport events onto the federation hub (§4.2's
	// event-based multimedia system consumes these).
	stopSub := dev.Subscribe(havi.EventTransport, func(src havi.SEID, _ uint16, args []havi.Value) {
		state, err := havi.ArgString(args, 0)
		if err != nil {
			return
		}
		gw.Hub().Publish(service.Event{
			Source: "havi:" + src.String(),
			Topic:  "havi.transport",
			Payload: map[string]service.Value{
				"state": service.StringValue(state),
				"seid":  service.StringValue(src.String()),
			},
		})
	})
	p.runner.Go(func() {
		<-runCtx.Done()
		stopSub()
	})
	return nil
}

// Stop implements pcm.PCM.
func (p *PCM) Stop() error {
	p.runner.Stop()
	p.mu.Lock()
	dev := p.dev
	p.mu.Unlock()
	if dev != nil {
		dev.Close()
	}
	return nil
}

// fcmInterface maps each HAVi FCM type to its federation interface —
// static tables, because HAVi FCM APIs are standardized.
func fcmInterface(fcmType string) (service.Interface, map[string]uint16, bool) {
	switch fcmType {
	case "VCR":
		return service.Interface{
				Name: "HaviVCR",
				Doc:  "HAVi VCR functional component",
				Operations: []service.Operation{
					{Name: "Play", Output: service.KindVoid},
					{Name: "Stop", Output: service.KindVoid},
					{Name: "Record", Output: service.KindVoid},
					{Name: "Rewind", Output: service.KindVoid},
					{Name: "State", Output: service.KindString},
					{Name: "Position", Output: service.KindInt},
					{Name: "SetChannel", Inputs: []service.Parameter{{Name: "channel", Type: service.KindInt}}, Output: service.KindVoid},
					{Name: "Channel", Output: service.KindInt},
				},
			}, map[string]uint16{
				"Play": havi.OpPlay, "Stop": havi.OpStop, "Record": havi.OpRecord,
				"Rewind": havi.OpRewind, "State": havi.OpState, "Position": havi.OpPosition,
				"SetChannel": havi.OpSetChannel, "Channel": havi.OpChannel,
			}, true
	case "Camera":
		return service.Interface{
				Name: "HaviCamera",
				Doc:  "HAVi DV camera functional component",
				Operations: []service.Operation{
					{Name: "StartCapture", Output: service.KindVoid},
					{Name: "StopCapture", Output: service.KindVoid},
					{Name: "Zoom", Inputs: []service.Parameter{{Name: "level", Type: service.KindInt}}, Output: service.KindVoid},
					{Name: "ZoomLevel", Output: service.KindInt},
					{Name: "State", Output: service.KindString},
				},
			}, map[string]uint16{
				"StartCapture": havi.OpPlay, "StopCapture": havi.OpStop,
				"Zoom": havi.OpZoom, "ZoomLevel": havi.OpZoomLevel, "State": havi.OpState,
			}, true
	case "Tuner":
		return service.Interface{
				Name: "HaviTuner",
				Doc:  "HAVi broadcast tuner functional component",
				Operations: []service.Operation{
					{Name: "SetChannel", Inputs: []service.Parameter{{Name: "channel", Type: service.KindInt}}, Output: service.KindVoid},
					{Name: "Channel", Output: service.KindInt},
				},
			}, map[string]uint16{
				"SetChannel": havi.OpSetChannel, "Channel": havi.OpChannel,
			}, true
	case "Display":
		return service.Interface{
				Name: "HaviDisplay",
				Doc:  "HAVi display functional component",
				Operations: []service.Operation{
					{Name: "ShowMessage", Inputs: []service.Parameter{{Name: "text", Type: service.KindString}}, Output: service.KindVoid},
					{Name: "SetInput", Inputs: []service.Parameter{{Name: "input", Type: service.KindString}}, Output: service.KindVoid},
					{Name: "Input", Output: service.KindString},
					{Name: "Frames", Output: service.KindInt},
				},
			}, map[string]uint16{
				"ShowMessage": havi.OpShowMessage, "SetInput": havi.OpSetInput,
				"Input": havi.OpInput, "Frames": havi.OpFrames,
			}, true
	case "Amplifier":
		return service.Interface{
				Name: "HaviAmplifier",
				Doc:  "HAVi amplifier functional component",
				Operations: []service.Operation{
					{Name: "SetVolume", Inputs: []service.Parameter{{Name: "volume", Type: service.KindInt}}, Output: service.KindVoid},
					{Name: "Volume", Output: service.KindInt},
				},
			}, map[string]uint16{
				"SetVolume": havi.OpSetVolume, "Volume": havi.OpVolume,
			}, true
	default:
		return service.Interface{}, nil, false
	}
}

// listLocal queries the HAVi registry for FCMs (the CP direction).
func (p *PCM) listLocal(ctx context.Context) ([]pcm.LocalService, error) {
	p.mu.Lock()
	dev := p.dev
	p.mu.Unlock()
	infos, err := dev.Query(ctx, map[string]string{havi.AttrSEType: "FCM"})
	if err != nil {
		return nil, err
	}
	var out []pcm.LocalService
	for _, info := range infos {
		if info.Attrs[AttrImported] == "true" {
			continue
		}
		iface, opcodes, ok := fcmInterface(info.Attrs[havi.AttrFCMType])
		if !ok {
			continue // unknown FCM type stays HAVi-only
		}
		name := localName(info)
		desc := service.Description{
			ID:         "havi:" + name,
			Name:       name,
			Middleware: "havi",
			Interface:  iface,
			Context: map[string]string{
				"havi.seid": info.SEID.String(),
				"havi.huid": info.Attrs[havi.AttrHUID],
				"havi.type": info.Attrs[havi.AttrFCMType],
			},
		}
		out = append(out, pcm.LocalService{Desc: desc, Invoker: p.fcmInvoker(info.SEID, iface, opcodes)})
	}
	return out, nil
}

// localName derives a stable short name for an FCM.
func localName(info havi.ElementInfo) string {
	huid := info.Attrs[havi.AttrHUID]
	if name, ok := strings.CutPrefix(huid, "huid-"); ok && name != "" {
		return name
	}
	return strings.ToLower(info.Attrs[havi.AttrFCMType]) + "-" + info.SEID.String()
}

// fcmInvoker generates the CP Invoker: operations become HAVi control
// messages.
func (p *PCM) fcmInvoker(seid havi.SEID, iface service.Interface, opcodes map[string]uint16) service.Invoker {
	return service.InvokerFunc(func(ctx context.Context, op string, args []service.Value) (service.Value, error) {
		opSpec, ok := iface.Operation(op)
		if !ok {
			return service.Value{}, fmt.Errorf("%s: %w", op, service.ErrNoSuchOperation)
		}
		opcode, ok := opcodes[op]
		if !ok {
			return service.Value{}, fmt.Errorf("%s: %w", op, service.ErrNoSuchOperation)
		}
		p.mu.Lock()
		dev := p.dev
		p.mu.Unlock()
		haviArgs := make([]havi.Value, len(args))
		for i, a := range args {
			haviArgs[i] = a.ToGo()
		}
		vals, err := dev.Send(ctx, havi.SwDCM, seid, opcode, haviArgs)
		if err != nil {
			return service.Value{}, fmt.Errorf("havipcm: %s: %w", op, err)
		}
		if opSpec.Output == service.KindVoid {
			return service.Void(), nil
		}
		if len(vals) == 0 {
			return service.Value{}, fmt.Errorf("havipcm: %s returned nothing, want %v", op, opSpec.Output)
		}
		v, err := service.FromGo(vals[0])
		if err != nil {
			return service.Value{}, fmt.Errorf("havipcm: %s result: %w", op, err)
		}
		return v, nil
	})
}

// offer registers a virtual element for one remote service (SP
// direction).
func (p *PCM) offer(gw *vsg.VSG, remote vsr.Remote) (func(), error) {
	p.mu.Lock()
	dev := p.dev
	p.mu.Unlock()

	invoker := pcm.RemoteInvoker(gw, remote)
	iface := remote.Desc.Interface
	sigs := make([]string, 0, len(iface.Operations))
	for _, op := range iface.Operations {
		sigs = append(sigs, op.Signature())
	}
	el := havi.ElementFunc{
		Attrs: map[string]string{
			havi.AttrSEType:  "FCM",
			havi.AttrFCMType: "Virtual",
			havi.AttrDevName: "homeconnect-pcm",
			havi.AttrHUID:    "huid-virtual-" + remote.Desc.ID,
			AttrImported:     "true",
			AttrOrigin:       remote.Desc.ID,
			AttrOps:          strings.Join(sigs, ","),
		},
		Handle: func(src havi.SEID, opcode uint16, args []havi.Value) ([]havi.Value, error) {
			if opcode != OpInvokeByName {
				return nil, fmt.Errorf("%w: virtual element accepts only OpInvokeByName", havi.ErrUnknownOpcode)
			}
			opName, err := havi.ArgString(args, 0)
			if err != nil {
				return nil, fmt.Errorf("%w: %v", havi.ErrBadMessage, err)
			}
			opSpec, ok := iface.Operation(opName)
			if !ok {
				return nil, fmt.Errorf("%w: %s", havi.ErrUnknownOpcode, opName)
			}
			rest := args[1:]
			if len(rest) != len(opSpec.Inputs) {
				return nil, fmt.Errorf("%w: %s wants %d args, got %d", havi.ErrBadMessage, opName, len(opSpec.Inputs), len(rest))
			}
			svcArgs := make([]service.Value, len(rest))
			for i, a := range rest {
				v, err := service.FromGo(a)
				if err != nil {
					return nil, fmt.Errorf("%w: arg %d: %v", havi.ErrBadMessage, i, err)
				}
				svcArgs[i] = v
			}
			result, err := invoker.Invoke(context.Background(), opName, svcArgs)
			if err != nil {
				return nil, err
			}
			if result.IsVoid() {
				return nil, nil
			}
			return []havi.Value{result.ToGo()}, nil
		},
	}
	seid := dev.RegisterFCM(el, nil)
	return func() { dev.Unregister(seid.SwID) }, nil
}

// InvokeVirtual is the helper HAVi clients use to call a virtual element
// found in the registry: it wraps OpInvokeByName.
func InvokeVirtual(ctx context.Context, dev *havi.Device, target havi.SEID, op string, args ...havi.Value) ([]havi.Value, error) {
	full := append([]havi.Value{op}, args...)
	return dev.Send(ctx, havi.SwDCM, target, OpInvokeByName, full)
}

// OfferedCount reports the number of live Server Proxies (tests).
func (p *PCM) OfferedCount() int {
	if p.imp == nil {
		return 0
	}
	return p.imp.OfferedCount()
}

var _ pcm.PCM = (*PCM)(nil)
