package upnppcm

import (
	"context"
	"testing"
	"time"

	"homeconnect/internal/core/vsg"
	"homeconnect/internal/core/vsr"
	"homeconnect/internal/service"
	"homeconnect/internal/upnp"
)

func TestInterfaceActionConversionRoundTrip(t *testing.T) {
	actions := []upnp.Action{
		{Name: "SetTarget", In: []upnp.Arg{{Name: "newTargetValue", Type: service.KindBool}}},
		{Name: "GetStatus", Out: service.KindBool},
		{Name: "Configure", In: []upnp.Arg{
			{Name: "name", Type: service.KindString},
			{Name: "level", Type: service.KindInt},
		}, Out: service.KindString},
	}
	iface, err := InterfaceFromActions("SwitchPower", actions)
	if err != nil {
		t.Fatalf("InterfaceFromActions: %v", err)
	}
	if len(iface.Operations) != 3 {
		t.Fatalf("operations = %d", len(iface.Operations))
	}
	set, _ := iface.Operation("SetTarget")
	if set.Output != service.KindVoid || len(set.Inputs) != 1 {
		t.Errorf("SetTarget = %+v", set)
	}
	back := ActionsFromInterface(iface)
	if len(back) != 3 {
		t.Fatalf("round trip = %d actions", len(back))
	}
	for i := range actions {
		if back[i].Name != actions[i].Name || len(back[i].In) != len(actions[i].In) {
			t.Errorf("action %d: %+v != %+v", i, back[i], actions[i])
		}
	}
}

func TestHelpers(t *testing.T) {
	if got := serviceTypeName("urn:schemas-upnp-org:service:SwitchPower:1"); got != "SwitchPower" {
		t.Errorf("serviceTypeName = %q", got)
	}
	if got := shortServiceID("urn:upnp-org:serviceId:SwitchPower"); got != "SwitchPower" {
		t.Errorf("shortServiceID = %q", got)
	}
	if got := sanitize("x10:lamp 1/a"); got != "x10-lamp-1-a" {
		t.Errorf("sanitize = %q", got)
	}
}

// TestPCMBothDirections: a real UPnP light joins the federation, and a
// synthetic remote service becomes a discoverable virtual UPnP device.
func TestPCMBothDirections(t *testing.T) {
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()

	light, state := upnp.NewBinaryLight("hall")
	if err := light.Start("127.0.0.1:0", "127.0.0.1:0"); err != nil {
		t.Fatal(err)
	}
	defer light.Close()

	srv, err := vsr.StartServer("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	gw := vsg.New("upnp-net", srv.URL())
	if err := gw.Start("127.0.0.1:0"); err != nil {
		t.Fatal(err)
	}
	defer gw.Close()

	p := New(Config{SSDPAddrs: []string{light.SSDPAddr()}})
	if err := p.Start(ctx, gw); err != nil {
		t.Fatal(err)
	}
	defer func() { _ = p.Stop() }()

	// CP: the light is callable from the federation.
	waitFor(t, func() bool {
		_, err := gw.VSR().Lookup(ctx, "upnp:hall-SwitchPower")
		return err == nil
	})
	if _, err := gw.Call(ctx, "upnp:hall-SwitchPower", "SetTarget", []service.Value{service.BoolValue(true)}); err != nil {
		t.Fatalf("SetTarget: %v", err)
	}
	if !state.On() {
		t.Error("light not on")
	}

	// SP: a synthetic remote service becomes a virtual UPnP device.
	gw2 := vsg.New("other-net", srv.URL())
	if err := gw2.Start("127.0.0.1:0"); err != nil {
		t.Fatal(err)
	}
	defer gw2.Close()
	desc := service.Description{
		ID: "synth:clock", Name: "clock", Middleware: "synth",
		Interface: service.Interface{Name: "Clock", Operations: []service.Operation{
			{Name: "Now", Output: service.KindString},
		}},
	}
	inv := service.InvokerFunc(func(context.Context, string, []service.Value) (service.Value, error) {
		return service.StringValue("2002-07-02T12:00:00Z"), nil
	})
	if err := gw2.Export(ctx, desc, inv); err != nil {
		t.Fatal(err)
	}

	waitFor(t, func() bool { return len(p.VirtualSSDPAddrs()) == 1 })
	results, err := upnp.Search(ctx, "ssdp:all", p.VirtualSSDPAddrs())
	if err != nil || len(results) != 1 {
		t.Fatalf("Search = %v, %v", results, err)
	}
	cp := &upnp.ControlPoint{}
	pd, services, err := cp.Describe(ctx, results[0].Location)
	if err != nil || len(services) != 1 {
		t.Fatalf("Describe = %+v, %v", pd, err)
	}
	if pd.FriendlyName != "synth:clock" {
		t.Errorf("friendly name = %q", pd.FriendlyName)
	}
	got, err := cp.Invoke(ctx, services[0], "Now", nil)
	if err != nil || got.Str() != "2002-07-02T12:00:00Z" {
		t.Errorf("Invoke = %v, %v", got, err)
	}

	// Loop guard: the virtual device is not re-exported by the CP scan
	// even though it answers SSDP (CP scans only the configured real
	// addresses, and the UDN prefix guards double coverage).
	remotes, err := gw.List(ctx, vsr.Query{Middleware: "upnp"})
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range remotes {
		if r.Desc.ID != "upnp:hall-SwitchPower" {
			t.Errorf("leaked virtual device: %s", r.Desc.ID)
		}
	}
}

func waitFor(t *testing.T, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for !cond() {
		if time.Now().After(deadline) {
			t.Fatal("condition not reached")
		}
		time.Sleep(20 * time.Millisecond)
	}
}
