// Package upnppcm is the Protocol Conversion Manager for UPnP — the
// extension the paper proposes in its related work (§5): "We can connect
// the UPnP service to other middleware by developing a PCM for UPnP."
// This package is exactly that PCM, validating the claim that new
// middleware joins the framework by writing one converter (experiment
// E10).
//
// Client Proxy direction: the PCM SSDP-searches the configured device
// addresses, fetches descriptions and SCPDs, converts each action table
// to a federation interface, and exports Invokers that drive the device
// with SOAP control — UPnP control *is* SOAP, so the conversion is thin.
//
// Server Proxy direction: remote federation services are hosted as
// virtual UPnP devices whose single service carries the remote interface
// as SCPD actions; unmodified UPnP control points discover them via SSDP
// and invoke them natively.
package upnppcm

import (
	"context"
	"fmt"
	"strings"
	"sync"

	"homeconnect/internal/core/pcm"
	"homeconnect/internal/core/vsg"
	"homeconnect/internal/core/vsr"
	"homeconnect/internal/service"
	"homeconnect/internal/upnp"
)

// virtualUDNPrefix marks devices this PCM hosts, so the CP scan skips
// them (the imported-service loop guard in UPnP's namespace).
const virtualUDNPrefix = "uuid:homeconnect-virtual-"

// Config wires the PCM to its UPnP neighbourhood.
type Config struct {
	// SSDPAddrs are the unicast search targets for real devices.
	SSDPAddrs []string
}

// PCM bridges UPnP devices to the federation.
type PCM struct {
	cfg    Config
	cp     *upnp.ControlPoint
	runner pcm.Runner

	mu      sync.Mutex
	virtual map[string]*upnp.Device // origin ID → hosted virtual device

	exp *pcm.Exporter
	imp *pcm.Importer
}

// New builds the PCM from configuration.
func New(cfg Config) *PCM {
	return &PCM{
		cfg:     cfg,
		cp:      &upnp.ControlPoint{},
		virtual: make(map[string]*upnp.Device),
	}
}

// Middleware implements pcm.PCM.
func (p *PCM) Middleware() string { return "upnp" }

// Start implements pcm.PCM.
func (p *PCM) Start(ctx context.Context, gw *vsg.VSG) error {
	runCtx := p.runner.Start(ctx)
	p.exp = &pcm.Exporter{List: p.listLocal}
	p.imp = &pcm.Importer{Middleware: "upnp", Offer: func(ctx context.Context, r vsr.Remote) (func(), error) {
		return p.offer(gw, r)
	}}
	p.runner.Go(func() { p.exp.Run(runCtx, gw) })
	p.runner.Go(func() { p.imp.Run(runCtx, gw) })
	return nil
}

// Stop implements pcm.PCM.
func (p *PCM) Stop() error {
	p.runner.Stop()
	p.mu.Lock()
	devs := make([]*upnp.Device, 0, len(p.virtual))
	for _, d := range p.virtual {
		devs = append(devs, d)
	}
	p.virtual = make(map[string]*upnp.Device)
	p.mu.Unlock()
	for _, d := range devs {
		d.Close()
	}
	return nil
}

// VirtualSSDPAddrs returns the SSDP addresses of hosted virtual devices,
// for local control points to search.
func (p *PCM) VirtualSSDPAddrs() []string {
	p.mu.Lock()
	defer p.mu.Unlock()
	out := make([]string, 0, len(p.virtual))
	for _, d := range p.virtual {
		out = append(out, d.SSDPAddr())
	}
	return out
}

// listLocal discovers real UPnP devices and converts them (CP direction).
func (p *PCM) listLocal(ctx context.Context) ([]pcm.LocalService, error) {
	results, err := upnp.Search(ctx, "ssdp:all", p.cfg.SSDPAddrs)
	if err != nil {
		return nil, err
	}
	var out []pcm.LocalService
	for _, res := range results {
		desc, services, err := p.cp.Describe(ctx, res.Location)
		if err != nil {
			continue // device went away between search and describe
		}
		if strings.HasPrefix(desc.UDN, virtualUDNPrefix) {
			continue // one of our own server proxies
		}
		for _, rs := range services {
			ls, err := p.convert(desc, rs)
			if err != nil {
				continue
			}
			out = append(out, ls)
		}
	}
	return out, nil
}

// convert maps one remote UPnP service to a federation export.
func (p *PCM) convert(desc upnp.ParsedDescription, rs upnp.RemoteService) (pcm.LocalService, error) {
	iface, err := InterfaceFromActions(serviceTypeName(rs.Type), rs.Actions)
	if err != nil {
		return pcm.LocalService{}, err
	}
	name := sanitize(desc.FriendlyName) + "-" + shortServiceID(rs.ID)
	fedDesc := service.Description{
		ID:         "upnp:" + name,
		Name:       desc.FriendlyName,
		Middleware: "upnp",
		Interface:  iface,
		Context: map[string]string{
			"upnp.udn":         desc.UDN,
			"upnp.deviceType":  desc.DeviceType,
			"upnp.serviceType": rs.Type,
		},
	}
	cp := p.cp
	inv := service.InvokerFunc(func(ctx context.Context, op string, args []service.Value) (service.Value, error) {
		return cp.Invoke(ctx, rs, op, args)
	})
	return pcm.LocalService{Desc: fedDesc, Invoker: inv}, nil
}

// InterfaceFromActions converts a UPnP action table to a federation
// interface.
func InterfaceFromActions(name string, actions []upnp.Action) (service.Interface, error) {
	iface := service.Interface{Name: name}
	for _, a := range actions {
		op := service.Operation{Name: a.Name, Output: a.Out}
		if op.Output == service.KindInvalid {
			op.Output = service.KindVoid
		}
		for _, in := range a.In {
			op.Inputs = append(op.Inputs, service.Parameter{Name: in.Name, Type: in.Type})
		}
		iface.Operations = append(iface.Operations, op)
	}
	if err := iface.Validate(); err != nil {
		return service.Interface{}, err
	}
	return iface, nil
}

// ActionsFromInterface converts a federation interface to a UPnP action
// table (SP direction).
func ActionsFromInterface(iface service.Interface) []upnp.Action {
	out := make([]upnp.Action, 0, len(iface.Operations))
	for _, op := range iface.Operations {
		a := upnp.Action{Name: op.Name, Out: op.Output}
		for _, in := range op.Inputs {
			a.In = append(a.In, upnp.Arg{Name: in.Name, Type: in.Type})
		}
		out = append(out, a)
	}
	return out
}

// offer hosts a virtual UPnP device for one remote service (SP
// direction).
func (p *PCM) offer(gw *vsg.VSG, remote vsr.Remote) (func(), error) {
	invoker := pcm.RemoteInvoker(gw, remote)
	shortID := sanitize(remote.Desc.ID)
	svc := upnp.Service{
		Type:    "urn:homeconnect-org:service:" + remote.Desc.Interface.Name + ":1",
		ID:      "urn:homeconnect-org:serviceId:" + shortID,
		Actions: ActionsFromInterface(remote.Desc.Interface),
	}
	desc := upnp.Description{
		DeviceType:   "urn:homeconnect-org:device:Virtual:1",
		FriendlyName: remote.Desc.ID,
		UDN:          virtualUDNPrefix + shortID,
		Services:     []upnp.Service{svc},
	}
	dev := upnp.NewDevice(desc, map[string]upnp.ActionHandler{
		svc.ShortID(): func(ctx context.Context, action string, args []service.Value) (service.Value, error) {
			return invoker.Invoke(ctx, action, args)
		},
	})
	if err := dev.Start("127.0.0.1:0", "127.0.0.1:0"); err != nil {
		return nil, fmt.Errorf("upnppcm: host virtual device for %s: %w", remote.Desc.ID, err)
	}
	p.mu.Lock()
	p.virtual[remote.Desc.ID] = dev
	p.mu.Unlock()
	return func() {
		p.mu.Lock()
		delete(p.virtual, remote.Desc.ID)
		p.mu.Unlock()
		dev.Close()
	}, nil
}

// OfferedCount reports the number of live Server Proxies (tests).
func (p *PCM) OfferedCount() int {
	if p.imp == nil {
		return 0
	}
	return p.imp.OfferedCount()
}

// serviceTypeName extracts the bare type name from a service type URN.
func serviceTypeName(urn string) string {
	parts := strings.Split(urn, ":")
	if len(parts) >= 2 {
		return parts[len(parts)-2]
	}
	return urn
}

// shortServiceID extracts the trailing component of a serviceId URN.
func shortServiceID(id string) string {
	if i := strings.LastIndexByte(id, ':'); i >= 0 {
		return id[i+1:]
	}
	return id
}

// sanitize makes a string safe for IDs and UDNs.
func sanitize(s string) string {
	return strings.Map(func(r rune) rune {
		switch {
		case r >= 'a' && r <= 'z', r >= 'A' && r <= 'Z', r >= '0' && r <= '9', r == '-', r == '.':
			return r
		default:
			return '-'
		}
	}, s)
}

var _ pcm.PCM = (*PCM)(nil)
