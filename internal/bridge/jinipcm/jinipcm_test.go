package jinipcm

import (
	"context"
	"testing"
	"time"

	"homeconnect/internal/core/vsg"
	"homeconnect/internal/core/vsr"
	"homeconnect/internal/jini"
	"homeconnect/internal/service"
)

func TestInterfaceSpecRoundTrip(t *testing.T) {
	spec := jini.InterfaceSpec{
		Name: "Laserdisc",
		Methods: []jini.MethodSpec{
			{Name: "Play"},
			{Name: "SetChapter", Params: []string{"int"}},
			{Name: "Describe", Params: []string{"string", "bool"}, Return: "string"},
			{Name: "Dump", Return: "bytes"},
			{Name: "Gain", Return: "float"},
		},
	}
	iface, err := InterfaceFromSpec(spec)
	if err != nil {
		t.Fatalf("InterfaceFromSpec: %v", err)
	}
	if len(iface.Operations) != 5 {
		t.Fatalf("operations = %d", len(iface.Operations))
	}
	op, _ := iface.Operation("Describe")
	if op.Output != service.KindString || len(op.Inputs) != 2 || op.Inputs[1].Type != service.KindBool {
		t.Errorf("Describe = %+v", op)
	}
	play, _ := iface.Operation("Play")
	if play.Output != service.KindVoid {
		t.Errorf("Play output = %v", play.Output)
	}

	back := SpecFromInterface(iface)
	if len(back.Methods) != len(spec.Methods) {
		t.Fatalf("round trip lost methods: %+v", back)
	}
	for i := range spec.Methods {
		if back.Methods[i].Name != spec.Methods[i].Name || back.Methods[i].Return != spec.Methods[i].Return {
			t.Errorf("method %d: %+v != %+v", i, back.Methods[i], spec.Methods[i])
		}
		if len(back.Methods[i].Params) != len(spec.Methods[i].Params) {
			t.Errorf("method %d params: %v != %v", i, back.Methods[i].Params, spec.Methods[i].Params)
		}
	}
}

func TestInterfaceFromSpecRejectsBadKinds(t *testing.T) {
	bad := []jini.InterfaceSpec{
		{Name: "X", Methods: []jini.MethodSpec{{Name: "M", Return: "tuple"}}},
		{Name: "X", Methods: []jini.MethodSpec{{Name: "M", Params: []string{"void"}}}},
		{Name: "X", Methods: []jini.MethodSpec{{Name: "M", Params: []string{"complex"}}}},
	}
	for i, spec := range bad {
		if _, err := InterfaceFromSpec(spec); err == nil {
			t.Errorf("case %d accepted", i)
		}
	}
}

// TestPCMBothDirections runs the PCM against a real lookup service and
// gateway: a native Jini echo service becomes a federation service (CP),
// and a synthetic remote service becomes a Jini service (SP).
func TestPCMBothDirections(t *testing.T) {
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()

	lookup := jini.NewLookupService()
	if err := lookup.Start("127.0.0.1:0"); err != nil {
		t.Fatal(err)
	}
	defer lookup.Close()
	exporter := jini.NewExporter()
	if err := exporter.Start("127.0.0.1:0"); err != nil {
		t.Fatal(err)
	}
	defer exporter.Close()

	// Native Jini echo service.
	spec := jini.InterfaceSpec{Name: "Echo", Methods: []jini.MethodSpec{
		{Name: "Echo", Params: []string{"string"}, Return: "string"},
	}}
	proxy := exporter.Export(spec, jini.InvocableFunc(func(_ string, args []any) (any, error) {
		return args[0].(string) + "!", nil
	}))
	reg, err := jini.Discover(ctx, lookup.Addr())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := reg.Register(ctx, jini.ServiceItem{
		Proxy: proxy,
		Attrs: []jini.Entry{{Name: EntryName, Value: "echo-1"}},
	}, time.Minute); err != nil {
		t.Fatal(err)
	}

	// Gateway + PCM.
	srv, err := vsr.StartServer("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	gw := vsg.New("jini-net", srv.URL())
	if err := gw.Start("127.0.0.1:0"); err != nil {
		t.Fatal(err)
	}
	defer gw.Close()
	p := New(lookup.Addr())
	if err := p.Start(ctx, gw); err != nil {
		t.Fatal(err)
	}
	defer func() { _ = p.Stop() }()

	// CP: the federation reaches the native echo service.
	waitFor(t, func() bool {
		_, err := gw.VSR().Lookup(ctx, "jini:echo-1")
		return err == nil
	})
	got, err := gw.Call(ctx, "jini:echo-1", "Echo", []service.Value{service.StringValue("hi")})
	if err != nil || got.Str() != "hi!" {
		t.Fatalf("CP call = %v, %v", got, err)
	}

	// SP: publish a synthetic remote service; it must appear as a Jini
	// service with the imported tag.
	remoteDesc := service.Description{
		ID: "synth:upper", Name: "upper", Middleware: "synth",
		Interface: service.Interface{Name: "Upper", Operations: []service.Operation{
			{Name: "Up", Inputs: []service.Parameter{{Name: "v", Type: service.KindString}}, Output: service.KindString},
		}},
		Context: map[string]string{service.CtxNetwork: "other-net"},
	}
	gw2 := vsg.New("other-net", srv.URL())
	if err := gw2.Start("127.0.0.1:0"); err != nil {
		t.Fatal(err)
	}
	defer gw2.Close()
	upper := service.InvokerFunc(func(_ context.Context, _ string, args []service.Value) (service.Value, error) {
		s := args[0].Str()
		out := make([]byte, len(s))
		for i := 0; i < len(s); i++ {
			c := s[i]
			if c >= 'a' && c <= 'z' {
				c -= 'a' - 'A'
			}
			out[i] = c
		}
		return service.StringValue(string(out)), nil
	})
	if err := gw2.Export(ctx, remoteDesc, upper); err != nil {
		t.Fatal(err)
	}

	var spProxy jini.ProxyDescriptor
	waitFor(t, func() bool {
		items, err := reg.Lookup(ctx, jini.ServiceTemplate{IfaceName: "Upper"})
		if err != nil || len(items) != 1 {
			return false
		}
		spProxy = items[0].Proxy
		return true
	})
	res, err := jini.Call(ctx, spProxy, "Up", []any{"abc"})
	if err != nil || res.(string) != "ABC" {
		t.Fatalf("SP call = %v, %v", res, err)
	}
	if p.OfferedCount() != 1 {
		t.Errorf("OfferedCount = %d", p.OfferedCount())
	}

	// The SP registration must not be re-exported by the CP (loop
	// guard): only the two genuine services exist in the repository.
	remotes, err := gw.List(ctx, vsr.Query{})
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range remotes {
		if r.Desc.Middleware == "jini" && r.Desc.ID != "jini:echo-1" {
			t.Errorf("leaked server proxy into the repository: %s", r.Desc.ID)
		}
	}
}

func waitFor(t *testing.T, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for !cond() {
		if time.Now().After(deadline) {
			t.Fatal("condition not reached")
		}
		time.Sleep(20 * time.Millisecond)
	}
}
