// Package jinipcm is the Protocol Conversion Manager for the Jini
// simulation — one of the four PCMs in the paper's prototype (§4.1).
//
// Client Proxy direction: the PCM polls the Jini lookup service, converts
// each registered service's InterfaceSpec into a federation interface,
// and exports an Invoker that drives the service over RMI-sim — "the CP
// converts Jini services into SOAP services".
//
// Server Proxy direction: for every remote federation service, the PCM
// exports a Jini remote object forwarding to the gateway and registers it
// in the lookup service, so unmodified Jini clients discover and call it
// natively — "the SP converts SOAP services into Jini services".
package jinipcm

import (
	"context"
	"fmt"
	"strings"
	"sync"
	"time"

	"homeconnect/internal/core/pcm"
	"homeconnect/internal/core/vsg"
	"homeconnect/internal/core/vsr"
	"homeconnect/internal/jini"
	"homeconnect/internal/service"
)

// Entry names used on Jini registrations.
const (
	// EntryName is the attribute carrying the service's short name.
	EntryName = "name"
	// entryImported tags Server Proxy registrations.
	entryImported = service.CtxImported
	// entryOrigin carries the origin federation ID on Server Proxies.
	entryOrigin = service.CtxOrigin
)

// proxyLease is the lease requested for Server Proxy registrations.
const proxyLease = 30 * time.Second

// PCM bridges one Jini network (one lookup service) to the federation.
type PCM struct {
	lookupAddr string
	runner     pcm.Runner

	mu       sync.Mutex
	reg      *jini.Registrar
	exporter *jini.Exporter

	exp *pcm.Exporter
	imp *pcm.Importer
}

// New builds a PCM for the lookup service at lookupAddr.
func New(lookupAddr string) *PCM {
	return &PCM{lookupAddr: lookupAddr}
}

// Middleware implements pcm.PCM.
func (p *PCM) Middleware() string { return "jini" }

// Start implements pcm.PCM.
func (p *PCM) Start(ctx context.Context, gw *vsg.VSG) error {
	runCtx := p.runner.Start(ctx)
	reg, err := jini.Discover(ctx, p.lookupAddr)
	if err != nil {
		return fmt.Errorf("jinipcm: %w", err)
	}
	exporter := jini.NewExporter()
	if err := exporter.Start("127.0.0.1:0"); err != nil {
		return fmt.Errorf("jinipcm: exporter: %w", err)
	}
	p.mu.Lock()
	p.reg = reg
	p.exporter = exporter
	p.mu.Unlock()

	p.exp = &pcm.Exporter{List: p.listLocal}
	p.imp = &pcm.Importer{Middleware: "jini", Offer: func(ctx context.Context, r vsr.Remote) (func(), error) {
		return p.offer(ctx, gw, r)
	}}
	p.runner.Go(func() { p.exp.Run(runCtx, gw) })
	p.runner.Go(func() { p.imp.Run(runCtx, gw) })
	return nil
}

// Stop implements pcm.PCM.
func (p *PCM) Stop() error {
	p.runner.Stop()
	p.mu.Lock()
	exporter := p.exporter
	p.mu.Unlock()
	if exporter != nil {
		exporter.Close()
	}
	return nil
}

// listLocal enumerates Jini services for the Client Proxy direction.
func (p *PCM) listLocal(ctx context.Context) ([]pcm.LocalService, error) {
	p.mu.Lock()
	reg := p.reg
	p.mu.Unlock()
	items, err := reg.Lookup(ctx, jini.ServiceTemplate{})
	if err != nil {
		return nil, err
	}
	var out []pcm.LocalService
	for _, item := range items {
		if hasEntry(item.Attrs, entryImported, "true") {
			continue // a Server Proxy we (or a peer PCM) planted
		}
		desc, err := describe(item)
		if err != nil {
			continue // unconvertible registration; leave it Jini-only
		}
		out = append(out, pcm.LocalService{Desc: desc, Invoker: clientProxy(item.Proxy, desc.Interface)})
	}
	return out, nil
}

// describe converts a Jini registration into a federation description —
// the metadata step of automatic proxy generation.
func describe(item jini.ServiceItem) (service.Description, error) {
	iface, err := InterfaceFromSpec(item.Proxy.Iface)
	if err != nil {
		return service.Description{}, err
	}
	name := entryValue(item.Attrs, EntryName)
	if name == "" {
		name = strings.ToLower(item.Proxy.Iface.Name) + "-" + item.ID.String()[:8]
	}
	desc := service.Description{
		ID:         "jini:" + name,
		Name:       name,
		Middleware: "jini",
		Interface:  iface,
		Context:    map[string]string{"jini.serviceID": item.ID.String()},
	}
	for _, e := range item.Attrs {
		if e.Name != EntryName {
			desc.Context["jini.attr."+e.Name] = e.Value
		}
	}
	return desc, nil
}

// InterfaceFromSpec converts Jini interface metadata to the service
// model.
func InterfaceFromSpec(spec jini.InterfaceSpec) (service.Interface, error) {
	iface := service.Interface{Name: spec.Name}
	for _, m := range spec.Methods {
		op := service.Operation{Name: m.Name, Output: service.KindVoid}
		if m.Return != "" {
			k := service.KindFromString(m.Return)
			if !k.Valid() {
				return service.Interface{}, fmt.Errorf("jinipcm: method %s: bad return kind %q", m.Name, m.Return)
			}
			op.Output = k
		}
		for i, pk := range m.Params {
			k := service.KindFromString(pk)
			if !k.Valid() || k == service.KindVoid {
				return service.Interface{}, fmt.Errorf("jinipcm: method %s: bad param kind %q", m.Name, pk)
			}
			op.Inputs = append(op.Inputs, service.Parameter{Name: fmt.Sprintf("arg%d", i), Type: k})
		}
		iface.Operations = append(iface.Operations, op)
	}
	if err := iface.Validate(); err != nil {
		return service.Interface{}, err
	}
	return iface, nil
}

// SpecFromInterface converts a federation interface to Jini metadata (the
// Server Proxy direction).
func SpecFromInterface(iface service.Interface) jini.InterfaceSpec {
	spec := jini.InterfaceSpec{Name: iface.Name}
	for _, op := range iface.Operations {
		m := jini.MethodSpec{Name: op.Name}
		if op.Output != service.KindVoid {
			m.Return = op.Output.String()
		}
		for _, in := range op.Inputs {
			m.Params = append(m.Params, in.Type.String())
		}
		spec.Methods = append(spec.Methods, m)
	}
	return spec
}

// clientProxy generates the CP Invoker for a Jini proxy descriptor: calls
// convert federation values to RMI-sim values and back.
func clientProxy(proxy jini.ProxyDescriptor, iface service.Interface) service.Invoker {
	return service.InvokerFunc(func(ctx context.Context, op string, args []service.Value) (service.Value, error) {
		opSpec, ok := iface.Operation(op)
		if !ok {
			return service.Value{}, fmt.Errorf("%s: %w", op, service.ErrNoSuchOperation)
		}
		goArgs := make([]any, len(args))
		for i, a := range args {
			goArgs[i] = a.ToGo()
		}
		result, err := jini.Call(ctx, proxy, op, goArgs)
		if err != nil {
			return service.Value{}, fmt.Errorf("jinipcm: %s.%s: %w", proxy.Iface.Name, op, err)
		}
		if opSpec.Output == service.KindVoid {
			return service.Void(), nil
		}
		v, err := service.FromGo(result)
		if err != nil {
			return service.Value{}, fmt.Errorf("jinipcm: %s.%s result: %w", proxy.Iface.Name, op, err)
		}
		return v, nil
	})
}

// offer creates the SP for one remote service: a Jini remote object
// backed by the gateway, registered in the lookup service under an
// auto-renewed lease.
func (p *PCM) offer(ctx context.Context, gw *vsg.VSG, remote vsr.Remote) (func(), error) {
	p.mu.Lock()
	reg := p.reg
	exporter := p.exporter
	p.mu.Unlock()

	invoker := pcm.RemoteInvoker(gw, remote)
	iface := remote.Desc.Interface
	impl := jini.InvocableFunc(func(method string, goArgs []any) (any, error) {
		opSpec, ok := iface.Operation(method)
		if !ok {
			return nil, fmt.Errorf("%w: %s", jini.ErrNoSuchMethod, method)
		}
		args := make([]service.Value, len(goArgs))
		for i, ga := range goArgs {
			v, err := service.FromGo(ga)
			if err != nil {
				return nil, fmt.Errorf("%w: arg %d: %v", jini.ErrBadArgs, i, err)
			}
			if v.Kind() != opSpec.Inputs[i].Type {
				// Coerce through text form when the Jini client sent a
				// compatible scalar; otherwise reject.
				coerced, cerr := service.ParseText(opSpec.Inputs[i].Type, v.Text())
				if cerr != nil {
					return nil, fmt.Errorf("%w: arg %d has kind %v, want %v", jini.ErrBadArgs, i, v.Kind(), opSpec.Inputs[i].Type)
				}
				v = coerced
			}
			args[i] = v
		}
		result, err := invoker.Invoke(context.Background(), method, args)
		if err != nil {
			return nil, err
		}
		return result.ToGo(), nil
	})

	proxy := exporter.Export(SpecFromInterface(iface), impl)
	attrs := []jini.Entry{
		{Name: EntryName, Value: remote.Desc.ID},
		{Name: entryImported, Value: "true"},
		{Name: entryOrigin, Value: remote.Desc.ID},
	}
	lease, err := reg.Register(ctx, jini.ServiceItem{Proxy: proxy, Attrs: attrs}, proxyLease)
	if err != nil {
		exporter.Unexport(proxy.ObjectID)
		return nil, fmt.Errorf("jinipcm: register SP for %s: %w", remote.Desc.ID, err)
	}
	renewCtx, cancelRenew := context.WithCancel(context.Background())
	wait := lease.AutoRenew(renewCtx, proxyLease/3)

	return func() {
		cancelRenew()
		_ = wait()
		cctx, cancel := context.WithTimeout(context.Background(), 2*time.Second)
		defer cancel()
		_ = lease.Cancel(cctx)
		exporter.Unexport(proxy.ObjectID)
	}, nil
}

// OfferedCount reports the number of live Server Proxies (tests).
func (p *PCM) OfferedCount() int {
	if p.imp == nil {
		return 0
	}
	return p.imp.OfferedCount()
}

func hasEntry(attrs []jini.Entry, name, value string) bool {
	for _, e := range attrs {
		if e.Name == name && e.Value == value {
			return true
		}
	}
	return false
}

func entryValue(attrs []jini.Entry, name string) string {
	for _, e := range attrs {
		if e.Name == name {
			return e.Value
		}
	}
	return ""
}

var _ pcm.PCM = (*PCM)(nil)
