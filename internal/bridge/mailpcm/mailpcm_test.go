package mailpcm

import (
	"testing"

	"homeconnect/internal/mail"
)

func TestParseCommand(t *testing.T) {
	tests := []struct {
		subject string
		body    string
		wantSvc string
		wantOp  string
		args    []string
		ok      bool
	}{
		{"invoke x10:lamp-1 On", "", "x10:lamp-1", "On", nil, true},
		{"invoke havi:vcr-vcr1 SetChannel", "12", "havi:vcr-vcr1", "SetChannel", []string{"12"}, true},
		{"INVOKE a:b Op", "one\ntwo\n", "a:b", "Op", []string{"one", "two"}, true},
		{"invoke a:b Op", "  padded  \n\n", "a:b", "Op", []string{"padded"}, true},
		{"hello there", "", "", "", nil, false},
		{"invoke onlyservice", "", "", "", nil, false},
		{"invoke a b c d", "", "", "", nil, false},
		{"", "", "", "", nil, false},
	}
	for _, tt := range tests {
		svc, op, args, err := ParseCommand(mail.Message{Subject: tt.subject, Body: tt.body})
		if tt.ok {
			if err != nil {
				t.Errorf("ParseCommand(%q): %v", tt.subject, err)
				continue
			}
			if svc != tt.wantSvc || op != tt.wantOp {
				t.Errorf("ParseCommand(%q) = %s.%s", tt.subject, svc, op)
			}
			if len(args) != len(tt.args) {
				t.Errorf("ParseCommand(%q) args = %v, want %v", tt.subject, args, tt.args)
				continue
			}
			for i := range args {
				if args[i] != tt.args[i] {
					t.Errorf("arg %d = %q, want %q", i, args[i], tt.args[i])
				}
			}
		} else if err == nil {
			t.Errorf("ParseCommand(%q) accepted", tt.subject)
		}
	}
}

func TestNewDefaults(t *testing.T) {
	p := New(Config{SMTPAddr: "a", POP3Addr: "b", CommandAddr: "cmd@h"})
	if p.cfg.FromAddr != "cmd@h" {
		t.Errorf("FromAddr default = %q", p.cfg.FromAddr)
	}
	if p.cfg.PollInterval <= 0 {
		t.Error("PollInterval not defaulted")
	}
	if p.Middleware() != "mail" {
		t.Errorf("Middleware = %q", p.Middleware())
	}
}

func TestStartRequiresConfig(t *testing.T) {
	p := New(Config{})
	if err := p.Start(nil, nil); err == nil { //nolint:staticcheck // nil ctx fine: fails before use
		t.Error("Start without config accepted")
	}
}
