// Package mailpcm is the Protocol Conversion Manager for the Internet
// Mail service — the fourth middleware in the paper's prototype (§4.1),
// demonstrating §2's point that service integration spans Internet
// services, not just appliances.
//
// Client Proxy direction: the PCM exports a "mail:outbox" service whose
// Send operation submits mail through SMTP, so any appliance on any
// middleware can send notifications (the autorecord example mails the
// user when a recording starts).
//
// Server Proxy direction: the PCM polls a command mailbox over POP3.
// Messages whose subject reads "invoke <service-id> <operation>" are
// executed against the federation — one text argument per body line —
// and the result is mailed back to the sender. Store-and-forward command
// execution, exactly how early home-automation gateways integrated mail.
package mailpcm

import (
	"context"
	"fmt"
	"strings"
	"time"

	"homeconnect/internal/core/pcm"
	"homeconnect/internal/core/vsg"
	"homeconnect/internal/mail"
	"homeconnect/internal/service"
)

// Config wires the PCM to its mail infrastructure.
type Config struct {
	// SMTPAddr is the outgoing mail server.
	SMTPAddr string
	// POP3Addr is the retrieval server for the command mailbox.
	POP3Addr string
	// CommandAddr is the mailbox watched for "invoke" commands.
	CommandAddr string
	// FromAddr is the sender identity for outgoing mail.
	FromAddr string
	// PollInterval between mailbox checks; pcm.DefaultSyncInterval if 0.
	PollInterval time.Duration
}

// PCM bridges mail to the federation.
type PCM struct {
	cfg    Config
	runner pcm.Runner
	exp    *pcm.Exporter
}

// New builds the PCM from configuration.
func New(cfg Config) *PCM {
	if cfg.FromAddr == "" {
		cfg.FromAddr = cfg.CommandAddr
	}
	if cfg.PollInterval <= 0 {
		cfg.PollInterval = pcm.DefaultSyncInterval
	}
	return &PCM{cfg: cfg}
}

// Middleware implements pcm.PCM.
func (p *PCM) Middleware() string { return "mail" }

// Start implements pcm.PCM.
func (p *PCM) Start(ctx context.Context, gw *vsg.VSG) error {
	if p.cfg.SMTPAddr == "" || p.cfg.POP3Addr == "" || p.cfg.CommandAddr == "" {
		return fmt.Errorf("mailpcm: SMTPAddr, POP3Addr and CommandAddr are required")
	}
	runCtx := p.runner.Start(ctx)

	p.exp = &pcm.Exporter{List: p.listLocal}
	p.runner.Go(func() { p.exp.Run(runCtx, gw) })
	p.runner.Go(func() { p.commandLoop(runCtx, gw) })
	return nil
}

// Stop implements pcm.PCM.
func (p *PCM) Stop() error {
	p.runner.Stop()
	return nil
}

// outboxInterface is the CP-exported mail service.
func outboxInterface() service.Interface {
	return service.Interface{
		Name: "Mailer",
		Doc:  "Outgoing Internet mail",
		Operations: []service.Operation{
			{
				Name: "Send",
				Doc:  "Send a mail message",
				Inputs: []service.Parameter{
					{Name: "to", Type: service.KindString},
					{Name: "subject", Type: service.KindString},
					{Name: "body", Type: service.KindString},
				},
				Output: service.KindVoid,
			},
		},
	}
}

func (p *PCM) listLocal(ctx context.Context) ([]pcm.LocalService, error) {
	desc := service.Description{
		ID:         "mail:outbox",
		Name:       "outbox",
		Middleware: "mail",
		Interface:  outboxInterface(),
		Context:    map[string]string{"mail.from": p.cfg.FromAddr},
	}
	inv := service.InvokerFunc(func(_ context.Context, op string, args []service.Value) (service.Value, error) {
		if op != "Send" {
			return service.Value{}, fmt.Errorf("%s: %w", op, service.ErrNoSuchOperation)
		}
		err := mail.Send(p.cfg.SMTPAddr, mail.Message{
			From:    p.cfg.FromAddr,
			To:      args[0].Str(),
			Subject: args[1].Str(),
			Body:    args[2].Str(),
		})
		if err != nil {
			return service.Value{}, fmt.Errorf("mailpcm: %w", err)
		}
		return service.Void(), nil
	})
	return []pcm.LocalService{{Desc: desc, Invoker: inv}}, nil
}

// commandLoop polls the command mailbox and executes invoke commands.
func (p *PCM) commandLoop(ctx context.Context, gw *vsg.VSG) {
	ticker := time.NewTicker(p.cfg.PollInterval)
	defer ticker.Stop()
	for {
		select {
		case <-ctx.Done():
			return
		case <-ticker.C:
			msgs, err := mail.Fetch(p.cfg.POP3Addr, p.cfg.CommandAddr, true)
			if err != nil {
				continue // mail server hiccup; retry next poll
			}
			for _, m := range msgs {
				p.execute(ctx, gw, m)
			}
		}
	}
}

// ParseCommand extracts (serviceID, op, args) from a command message.
// Exposed for the homectl mail tooling and tests.
func ParseCommand(m mail.Message) (serviceID, op string, args []string, err error) {
	fields := strings.Fields(m.Subject)
	if len(fields) != 3 || !strings.EqualFold(fields[0], "invoke") {
		return "", "", nil, fmt.Errorf("mailpcm: subject %q is not 'invoke <service> <op>'", m.Subject)
	}
	for _, line := range strings.Split(m.Body, "\n") {
		line = strings.TrimSpace(line)
		if line != "" {
			args = append(args, line)
		}
	}
	return fields[1], fields[2], args, nil
}

// execute runs one command message and mails the outcome back.
func (p *PCM) execute(ctx context.Context, gw *vsg.VSG, m mail.Message) {
	reply := func(subject, body string) {
		if m.From == "" {
			return
		}
		_ = mail.Send(p.cfg.SMTPAddr, mail.Message{
			From:    p.cfg.FromAddr,
			To:      m.From,
			Subject: subject,
			Body:    body,
		})
	}
	serviceID, op, textArgs, err := ParseCommand(m)
	if err != nil {
		reply("error: "+m.Subject, err.Error())
		return
	}
	remote, err := gw.Resolve(ctx, serviceID)
	if err != nil {
		reply("error: "+m.Subject, err.Error())
		return
	}
	opSpec, ok := remote.Desc.Interface.Operation(op)
	if !ok {
		reply("error: "+m.Subject, fmt.Sprintf("service %s has no operation %s", serviceID, op))
		return
	}
	args, err := service.CoerceArgs(opSpec, textArgs)
	if err != nil {
		reply("error: "+m.Subject, err.Error())
		return
	}
	callCtx, cancel := context.WithTimeout(ctx, 15*time.Second)
	result, err := gw.CallRemote(callCtx, remote, op, args)
	cancel()
	if err != nil {
		reply("error: "+m.Subject, err.Error())
		return
	}
	body := "ok"
	if !result.IsVoid() {
		body = result.Text()
	}
	reply("result: "+m.Subject, body)
}

var _ pcm.PCM = (*PCM)(nil)
