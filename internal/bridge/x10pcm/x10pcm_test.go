package x10pcm

import (
	"context"
	"errors"
	"testing"
	"time"

	"homeconnect/internal/core/vsg"
	"homeconnect/internal/core/vsr"
	"homeconnect/internal/service"
	"homeconnect/internal/x10"
)

// rig builds a powerline with a CM11A, controller, one lamp and one
// appliance, a gateway, and the PCM.
type rig struct {
	line      *x10.Powerline
	lamp      *x10.LampModule
	appliance *x10.ApplianceModule
	gw        *vsg.VSG
	pcm       *PCM
	srv       *vsr.Server
}

var (
	lampAddr      = x10.Address{House: 'A', Unit: 1}
	applianceAddr = x10.Address{House: 'A', Unit: 2}
	boundAddr     = x10.Address{House: 'A', Unit: 9}
)

func newRig(t *testing.T, bindings map[x10.Address]Binding) *rig {
	t.Helper()
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()

	line := x10.NewPowerline()
	pcPort, devPort := x10.NewLink()
	dev := x10.NewCM11A(line, devPort)
	t.Cleanup(dev.Close)
	ctl := x10.NewController(pcPort)
	t.Cleanup(ctl.Close)
	lamp := x10.NewLampModule(line, lampAddr)
	t.Cleanup(lamp.Close)
	appliance := x10.NewApplianceModule(line, applianceAddr)
	t.Cleanup(appliance.Close)

	srv, err := vsr.StartServer("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(srv.Close)
	gw := vsg.New("x10-net", srv.URL())
	if err := gw.Start("127.0.0.1:0"); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(gw.Close)

	p := New(Config{
		Controller: ctl,
		Devices: []DeviceConfig{
			{Name: "lamp-1", Addr: lampAddr, Kind: Lamp},
			{Name: "fan-1", Addr: applianceAddr, Kind: Appliance},
			{Name: "pir-1", Addr: x10.Address{House: 'A', Unit: 5}, Kind: Sensor},
		},
		Bindings: bindings,
	})
	if err := p.Start(ctx, gw); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { _ = p.Stop() })

	r := &rig{line: line, lamp: lamp, appliance: appliance, gw: gw, pcm: p, srv: srv}
	waitFor(t, func() bool {
		remotes, err := gw.List(ctx, vsr.Query{Middleware: "x10"})
		return err == nil && len(remotes) == 2 // sensor is not exported
	})
	return r
}

func TestExportsConfiguredDevices(t *testing.T) {
	r := newRig(t, nil)
	ctx := context.Background()
	remotes, err := r.gw.List(ctx, vsr.Query{Middleware: "x10"})
	if err != nil {
		t.Fatal(err)
	}
	byID := map[string]string{}
	for _, rm := range remotes {
		byID[rm.Desc.ID] = rm.Desc.Interface.Name
	}
	if byID["x10:lamp-1"] != "X10Lamp" || byID["x10:fan-1"] != "X10Appliance" {
		t.Errorf("exports = %v", byID)
	}
}

func TestLampControlAndShadowState(t *testing.T) {
	r := newRig(t, nil)
	ctx := context.Background()

	if _, err := r.gw.Call(ctx, "x10:lamp-1", "On", nil); err != nil {
		t.Fatal(err)
	}
	if !r.lamp.On() {
		t.Error("physical lamp not on")
	}
	got, err := r.gw.Call(ctx, "x10:lamp-1", "Level", nil)
	if err != nil || got.Int() != 100 {
		t.Errorf("shadow level = %v, %v", got, err)
	}

	// SetLevel dims using real Dim frames; shadow tracks the target and
	// the physical module lands near it (X10 dim steps are coarse).
	if _, err := r.gw.Call(ctx, "x10:lamp-1", "SetLevel", []service.Value{service.IntValue(50)}); err != nil {
		t.Fatal(err)
	}
	got, _ = r.gw.Call(ctx, "x10:lamp-1", "Level", nil)
	if got.Int() != 50 {
		t.Errorf("shadow after SetLevel = %v", got)
	}
	phys := r.lamp.Level()
	if phys < 40 || phys > 60 {
		t.Errorf("physical level = %d, want ≈50", phys)
	}

	if _, err := r.gw.Call(ctx, "x10:lamp-1", "Off", nil); err != nil {
		t.Fatal(err)
	}
	if r.lamp.On() {
		t.Error("physical lamp not off")
	}
}

func TestApplianceControl(t *testing.T) {
	r := newRig(t, nil)
	ctx := context.Background()
	if _, err := r.gw.Call(ctx, "x10:fan-1", "On", nil); err != nil {
		t.Fatal(err)
	}
	if !r.appliance.On() {
		t.Error("appliance not on")
	}
	got, err := r.gw.Call(ctx, "x10:fan-1", "State", nil)
	if err != nil || !got.Bool() {
		t.Errorf("State = %v, %v", got, err)
	}
	// SetLevel is a lamp operation.
	if _, err := r.gw.Call(ctx, "x10:fan-1", "SetLevel", []service.Value{service.IntValue(5)}); !errors.Is(err, service.ErrNoSuchOperation) {
		t.Errorf("SetLevel on appliance: %v", err)
	}
}

func TestBindingDispatchesRemoteCalls(t *testing.T) {
	r := newRig(t, map[x10.Address]Binding{
		boundAddr: {ServiceID: "synth:player", OnOp: "Play", OffOp: "Stop", DimOp: "SetVolume"},
	})
	ctx := context.Background()

	// Host the bound remote service on a second gateway.
	gw2 := vsg.New("other-net", r.srv.URL())
	if err := gw2.Start("127.0.0.1:0"); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(gw2.Close)
	calls := make(chan recordedCall, 16)
	desc := service.Description{
		ID: "synth:player", Name: "player", Middleware: "synth",
		Interface: service.Interface{Name: "Player", Operations: []service.Operation{
			{Name: "Play", Output: service.KindVoid},
			{Name: "Stop", Output: service.KindVoid},
			{Name: "SetVolume", Inputs: []service.Parameter{{Name: "v", Type: service.KindInt}}, Output: service.KindVoid},
		}},
	}
	inv := service.InvokerFunc(func(_ context.Context, op string, args []service.Value) (service.Value, error) {
		c := recordedCall{op: op}
		if len(args) == 1 {
			c.arg = args[0].Int()
		}
		calls <- c
		return service.Void(), nil
	})
	if err := gw2.Export(ctx, desc, inv); err != nil {
		t.Fatal(err)
	}

	remote := x10.NewRemote(r.line, 'A')
	if err := remote.Press(boundAddr.Unit, x10.On); err != nil {
		t.Fatal(err)
	}
	expectCall(t, calls, "Play")
	if err := remote.Press(boundAddr.Unit, x10.Off); err != nil {
		t.Fatal(err)
	}
	expectCall(t, calls, "Stop")

	// Bright from 0 → volume rises.
	if err := remote.PressDim(boundAddr.Unit, x10.Bright, 11); err != nil {
		t.Fatal(err)
	}
	got := expectCall(t, calls, "SetVolume")
	if got.arg != 50 {
		t.Errorf("SetVolume arg = %d, want 50", got.arg)
	}
}

func TestSensorPublishesMotionEvents(t *testing.T) {
	r := newRig(t, nil)
	events := make(chan service.Event, 8)
	stop := r.gw.Hub().Subscribe("motion", func(ev service.Event) { events <- ev })
	defer stop()

	sensor := x10.NewMotionSensor(r.line, x10.Address{House: 'A', Unit: 5})
	if err := sensor.Trigger(); err != nil {
		t.Fatal(err)
	}
	select {
	case ev := <-events:
		if ev.Source != "x10:A5" || !ev.Payload["on"].Bool() {
			t.Errorf("event = %+v", ev)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("no motion event")
	}
}

// recordedCall is one observed invocation on the synthetic bound service.
type recordedCall struct {
	op  string
	arg int64
}

func expectCall(t *testing.T, calls chan recordedCall, op string) recordedCall {
	t.Helper()
	select {
	case c := <-calls:
		if c.op != op {
			t.Fatalf("got call %q, want %q", c.op, op)
		}
		return c
	case <-time.After(10 * time.Second):
		t.Fatalf("timed out waiting for %s call", op)
		return recordedCall{}
	}
}

func waitFor(t *testing.T, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for !cond() {
		if time.Now().After(deadline) {
			t.Fatal("condition not reached")
		}
		time.Sleep(20 * time.Millisecond)
	}
}
