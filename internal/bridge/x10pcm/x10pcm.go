// Package x10pcm is the Protocol Conversion Manager for X10 — the PCM
// behind both Figure 4 (a Jini client switching an X10 light through the
// framework) and Figure 5 (the Universal Remote Controller: an X10 remote
// driving Jini and HAVi services).
//
// X10 modules are not self-describing, so the PCM works from
// configuration, exactly as real X10 software did:
//
//   - Devices lists the modules on the powerline; each is exported to the
//     federation with a Lamp- or Appliance-shaped interface whose Invoker
//     drives the CM11A controller (Client Proxy direction). X10 is a
//     one-way medium, so level/state reads come from shadow state
//     maintained by the PCM, the standard X10 practice.
//   - Bindings maps X10 addresses to remote federation services: a
//     keypress received from the powerline (remote control, motion
//     sensor) triggers the bound operation through the gateway (Server
//     Proxy direction — the Universal Remote Controller).
//   - Every received command is also published on the gateway's event
//     hub (topic "x10.command", and "motion" for sensor-flagged
//     addresses), feeding the event-based multimedia system of §4.2.
package x10pcm

import (
	"context"
	"fmt"
	"sync"
	"time"

	"homeconnect/internal/core/pcm"
	"homeconnect/internal/core/vsg"
	"homeconnect/internal/service"
	"homeconnect/internal/x10"
)

// DeviceKind selects the exported interface shape.
type DeviceKind int

// Device kinds.
const (
	// Lamp exports On/Off/SetLevel/Level (dimmable).
	Lamp DeviceKind = iota + 1
	// Appliance exports On/Off/State.
	Appliance
	// Sensor is receive-only: not exported as a callable service, but
	// its frames publish "motion" events.
	Sensor
)

// DeviceConfig describes one module on the powerline.
type DeviceConfig struct {
	Name string
	Addr x10.Address
	Kind DeviceKind
}

// Binding maps one X10 address to an operation on a remote federation
// service — a key on the Universal Remote Controller.
type Binding struct {
	// ServiceID is the remote federation service.
	ServiceID string
	// OnOp and OffOp are invoked for X10 On/Off functions at the bound
	// address. Empty ops are skipped.
	OnOp  string
	OffOp string
	// DimOp, if set, is invoked for Dim/Bright with one int argument:
	// the new shadow level 0-100.
	DimOp string
}

// Config wires the PCM to its powerline hardware.
type Config struct {
	// Controller drives the CM11A.
	Controller *x10.Controller
	// Devices are the modules to export.
	Devices []DeviceConfig
	// Bindings maps addresses to remote operations.
	Bindings map[x10.Address]Binding
}

// PCM bridges one X10 powerline to the federation.
type PCM struct {
	cfg    Config
	runner pcm.Runner

	mu sync.Mutex
	gw *vsg.VSG
	// shadow holds the PCM's view of each device's level (0-100).
	shadow map[x10.Address]int
	// bindLevels tracks dim state per bound address for DimOp.
	bindLevels map[x10.Address]int

	exp *pcm.Exporter
}

// New builds the PCM from configuration.
func New(cfg Config) *PCM {
	return &PCM{
		cfg:        cfg,
		shadow:     make(map[x10.Address]int),
		bindLevels: make(map[x10.Address]int),
	}
}

// Middleware implements pcm.PCM.
func (p *PCM) Middleware() string { return "x10" }

// Start implements pcm.PCM.
func (p *PCM) Start(ctx context.Context, gw *vsg.VSG) error {
	if p.cfg.Controller == nil {
		return fmt.Errorf("x10pcm: no controller configured")
	}
	runCtx := p.runner.Start(ctx)
	p.mu.Lock()
	p.gw = gw
	p.mu.Unlock()

	// Client Proxy direction: configured devices, statically known.
	p.exp = &pcm.Exporter{List: p.listLocal}
	p.runner.Go(func() { p.exp.Run(runCtx, gw) })

	// Server Proxy direction: received commands dispatch to bindings and
	// publish events. The controller invokes handlers on its manage
	// goroutine, so commands are queued to a worker: off the controller
	// goroutine (bindings may Send), but still in arrival order —
	// keypress ordering is semantically meaningful.
	cmds := make(chan x10.Command, 64)
	p.runner.Go(func() {
		for {
			select {
			case <-runCtx.Done():
				return
			case cmd := <-cmds:
				p.handleCommand(runCtx, cmd)
			}
		}
	})
	p.cfg.Controller.OnCommand(func(cmd x10.Command) {
		select {
		case cmds <- cmd:
		default:
			// Queue overflow: drop, as a flooded powerline would.
		}
	})
	return nil
}

// Stop implements pcm.PCM.
func (p *PCM) Stop() error {
	p.cfg.Controller.OnCommand(nil)
	p.runner.Stop()
	return nil
}

// interfaces per device kind.

func lampInterface() service.Interface {
	return service.Interface{
		Name: "X10Lamp",
		Doc:  "Dimmable X10 lamp module",
		Operations: []service.Operation{
			{Name: "On", Output: service.KindVoid},
			{Name: "Off", Output: service.KindVoid},
			{Name: "SetLevel", Inputs: []service.Parameter{{Name: "level", Type: service.KindInt}}, Output: service.KindVoid},
			{Name: "Level", Output: service.KindInt},
		},
	}
}

func applianceInterface() service.Interface {
	return service.Interface{
		Name: "X10Appliance",
		Doc:  "X10 appliance relay module",
		Operations: []service.Operation{
			{Name: "On", Output: service.KindVoid},
			{Name: "Off", Output: service.KindVoid},
			{Name: "State", Output: service.KindBool},
		},
	}
}

// listLocal enumerates configured devices; static, but run through the
// standard exporter so hot-editing configs or future discovery slots in.
func (p *PCM) listLocal(ctx context.Context) ([]pcm.LocalService, error) {
	var out []pcm.LocalService
	for _, d := range p.cfg.Devices {
		if d.Kind == Sensor {
			continue
		}
		d := d
		var iface service.Interface
		switch d.Kind {
		case Lamp:
			iface = lampInterface()
		case Appliance:
			iface = applianceInterface()
		default:
			continue
		}
		desc := service.Description{
			ID:         "x10:" + d.Name,
			Name:       d.Name,
			Middleware: "x10",
			Interface:  iface,
			Context:    map[string]string{"x10.address": d.Addr.String()},
		}
		out = append(out, pcm.LocalService{Desc: desc, Invoker: p.deviceInvoker(d)})
	}
	return out, nil
}

// deviceInvoker generates the CP Invoker for one module: operations
// become CM11A transmissions plus shadow-state updates.
func (p *PCM) deviceInvoker(d DeviceConfig) service.Invoker {
	return service.InvokerFunc(func(ctx context.Context, op string, args []service.Value) (service.Value, error) {
		switch op {
		case "On":
			if err := p.cfg.Controller.Send(ctx, d.Addr, x10.On, 0); err != nil {
				return service.Value{}, fmt.Errorf("x10pcm: %w", err)
			}
			p.setShadow(d.Addr, 100)
			return service.Void(), nil
		case "Off":
			if err := p.cfg.Controller.Send(ctx, d.Addr, x10.Off, 0); err != nil {
				return service.Value{}, fmt.Errorf("x10pcm: %w", err)
			}
			p.setShadow(d.Addr, 0)
			return service.Void(), nil
		case "SetLevel":
			if d.Kind != Lamp {
				return service.Value{}, fmt.Errorf("SetLevel on non-lamp: %w", service.ErrNoSuchOperation)
			}
			target := int(args[0].Int())
			if target < 0 {
				target = 0
			}
			if target > 100 {
				target = 100
			}
			if err := p.sendLevel(ctx, d.Addr, target); err != nil {
				return service.Value{}, err
			}
			return service.Void(), nil
		case "Level":
			return service.IntValue(int64(p.getShadow(d.Addr))), nil
		case "State":
			return service.BoolValue(p.getShadow(d.Addr) > 0), nil
		default:
			return service.Value{}, fmt.Errorf("%s: %w", op, service.ErrNoSuchOperation)
		}
	})
}

// sendLevel reaches a target level with On + Dim/Bright steps, mirroring
// how X10 software drives dimmers, and updates shadow state.
func (p *PCM) sendLevel(ctx context.Context, addr x10.Address, target int) error {
	current := p.getShadow(addr)
	if target == current {
		return nil
	}
	if current == 0 && target > 0 {
		// Lamp modules wake at full brightness.
		if err := p.cfg.Controller.Send(ctx, addr, x10.On, 0); err != nil {
			return fmt.Errorf("x10pcm: %w", err)
		}
		current = 100
	}
	if target == 0 {
		if err := p.cfg.Controller.Send(ctx, addr, x10.Off, 0); err != nil {
			return fmt.Errorf("x10pcm: %w", err)
		}
		p.setShadow(addr, 0)
		return nil
	}
	delta := target - current
	fn := x10.Bright
	if delta < 0 {
		fn = x10.Dim
		delta = -delta
	}
	steps := byte((delta*x10.MaxDim + 99) / 100)
	if steps > 0 {
		if err := p.cfg.Controller.Send(ctx, addr, fn, steps); err != nil {
			return fmt.Errorf("x10pcm: %w", err)
		}
	}
	p.setShadow(addr, target)
	return nil
}

func (p *PCM) setShadow(addr x10.Address, level int) {
	p.mu.Lock()
	defer p.mu.Unlock()
	p.shadow[addr] = level
}

func (p *PCM) getShadow(addr x10.Address) int {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.shadow[addr]
}

// handleCommand is the Server Proxy direction: received powerline
// commands trigger bound remote operations and publish events.
func (p *PCM) handleCommand(ctx context.Context, cmd x10.Command) {
	p.mu.Lock()
	gw := p.gw
	p.mu.Unlock()
	if gw == nil || ctx.Err() != nil {
		return
	}
	for _, unit := range cmd.Units {
		addr := x10.Address{House: cmd.House, Unit: unit}
		p.publishEvent(gw, addr, cmd)
		if b, ok := p.cfg.Bindings[addr]; ok {
			p.dispatchBinding(ctx, gw, addr, b, cmd)
		}
	}
}

// publishEvent feeds the event hub.
func (p *PCM) publishEvent(gw *vsg.VSG, addr x10.Address, cmd x10.Command) {
	topic := "x10.command"
	if p.isSensor(addr) {
		topic = "motion"
	}
	gw.Hub().Publish(service.Event{
		Source: "x10:" + addr.String(),
		Topic:  topic,
		Time:   time.Now(),
		Payload: map[string]service.Value{
			"address":  service.StringValue(addr.String()),
			"function": service.StringValue(cmd.Func.String()),
			"on":       service.BoolValue(cmd.Func == x10.On || cmd.Func == x10.Bright),
		},
	})
}

func (p *PCM) isSensor(addr x10.Address) bool {
	for _, d := range p.cfg.Devices {
		if d.Addr == addr && d.Kind == Sensor {
			return true
		}
	}
	return false
}

// dispatchBinding invokes the remote operation bound to addr.
func (p *PCM) dispatchBinding(ctx context.Context, gw *vsg.VSG, addr x10.Address, b Binding, cmd x10.Command) {
	callCtx, cancel := context.WithTimeout(ctx, 10*time.Second)
	defer cancel()
	switch cmd.Func {
	case x10.On:
		if b.OnOp != "" {
			_, _ = gw.Call(callCtx, b.ServiceID, b.OnOp, nil)
		}
		p.mu.Lock()
		p.bindLevels[addr] = 100
		p.mu.Unlock()
	case x10.Off:
		if b.OffOp != "" {
			_, _ = gw.Call(callCtx, b.ServiceID, b.OffOp, nil)
		}
		p.mu.Lock()
		p.bindLevels[addr] = 0
		p.mu.Unlock()
	case x10.Dim, x10.Bright:
		if b.DimOp == "" {
			return
		}
		p.mu.Lock()
		level := p.bindLevels[addr]
		delta := int(cmd.Dim) * 100 / x10.MaxDim
		if cmd.Func == x10.Dim {
			level -= delta
		} else {
			level += delta
		}
		if level < 0 {
			level = 0
		}
		if level > 100 {
			level = 100
		}
		p.bindLevels[addr] = level
		p.mu.Unlock()
		_, _ = gw.Call(callCtx, b.ServiceID, b.DimOp, []service.Value{service.IntValue(int64(level))})
	}
}

var _ pcm.PCM = (*PCM)(nil)
