package integration

import (
	"context"
	"fmt"
	"testing"
	"time"

	"homeconnect/internal/core"
	"homeconnect/internal/core/pcm"
	"homeconnect/internal/core/vsg"
	"homeconnect/internal/service"
)

// syntheticPCM is a minimal middleware stand-in used to grow federations
// for the scaling experiment (E8): each instance exports one echo
// service, like a real PCM's client-proxy direction.
type syntheticPCM struct {
	name   string
	runner pcm.Runner
}

func newSyntheticPCM(name string) *syntheticPCM { return &syntheticPCM{name: name} }

func (s *syntheticPCM) Middleware() string { return s.name }

func (s *syntheticPCM) Start(ctx context.Context, gw *vsg.VSG) error {
	runCtx := s.runner.Start(ctx)
	exp := &pcm.Exporter{List: func(context.Context) ([]pcm.LocalService, error) {
		desc := service.Description{
			ID:         s.name + ":echo",
			Name:       "echo",
			Middleware: s.name,
			Interface: service.Interface{Name: "Echo", Operations: []service.Operation{
				{Name: "Echo", Inputs: []service.Parameter{{Name: "v", Type: service.KindString}}, Output: service.KindString},
			}},
		}
		inv := service.InvokerFunc(func(_ context.Context, op string, args []service.Value) (service.Value, error) {
			return args[0], nil
		})
		return []pcm.LocalService{{Desc: desc, Invoker: inv}}, nil
	}}
	s.runner.Go(func() { exp.Run(runCtx, gw) })
	return nil
}

func (s *syntheticPCM) Stop() error {
	s.runner.Stop()
	return nil
}

// TestBridgeScaling quantifies §5's claim that pairwise bridges do not
// scale: connecting N middleware needs N PCMs under the framework but
// N(N-1)/2 dedicated bridges pairwise. The test grows a federation and
// checks any-to-any reachability holds with exactly N adapters.
func TestBridgeScaling(t *testing.T) {
	for _, n := range []int{2, 4, 6} {
		t.Run(fmt.Sprintf("N=%d", n), func(t *testing.T) {
			fed, err := core.NewFederation()
			if err != nil {
				t.Fatal(err)
			}
			defer fed.Close()
			ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
			defer cancel()

			adapters := 0
			for i := 0; i < n; i++ {
				name := fmt.Sprintf("mw%d", i)
				net, err := fed.AddNetwork(name)
				if err != nil {
					t.Fatal(err)
				}
				if err := net.Attach(ctx, newSyntheticPCM(name)); err != nil {
					t.Fatal(err)
				}
				adapters++ // one PCM per middleware — the framework's cost
			}
			if adapters != n {
				t.Fatalf("adapters = %d, want %d", adapters, n)
			}
			pairwise := n * (n - 1) / 2
			if n > 2 && pairwise <= n {
				t.Fatalf("test setup broken: pairwise %d should exceed N %d", pairwise, n)
			}

			// Every network reaches every service.
			deadline := time.Now().Add(15 * time.Second)
			for {
				remotes, err := fed.Services(ctx)
				if err == nil && len(remotes) == n {
					break
				}
				if time.Now().After(deadline) {
					t.Fatalf("only %d/%d services registered", len(remotes), n)
				}
				time.Sleep(25 * time.Millisecond)
			}
			for i := 0; i < n; i++ {
				gw := fed.Network(fmt.Sprintf("mw%d", i)).Gateway()
				for j := 0; j < n; j++ {
					id := fmt.Sprintf("mw%d:echo", j)
					got, err := gw.Call(ctx, id, "Echo", []service.Value{service.StringValue("x")})
					if err != nil || got.Str() != "x" {
						t.Fatalf("mw%d → %s: %v, %v", i, id, got, err)
					}
				}
			}
		})
	}
}
