// Secure multi-home federation end to end: a two-home neighborhood with
// mutual trust plus one untrusted outsider running the same protocol.
// The neighborhood behaves exactly as the open federation (replication,
// cross-home calls, ACL-refined access), while the outsider is isolated
// in every direction — its peer links are refused, its direct gateway
// calls fault with a typed auth error, and its repository never holds a
// neighbor's entry. These are the PR-5 counterparts of the PR-4
// multi-home lifecycle tests.
package integration

import (
	"context"
	"errors"
	"testing"
	"time"

	"homeconnect/internal/core"
	"homeconnect/internal/core/identity"
	"homeconnect/internal/service"
)

// secureFed is one authenticated home federation with two networks.
type secureFed struct {
	fed *core.Federation
	id  *identity.Identity
}

func newSecureFed(t *testing.T, home string) *secureFed {
	t.Helper()
	fed, err := core.NewHomeFederation(home)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(fed.Close)
	id, err := identity.Generate(home)
	if err != nil {
		t.Fatal(err)
	}
	if err := fed.SetIdentity(id); err != nil {
		t.Fatal(err)
	}
	for _, name := range []string{"net1", "net2"} {
		if _, err := fed.AddNetwork(name); err != nil {
			t.Fatal(err)
		}
	}
	return &secureFed{fed: fed, id: id}
}

// trust records b in a's trust store.
func (a *secureFed) trust(t *testing.T, b *secureFed) {
	t.Helper()
	if err := a.fed.TrustHome(b.fed.Home(), b.id.PublicKey()); err != nil {
		t.Fatal(err)
	}
}

// TestSecureFederationIsolatesUntrustedHome is the acceptance scenario:
// homes A and B trust each other, home X trusts both but is trusted by
// neither. All pairs peer in both directions.
func TestSecureFederationIsolatesUntrustedHome(t *testing.T) {
	a := newSecureFed(t, "home-a")
	b := newSecureFed(t, "home-b")
	x := newSecureFed(t, "home-x")
	a.trust(t, b)
	b.trust(t, a)
	x.trust(t, a)
	x.trust(t, b)

	all := []*secureFed{a, b, x}
	for _, from := range all {
		for _, to := range all {
			if from == to {
				continue
			}
			if err := from.fed.Peer(to.fed.PeerURL()); err != nil {
				t.Fatal(err)
			}
		}
	}

	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	for _, f := range all {
		home := f.fed.Home()
		if err := f.fed.Network("net1").Gateway().Export(ctx, echoDesc("test:svc-"+home), echoInvoker(home)); err != nil {
			t.Fatal(err)
		}
	}

	// The trusted pair federates normally, with authenticated links.
	callUntil(t, a.fed, "home-b/test:svc-home-b", "home-b", 10*time.Second)
	callUntil(t, b.fed, "home-a/test:svc-home-a", "home-a", 10*time.Second)
	for _, f := range []*secureFed{a, b} {
		peerURL := a.fed.PeerURL()
		if f == a {
			peerURL = b.fed.PeerURL()
		}
		st := f.fed.PeerStatus()[peerURL]
		if !st.Connected || !st.Authenticated {
			t.Errorf("%s link to trusted peer: %+v, want connected+authenticated", f.fed.Home(), st)
		}
	}

	// X's links to A and B are refused with a typed auth error; A's and
	// B's links to X fail response verification (they cannot trust what
	// X signs).
	deadline := time.Now().Add(10 * time.Second)
	for {
		stA := x.fed.PeerStatus()[a.fed.PeerURL()]
		stB := x.fed.PeerStatus()[b.fed.PeerURL()]
		if !stA.Connected && stA.LastError != "" && !stB.Connected && stB.LastError != "" {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("home-x links never reported refusal: %+v", x.fed.PeerStatus())
		}
		time.Sleep(10 * time.Millisecond)
	}
	for {
		st := a.fed.PeerStatus()[x.fed.PeerURL()]
		if !st.Connected && st.LastError != "" {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("home-a link to home-x never reported refusal: %+v", st)
		}
		time.Sleep(10 * time.Millisecond)
	}

	// X's repository never sees a neighbor's service. The refusal loops
	// above already observed each link complete a sync attempt and fail —
	// the same pass that would have applied deltas — so any incorrect
	// replication would have landed before this point.
	services, err := x.fed.Services(ctx)
	if err != nil {
		t.Fatal(err)
	}
	for _, s := range services {
		if s.Desc.ID != "test:svc-home-x" {
			t.Errorf("untrusted home sees %q", s.Desc.ID)
		}
	}
	// And symmetrically, nothing of X leaked into A.
	aServices, err := a.fed.Services(ctx)
	if err != nil {
		t.Fatal(err)
	}
	for _, s := range aServices {
		if s.Desc.Context[service.CtxPeerOrigin] == "home-x" {
			t.Errorf("home-a imported %q from the untrusted home", s.Desc.ID)
		}
	}

	// A direct gateway call with an out-of-band endpoint fails typed.
	// The refusal of an unverified request is deliberately unsigned, so
	// for a *verifying* caller like X it surfaces as a transport-level
	// ErrUnauthenticated (unverified peer refusal) rather than a decoded
	// remote fault; a non-verifying caller decodes the fault itself
	// (TestCrossHomeCallAuthenticated pins that shape).
	remote, err := a.fed.Network("net1").Gateway().Resolve(ctx, "test:svc-home-a")
	if err != nil {
		t.Fatal(err)
	}
	_, err = x.fed.Network("net1").Gateway().CallRemote(ctx, remote, "Where", nil)
	if !errors.Is(err, service.ErrUnauthenticated) {
		t.Errorf("untrusted direct gateway call: %v, want ErrUnauthenticated", err)
	}
}

// TestSecureFederationACL: the service ACL composes with the export
// policy at both enforcement points — replication visibility and the
// call path — per caller home.
func TestSecureFederationACL(t *testing.T) {
	a := newSecureFed(t, "home-a")
	b := newSecureFed(t, "home-b")
	a.trust(t, b)
	b.trust(t, a)
	if err := a.fed.SetExportPolicy(identity.Policy{Deny: []string{"test:private*"}}); err != nil {
		t.Fatal(err)
	}
	a.fed.SetServiceACL(identity.ACL{
		Deny: []identity.Rule{{Caller: "home-b", Service: "test:vcr-*"}},
	})
	if err := b.fed.Peer(a.fed.PeerURL()); err != nil {
		t.Fatal(err)
	}

	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	gw := a.fed.Network("net1").Gateway()
	for id, answer := range map[string]string{
		"test:public-door": "public",
		"test:private-cam": "private",
		"test:vcr-1":       "vcr",
	} {
		if err := gw.Export(ctx, echoDesc(id), echoInvoker(answer)); err != nil {
			t.Fatal(err)
		}
	}

	// The plainly admitted service replicates and answers.
	callUntil(t, b.fed, "home-a/test:public-door", "public", 10*time.Second)
	// Neither denied service is visible to B.
	for _, id := range []string{"home-a/test:private-cam", "home-a/test:vcr-1"} {
		if _, err := b.fed.Call(ctx, id, "Where"); err == nil {
			t.Errorf("denied service %s resolvable from peer", id)
		}
	}
	// Out-of-band endpoints do not bypass either layer: both the
	// export-policy-denied and the ACL-denied service refuse the call
	// with a typed Forbidden fault.
	for _, id := range []string{"test:private-cam", "test:vcr-1"} {
		remote, err := gw.Resolve(ctx, id)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := b.fed.Network("net1").Gateway().CallRemote(ctx, remote, "Where", nil); !errors.Is(err, service.ErrForbidden) {
			t.Errorf("out-of-band call to %s: %v, want ErrForbidden", id, err)
		}
	}
	// Everything keeps working inside home A.
	for id, answer := range map[string]string{
		"test:public-door": "public", "test:private-cam": "private", "test:vcr-1": "vcr",
	} {
		if got, err := a.fed.Call(ctx, id, "Where"); err != nil || got.Str() != answer {
			t.Errorf("in-home call %s = (%v, %v), want %q", id, got, err, answer)
		}
	}
}
