package integration

import (
	"context"
	"errors"
	"testing"
	"time"

	"homeconnect/internal/bridge/havipcm"
	"homeconnect/internal/core/vsg"
	"homeconnect/internal/core/vsr"
	"homeconnect/internal/havi"
	"homeconnect/internal/ieee1394"
	"homeconnect/internal/service"
)

func echoService(id, middleware string) (service.Description, service.Invoker) {
	desc := service.Description{
		ID: id, Name: id, Middleware: middleware,
		Interface: service.Interface{Name: "Echo", Operations: []service.Operation{
			{Name: "Echo", Inputs: []service.Parameter{{Name: "v", Type: service.KindString}}, Output: service.KindString},
		}},
	}
	inv := service.InvokerFunc(func(_ context.Context, _ string, args []service.Value) (service.Value, error) {
		return args[0], nil
	})
	return desc, inv
}

// TestGatewayDeathMakesServicesUnavailableThenExpire: when a network's
// gateway dies, calls to its services fail with ErrUnavailable at once,
// and the repository forgets them after the TTL lapses — the federation
// self-heals instead of serving ghosts.
func TestGatewayDeathMakesServicesUnavailableThenExpire(t *testing.T) {
	srv, err := vsr.StartServer("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()

	victim := vsg.New("victim", srv.URL())
	victim.VSR().SetTTL(500 * time.Millisecond)
	if err := victim.Start("127.0.0.1:0"); err != nil {
		t.Fatal(err)
	}
	observer := vsg.New("observer", srv.URL())
	observer.SetCacheTTL(0) // always consult the repository
	if err := observer.Start("127.0.0.1:0"); err != nil {
		t.Fatal(err)
	}
	defer observer.Close()

	desc, inv := echoService("victim:echo", "victim-mw")
	if err := victim.Export(ctx, desc, inv); err != nil {
		t.Fatal(err)
	}
	if _, err := observer.Call(ctx, "victim:echo", "Echo", []service.Value{service.StringValue("x")}); err != nil {
		t.Fatalf("pre-crash call: %v", err)
	}

	// Kill the gateway. Close unregisters eagerly (the graceful path); to
	// simulate a crash, re-plant the registration afterwards pointing at
	// the dead endpoint, as a crashed gateway's still-live TTL would.
	deadEndpoint := victim.EndpointFor(desc.ID)
	victim.Close()
	staleClient := vsr.New(srv.URL())
	staleClient.SetTTL(500 * time.Millisecond)
	if _, err := staleClient.Register(ctx, desc, deadEndpoint); err != nil {
		t.Fatal(err)
	}

	// Stale window: the repository still lists it, calls fail
	// Unavailable.
	if _, err := observer.Call(ctx, "victim:echo", "Echo", []service.Value{service.StringValue("x")}); !errors.Is(err, service.ErrUnavailable) {
		t.Fatalf("stale-window call: want ErrUnavailable, got %v", err)
	}

	// After the TTL the registration expires and the service is gone.
	waitCond(t, "registration expiry", func() bool {
		_, err := observer.Resolve(ctx, "victim:echo")
		return errors.Is(err, service.ErrNoSuchService)
	})
}

// TestRepositoryRestartRecovers: gateways refresh their registrations, so
// a repository that loses all state (crash/restart on the same address)
// repopulates within the refresh interval.
func TestRepositoryRestartRecovers(t *testing.T) {
	srv, err := vsr.StartServer("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	addr := srv.URL()[len("http://") : len(srv.URL())-len("/uddi")]
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()

	gw := vsg.New("net1", srv.URL())
	gw.VSR().SetTTL(600 * time.Millisecond) // refresh every 200ms
	if err := gw.Start("127.0.0.1:0"); err != nil {
		t.Fatal(err)
	}
	defer gw.Close()
	desc, inv := echoService("mw:echo", "mw")
	if err := gw.Export(ctx, desc, inv); err != nil {
		t.Fatal(err)
	}

	// Kill the repository and restart it empty on the same address.
	srv.Close()
	var srv2 *vsr.Server
	waitCond(t, "repository restart", func() bool {
		s, err := vsr.StartServer(addr)
		if err != nil {
			return false
		}
		srv2 = s
		return true
	})
	defer srv2.Close()
	if srv2.Registry().Len() != 0 {
		t.Fatal("restarted repository not empty")
	}

	// The gateway's refresh loop repopulates it.
	waitCond(t, "re-registration after restart", func() bool {
		return srv2.Registry().Len() == 1
	})
}

// TestHaviHotplugPropagates: plugging a new HAVi device into the 1394
// bus makes its FCM appear in the federation; unplugging removes it —
// the paper's premise that appliances come and go.
func TestHaviHotplugPropagates(t *testing.T) {
	srv, err := vsr.StartServer("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()

	bus := ieee1394.NewBus()
	gw := vsg.New("havi-net", srv.URL())
	if err := gw.Start("127.0.0.1:0"); err != nil {
		t.Fatal(err)
	}
	defer gw.Close()
	p := havipcm.New(bus, 0xFC001)
	if err := p.Start(ctx, gw); err != nil {
		t.Fatal(err)
	}
	defer func() { _ = p.Stop() }()

	// Nothing yet.
	if _, err := gw.VSR().Lookup(ctx, "havi:amp-a1"); !errors.Is(err, service.ErrNoSuchService) {
		t.Fatalf("unexpected pre-plug state: %v", err)
	}

	// Plug in an amplifier.
	ampDev := havi.NewDevice(bus, 0xA0001, "amp")
	havi.NewAmplifier(ampDev, "a1")
	waitCond(t, "amplifier exported", func() bool {
		_, err := gw.VSR().Lookup(ctx, "havi:amp-a1")
		return err == nil
	})
	got, err := gw.Call(ctx, "havi:amp-a1", "Volume", nil)
	if err != nil || got.Int() != 50 {
		t.Fatalf("Volume = %v, %v", got, err)
	}

	// Unplug it (bus reset); the export disappears.
	ampDev.Close()
	waitCond(t, "amplifier withdrawn", func() bool {
		_, err := gw.VSR().Lookup(ctx, "havi:amp-a1")
		return errors.Is(err, service.ErrNoSuchService)
	})
	if _, err := gw.Call(ctx, "havi:amp-a1", "Volume", nil); err == nil {
		t.Error("call to unplugged device succeeded")
	}
}

// TestBusResetDuringStream: detaching an unrelated device mid-transaction
// must not wedge the federation; subsequent calls succeed.
func TestBusResetDuringStream(t *testing.T) {
	srv, err := vsr.StartServer("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()

	bus := ieee1394.NewBus()
	vcrDev := havi.NewDevice(bus, 0xB0001, "vcr")
	defer vcrDev.Close()
	havi.NewVCR(vcrDev, "vcr1")
	extra := havi.NewDevice(bus, 0xE0001, "extra")

	gw := vsg.New("havi-net", srv.URL())
	if err := gw.Start("127.0.0.1:0"); err != nil {
		t.Fatal(err)
	}
	defer gw.Close()
	p := havipcm.New(bus, 0xFC001)
	if err := p.Start(ctx, gw); err != nil {
		t.Fatal(err)
	}
	defer func() { _ = p.Stop() }()
	waitCond(t, "vcr exported", func() bool {
		_, err := gw.VSR().Lookup(ctx, "havi:vcr-vcr1")
		return err == nil
	})

	// Yank a device to force a bus reset, then keep calling. A call that
	// races the reset may fail once with a bus-reset error; the next
	// attempt must succeed.
	extra.Close()
	var lastErr error
	ok := false
	for attempt := 0; attempt < 5; attempt++ {
		if _, lastErr = gw.Call(ctx, "havi:vcr-vcr1", "State", nil); lastErr == nil {
			ok = true
			break
		}
		time.Sleep(50 * time.Millisecond)
	}
	if !ok {
		t.Fatalf("calls never recovered after bus reset: %v", lastErr)
	}
}
