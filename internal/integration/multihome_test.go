// Multi-home federation end to end: the register → resolve → call →
// re-home → expire lifecycle across two peered homes, export-policy
// enforcement, and peer-outage degraded mode (TTL fallback surfaced
// through PeerStatus). These are the PR-4 counterparts of the in-home
// figure tests.
package integration

import (
	"context"
	"fmt"
	"testing"
	"time"

	"homeconnect/internal/core"
	"homeconnect/internal/core/peer"
	"homeconnect/internal/service"
)

// echoDesc builds a one-operation service answering with a fixed string.
func echoDesc(id string) service.Description {
	return service.Description{
		ID: id, Name: id, Middleware: "test",
		Interface: service.Interface{Name: "Echo", Operations: []service.Operation{
			{Name: "Where", Output: service.KindString},
		}},
	}
}

func echoInvoker(answer string) service.Invoker {
	return service.InvokerFunc(func(context.Context, string, []service.Value) (service.Value, error) {
		return service.StringValue(answer), nil
	})
}

// newPeeredHomes builds two home federations, each with two networks,
// and peers B to A (one direction — enough for B to reach A's services).
func newPeeredHomes(t *testing.T) (a, b *core.Federation) {
	t.Helper()
	var err error
	a, err = core.NewHomeFederation("home-a")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(a.Close)
	b, err = core.NewHomeFederation("home-b")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(b.Close)
	for _, name := range []string{"net1", "net2"} {
		if _, err := a.AddNetwork(name); err != nil {
			t.Fatal(err)
		}
		if _, err := b.AddNetwork(name); err != nil {
			t.Fatal(err)
		}
	}
	if err := b.Peer(a.PeerURL()); err != nil {
		t.Fatal(err)
	}
	return a, b
}

// callUntil polls a federation call until it answers want or the
// deadline passes, returning how long it took.
func callUntil(t *testing.T, fed *core.Federation, id, want string, deadline time.Duration) time.Duration {
	t.Helper()
	ctx, cancel := context.WithTimeout(context.Background(), deadline)
	defer cancel()
	start := time.Now()
	var lastErr error
	var last string
	for {
		got, err := fed.Call(ctx, id, "Where")
		if err == nil && got.Str() == want {
			return time.Since(start)
		}
		lastErr, last = err, got.Str()
		select {
		case <-ctx.Done():
			t.Fatalf("call %s never answered %q (last %q, %v)", id, want, last, lastErr)
		case <-time.After(5 * time.Millisecond):
		}
	}
}

// TestMultiHomeLifecycle drives one service through its full federated
// life: registered in home A, resolved and called from home B, re-homed
// to another of A's gateways, and finally withdrawn — each transition
// visible in B through nothing but the peering subsystem.
func TestMultiHomeLifecycle(t *testing.T) {
	a, b := newPeeredHomes(t)
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()

	// Register in A → callable from B. The propagation budget is one
	// A-side watch round trip plus the scoped re-registration; push
	// delivery makes this milliseconds, and anything near the seconds
	// range means replication fell back to polling.
	if err := a.Network("net1").Gateway().Export(ctx, echoDesc("test:svc"), echoInvoker("at-net1")); err != nil {
		t.Fatal(err)
	}
	took := callUntil(t, b, "home-a/test:svc", "at-net1", 10*time.Second)
	if took > 2*time.Second {
		t.Errorf("register→callable took %v, want within one watch round trip", took)
	} else {
		t.Logf("registered service callable cross-home after %v", took)
	}

	// Resolve through B's gateway shows A's endpoint, scoped ID.
	r, err := b.Network("net1").Gateway().Resolve(ctx, "home-a/test:svc")
	if err != nil {
		t.Fatal(err)
	}
	if r.Desc.ID != "home-a/test:svc" || r.Desc.Context[service.CtxPeerOrigin] != "home-a" {
		t.Errorf("resolved import = %+v, want scoped ID with origin stamp", r.Desc)
	}

	// Re-home within A: withdrawn from net1, exported on net2. B keeps
	// calling; the answer flips to the new gateway.
	if err := a.Network("net1").Gateway().Unexport(ctx, "test:svc"); err != nil {
		t.Fatal(err)
	}
	if err := a.Network("net2").Gateway().Export(ctx, echoDesc("test:svc"), echoInvoker("at-net2")); err != nil {
		t.Fatal(err)
	}
	took = callUntil(t, b, "home-a/test:svc", "at-net2", 10*time.Second)
	t.Logf("re-homed service callable cross-home after %v", took)

	// Withdraw: the deletion replicates and B's resolution fails.
	if err := a.Network("net2").Gateway().Unexport(ctx, "test:svc"); err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(10 * time.Second)
	for {
		if _, err := b.Call(ctx, "home-a/test:svc", "Where"); err != nil {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("withdrawn service still callable from peer")
		}
		time.Sleep(5 * time.Millisecond)
	}
}

// TestMultiHomeExportPolicyDeny: a denied service must not replicate,
// while an allowed one from the same home does.
func TestMultiHomeExportPolicyDeny(t *testing.T) {
	a, b := newPeeredHomes(t)
	if err := a.SetExportPolicy(peer.Policy{Deny: []string{"test:private*"}}); err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	gw := a.Network("net1").Gateway()
	if err := gw.Export(ctx, echoDesc("test:private-cam"), echoInvoker("private")); err != nil {
		t.Fatal(err)
	}
	if err := gw.Export(ctx, echoDesc("test:public-door"), echoInvoker("public")); err != nil {
		t.Fatal(err)
	}
	callUntil(t, b, "home-a/test:public-door", "public", 10*time.Second)
	if _, err := b.Call(ctx, "home-a/test:private-cam", "Where"); err == nil {
		t.Error("export-denied service callable from peer")
	}
	// The denied service still works inside its own home.
	if got, err := a.Call(ctx, "test:private-cam", "Where"); err != nil || got.Str() != "private" {
		t.Errorf("denied service broken at home: %v, %v", got, err)
	}
}

// TestMultiHomePeerOutageDegradesToTTL: when home A goes dark, home B
// keeps serving A's imported registrations until their TTL lapses —
// exactly the degraded mode a broken in-home watch causes — and
// PeerStatus surfaces the outage the whole time.
func TestMultiHomePeerOutageDegradesToTTL(t *testing.T) {
	a, err := core.NewHomeFederation("home-a")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(a.Close)
	b, err := core.NewHomeFederation("home-b")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(b.Close)
	if _, err := a.AddNetwork("net1"); err != nil {
		t.Fatal(err)
	}
	if _, err := b.AddNetwork("net1"); err != nil {
		t.Fatal(err)
	}
	// A short import TTL keeps the degraded window testable.
	bp, err := b.Peering()
	if err != nil {
		t.Fatal(err)
	}
	bp.SetImportTTL(1500 * time.Millisecond)
	if err := b.Peer(a.PeerURL()); err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	if err := a.Network("net1").Gateway().Export(ctx, echoDesc("test:svc"), echoInvoker("alive")); err != nil {
		t.Fatal(err)
	}
	callUntil(t, b, "home-a/test:svc", "alive", 10*time.Second)

	// Home A's repository dies abruptly — a power cut, not a graceful
	// Close (which would withdraw registrations and replicate those
	// deletes to B before the link drops; that path is exercised by the
	// lifecycle test's unexport step).
	a.VSRServer().Close()

	// The link reports the outage.
	deadline := time.Now().Add(10 * time.Second)
	for {
		st, ok := b.PeerStatus()[a.PeerURL()]
		if ok && !st.Connected && st.LastError != "" {
			t.Logf("link degraded: %s", st.LastError)
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("PeerStatus never surfaced the outage: %+v", b.PeerStatus())
		}
		time.Sleep(10 * time.Millisecond)
	}

	// The import survives only until its TTL: resolution (not the call —
	// A's gateway is gone) keeps working, then expires.
	gw := b.Network("net1").Gateway()
	if _, err := gw.Resolve(ctx, "home-a/test:svc"); err != nil {
		t.Errorf("import gone immediately on outage, want TTL grace: %v", err)
	}
	deadline = time.Now().Add(15 * time.Second)
	for {
		if _, err := gw.Resolve(ctx, "home-a/test:svc"); err != nil {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("import never expired after peer outage")
		}
		time.Sleep(25 * time.Millisecond)
	}
}

// TestMultiHomeMutualVisibility: both directions at once, with every
// home's own services untouched by the other's imports.
func TestMultiHomeMutualVisibility(t *testing.T) {
	a, b := newPeeredHomes(t)
	if err := a.Peer(b.PeerURL()); err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	for i, fed := range []*core.Federation{a, b} {
		id := fmt.Sprintf("test:svc-%d", i+1)
		if err := fed.Network("net1").Gateway().Export(ctx, echoDesc(id), echoInvoker(fed.Home())); err != nil {
			t.Fatal(err)
		}
	}
	callUntil(t, a, "home-b/test:svc-2", "home-b", 10*time.Second)
	callUntil(t, b, "home-a/test:svc-1", "home-a", 10*time.Second)
	// Own services answer under their plain IDs.
	callUntil(t, a, "test:svc-1", "home-a", 5*time.Second)
	callUntil(t, b, "test:svc-2", "home-b", 5*time.Second)
}
