package integration

import (
	"context"
	"sync"
	"testing"
	"time"

	"homeconnect/internal/core/events"
	"homeconnect/internal/service"
	"homeconnect/internal/sim"
)

// TestEventDelivery covers experiment E7's functional side: an X10 motion
// sensor's frames surface as federation events, observable both by
// long-polling and by push subscription — the asynchronous-notification
// capability §4.2 found missing over plain HTTP.
func TestEventDelivery(t *testing.T) {
	h := newHome(t, sim.Config{X10: true})
	waitServices(t, h, 1)
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()

	gw := h.Fed.Network("x10-net").Gateway()
	client := &events.Client{BaseURL: gw.EventsURL()}

	// Push subscription.
	var mu sync.Mutex
	var pushed []service.Event
	recv, err := events.NewPushReceiver(func(ev service.Event) {
		mu.Lock()
		pushed = append(pushed, ev)
		mu.Unlock()
	})
	if err != nil {
		t.Fatal(err)
	}
	defer recv.Close()
	sid, err := client.Subscribe(ctx, recv.URL(), "motion")
	if err != nil {
		t.Fatal(err)
	}
	defer func() { _ = client.Unsubscribe(ctx, sid) }()

	// Long poll racing the push.
	type pollOut struct {
		evs []service.Event
		err error
	}
	pollDone := make(chan pollOut, 1)
	go func() {
		evs, _, err := client.Poll(ctx, 0, "motion", 10*time.Second)
		pollDone <- pollOut{evs, err}
	}()
	time.Sleep(50 * time.Millisecond) // let the poll park

	// Motion!
	if err := h.Motion.Trigger(); err != nil {
		t.Fatal(err)
	}

	var po pollOut
	select {
	case po = <-pollDone:
	case <-time.After(10 * time.Second):
		t.Fatal("long poll never returned")
	}
	if po.err != nil || len(po.evs) == 0 {
		t.Fatalf("poll = %v, %v", po.evs, po.err)
	}
	ev := po.evs[0]
	if ev.Topic != "motion" || ev.Source != "x10:"+sim.MotionAddr.String() {
		t.Errorf("event = %+v", ev)
	}
	if !ev.Payload["on"].Equal(service.BoolValue(true)) {
		t.Errorf("payload = %v", ev.Payload)
	}

	waitCond(t, "pushed motion event", func() bool {
		mu.Lock()
		defer mu.Unlock()
		return len(pushed) >= 1
	})
	mu.Lock()
	if pushed[0].Topic != "motion" {
		t.Errorf("pushed = %+v", pushed[0])
	}
	mu.Unlock()
}

// TestHaviTransportEventsBridged checks the HAVi event manager feeds the
// federation hub (used by the multimedia example).
func TestHaviTransportEventsBridged(t *testing.T) {
	h := newHome(t, sim.Config{HAVi: true})
	waitServices(t, h, 4)
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()

	gw := h.Fed.Network("havi-net").Gateway()
	var mu sync.Mutex
	var got []service.Event
	stop := gw.Hub().Subscribe("havi.transport", func(ev service.Event) {
		mu.Lock()
		got = append(got, ev)
		mu.Unlock()
	})
	defer stop()

	if _, err := h.Fed.Call(ctx, "havi:vcr-vcr1", "Play"); err != nil {
		t.Fatal(err)
	}
	waitCond(t, "transport event", func() bool {
		mu.Lock()
		defer mu.Unlock()
		return len(got) >= 1
	})
	mu.Lock()
	defer mu.Unlock()
	if got[0].Payload["state"].Str() != "playing" {
		t.Errorf("event = %+v", got[0])
	}
}
