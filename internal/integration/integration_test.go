// Package integration exercises the paper's figures end to end on the
// full simulated home. Each TestFigureN corresponds to a figure of the
// paper; see DESIGN.md §4 for the experiment index.
package integration

import (
	"context"
	"errors"
	"strings"
	"testing"
	"time"

	"homeconnect/internal/bridge/havipcm"
	"homeconnect/internal/havi"
	"homeconnect/internal/jini"
	"homeconnect/internal/mail"
	"homeconnect/internal/service"
	"homeconnect/internal/sim"
	"homeconnect/internal/upnp"
	"homeconnect/internal/x10"
)

// prototypeServices is the number of services the Figure 3 prototype
// publishes: jini laserdisc, x10 lamp, 4 HAVi FCMs, mail outbox.
const prototypeServices = 7

func newHome(t *testing.T, cfg sim.Config) *sim.Home {
	t.Helper()
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	h, err := sim.NewHome(ctx, cfg)
	if err != nil {
		t.Fatalf("NewHome: %v", err)
	}
	t.Cleanup(h.Close)
	return h
}

func waitServices(t *testing.T, h *sim.Home, n int) {
	t.Helper()
	ctx, cancel := context.WithTimeout(context.Background(), 15*time.Second)
	defer cancel()
	if err := h.WaitForServices(ctx, n); err != nil {
		t.Fatalf("WaitForServices(%d): %v", n, err)
	}
}

// TestFigure3Prototype brings up the four-middleware prototype and
// verifies every expected service appears in the repository.
func TestFigure3Prototype(t *testing.T) {
	h := newHome(t, sim.Prototype())
	waitServices(t, h, prototypeServices)
	ctx := context.Background()
	ids, err := h.ServiceIDs(ctx)
	if err != nil {
		t.Fatal(err)
	}
	want := []string{
		"jini:laserdisc-1",
		"x10:lamp-1",
		"havi:vcr-vcr1",
		"havi:dvcam-cam1",
		"havi:tv-screen",
		"havi:tv-tuner",
		"mail:outbox",
	}
	for _, id := range want {
		found := false
		for _, got := range ids {
			if got == id {
				found = true
				break
			}
		}
		if !found {
			t.Errorf("service %s missing from repository (have %v)", id, ids)
		}
	}
}

// TestFigure1AnyToAnyReachability checks that a client on each network
// can call a service on every other network through its own gateway —
// the transparent any-to-any access of Figure 1.
func TestFigure1AnyToAnyReachability(t *testing.T) {
	h := newHome(t, sim.Prototype())
	waitServices(t, h, prototypeServices)
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()

	targets := []struct {
		id, op string
		args   []service.Value
	}{
		{"jini:laserdisc-1", "State", nil},
		{"x10:lamp-1", "Level", nil},
		{"havi:vcr-vcr1", "State", nil},
		{"havi:tv-tuner", "Channel", nil},
	}
	for _, netName := range h.Fed.Networks() {
		gw := h.Fed.Network(netName).Gateway()
		for _, target := range targets {
			if _, err := gw.Call(ctx, target.id, target.op, target.args); err != nil {
				t.Errorf("network %s → %s.%s: %v", netName, target.id, target.op, err)
			}
		}
	}
}

// TestFigure4JiniToX10Conversion reproduces Figure 4's transaction: a
// Jini client switches an X10 light. The call traverses Jini RMI-sim →
// Jini PCM server proxy → SOAP between gateways → X10 PCM client proxy →
// CM11A serial protocol → powerline frames → the lamp module.
func TestFigure4JiniToX10Conversion(t *testing.T) {
	h := newHome(t, sim.Config{Jini: true, X10: true})
	waitServices(t, h, 2)
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()

	// A plain Jini client: discover the lookup service and find the lamp
	// (it appears as a native Jini service planted by the Jini PCM).
	reg, err := jini.Discover(ctx, h.Lookup.Addr())
	if err != nil {
		t.Fatal(err)
	}
	var lampProxy jini.ProxyDescriptor
	deadline := time.Now().Add(10 * time.Second)
	for {
		items, err := reg.Lookup(ctx, jini.ServiceTemplate{IfaceName: "X10Lamp"})
		if err == nil && len(items) == 1 {
			lampProxy = items[0].Proxy
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("X10 lamp never appeared in the Jini lookup service: %v items", items)
		}
		time.Sleep(25 * time.Millisecond)
	}

	h.Powerline.ClearTrace()
	if _, err := jini.Call(ctx, lampProxy, "On", nil); err != nil {
		t.Fatalf("Jini call to X10 lamp: %v", err)
	}
	if !h.Lamp.On() {
		t.Error("lamp module is not on after Jini call")
	}
	// The conversion must have produced real powerline traffic: an
	// address frame then an On function frame.
	trace := h.Powerline.Trace()
	if len(trace) < 2 {
		t.Fatalf("powerline trace too short: %v", trace)
	}
	last2 := trace[len(trace)-2:]
	if last2[0].IsFunction || last2[0].Unit != sim.LampAddr.Unit {
		t.Errorf("expected address frame for %v, got %v", sim.LampAddr, last2[0])
	}
	if !last2[1].IsFunction || last2[1].Function != x10.On {
		t.Errorf("expected On function frame, got %v", last2[1])
	}

	// And back off again.
	if _, err := jini.Call(ctx, lampProxy, "Off", nil); err != nil {
		t.Fatal(err)
	}
	if h.Lamp.On() {
		t.Error("lamp module is not off")
	}
}

// TestFigure5UniversalRemote reproduces the Universal Remote Controller:
// X10 remote keypresses control the Jini Laserdisc and the HAVi DV
// camera.
func TestFigure5UniversalRemote(t *testing.T) {
	h := newHome(t, sim.Prototype())
	waitServices(t, h, prototypeServices)

	// Key 2 ON → Laserdisc plays.
	if err := h.Remote.Press(sim.RemoteLaserdiscUnit, x10.On); err != nil {
		t.Fatal(err)
	}
	waitCond(t, "laserdisc playing", func() bool { return h.Laserdisc.State() == "playing" })

	// Key 3 ON → camera captures.
	if err := h.Remote.Press(sim.RemoteCameraUnit, x10.On); err != nil {
		t.Fatal(err)
	}
	waitCond(t, "camera capturing", func() bool { return h.Camera.State() == havi.StateCapturing })

	// Key 2 OFF → Laserdisc stops.
	if err := h.Remote.Press(sim.RemoteLaserdiscUnit, x10.Off); err != nil {
		t.Fatal(err)
	}
	waitCond(t, "laserdisc stopped", func() bool { return h.Laserdisc.State() == "stopped" })

	// Key 3 OFF → camera stops.
	if err := h.Remote.Press(sim.RemoteCameraUnit, x10.Off); err != nil {
		t.Fatal(err)
	}
	waitCond(t, "camera stopped", func() bool { return h.Camera.State() == havi.StateStopped })
}

// TestFigure2ProxyModules exercises both proxy directions of one PCM
// explicitly: the client proxy (local Jini service called from the
// federation) and the server proxy (remote service called from a local
// Jini client).
func TestFigure2ProxyModules(t *testing.T) {
	h := newHome(t, sim.Config{Jini: true, X10: true})
	waitServices(t, h, 2)
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()

	// Client Proxy: the federation calls the native Jini Laserdisc.
	if _, err := h.Fed.Call(ctx, "jini:laserdisc-1", "SetChapter", service.IntValue(4)); err != nil {
		t.Fatalf("CP direction: %v", err)
	}
	if h.Laserdisc.Chapter() != 4 {
		t.Errorf("chapter = %d", h.Laserdisc.Chapter())
	}

	// Server Proxy: a Jini client calls the X10 lamp (asserted in detail
	// by TestFigure4; here we check the proxy carries results back).
	reg, err := jini.Discover(ctx, h.Lookup.Addr())
	if err != nil {
		t.Fatal(err)
	}
	waitCond(t, "lamp proxy in lookup", func() bool {
		items, err := reg.Lookup(ctx, jini.ServiceTemplate{IfaceName: "X10Lamp"})
		return err == nil && len(items) == 1
	})
	items, _ := reg.Lookup(ctx, jini.ServiceTemplate{IfaceName: "X10Lamp"})
	if _, err := jini.Call(ctx, items[0].Proxy, "SetLevel", []any{int64(60)}); err != nil {
		t.Fatalf("SP SetLevel: %v", err)
	}
	got, err := jini.Call(ctx, items[0].Proxy, "Level", nil)
	if err != nil || got.(int64) != 60 {
		t.Errorf("SP Level = %v, %v", got, err)
	}
	// Error conversion across the whole chain.
	if _, err := jini.Call(ctx, items[0].Proxy, "SetLevel", []any{int64(1), int64(2)}); !errors.Is(err, jini.ErrBadArgs) {
		t.Errorf("SP arity error: %v", err)
	}
}

// TestHaviClientReachesRemote verifies the HAVi server proxy: a plain
// HAVi device finds the X10 lamp as a virtual element in the registry and
// controls it with HAVi messages.
func TestHaviClientReachesRemote(t *testing.T) {
	h := newHome(t, sim.Config{HAVi: true, X10: true})
	waitServices(t, h, 5)
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()

	client := havi.NewDevice(h.Bus, 0xC11E27, "client")
	defer client.Close()

	var lampSEID havi.SEID
	waitCond(t, "virtual lamp element", func() bool {
		infos, err := client.Query(ctx, map[string]string{havipcm.AttrOrigin: "x10:lamp-1"})
		if err != nil || len(infos) == 0 {
			return false
		}
		lampSEID = infos[0].SEID
		return true
	})

	if _, err := havipcm.InvokeVirtual(ctx, client, lampSEID, "On"); err != nil {
		t.Fatalf("InvokeVirtual On: %v", err)
	}
	if !h.Lamp.On() {
		t.Error("lamp not on after HAVi call")
	}
	vals, err := havipcm.InvokeVirtual(ctx, client, lampSEID, "Level")
	if err != nil || len(vals) != 1 || vals[0].(int64) != 100 {
		t.Errorf("InvokeVirtual Level = %v, %v", vals, err)
	}
}

// TestMailCommandRoundTrip verifies the mail server proxy: an emailed
// "invoke" command executes against the federation and the result is
// mailed back (§2's Internet-service integration).
func TestMailCommandRoundTrip(t *testing.T) {
	h := newHome(t, sim.Prototype())
	waitServices(t, h, prototypeServices)

	err := mail.Send(h.SMTP.Addr(), mail.Message{
		From:    "user@house.example",
		To:      sim.CommandMailbox,
		Subject: "invoke havi:tv-tuner SetChannel",
		Body:    "12",
	})
	if err != nil {
		t.Fatal(err)
	}
	waitCond(t, "tuner set by mail", func() bool { return h.Tuner.Channel() == 12 })

	// The confirmation lands in the user's mailbox.
	waitCond(t, "confirmation mail", func() bool {
		msgs := h.MailStore.Messages("user@house.example")
		return len(msgs) == 1 && strings.HasPrefix(msgs[0].Subject, "result:")
	})

	// A bad command earns an error reply, not silence.
	err = mail.Send(h.SMTP.Addr(), mail.Message{
		From:    "user@house.example",
		To:      sim.CommandMailbox,
		Subject: "invoke nope:ghost On",
	})
	if err != nil {
		t.Fatal(err)
	}
	waitCond(t, "error mail", func() bool {
		for _, m := range h.MailStore.Messages("user@house.example") {
			if strings.HasPrefix(m.Subject, "error:") {
				return true
			}
		}
		return false
	})
}

// TestUPnPPCM verifies experiment E10: a UPnP device joins the federation
// through its PCM and is controlled from another middleware's network,
// and a remote service is exposed as a virtual UPnP device.
func TestUPnPPCM(t *testing.T) {
	h := newHome(t, sim.Config{UPnP: true, X10: true})
	waitServices(t, h, 2)
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()

	// Federation → UPnP light.
	if _, err := h.Fed.Call(ctx, "upnp:porch-SwitchPower", "SetTarget", service.BoolValue(true)); err != nil {
		t.Fatalf("SetTarget via federation: %v", err)
	}
	if !h.LightState.On() {
		t.Error("UPnP light not on")
	}

	// UPnP control point → virtual device for the X10 lamp: a plain UPnP
	// stack discovers it over SSDP, reads its SCPD, and calls it.
	waitCond(t, "virtual UPnP device", func() bool { return len(h.UPnPPCM.VirtualSSDPAddrs()) >= 1 })
	results, err := upnp.Search(ctx, "ssdp:all", h.UPnPPCM.VirtualSSDPAddrs())
	if err != nil || len(results) == 0 {
		t.Fatalf("SSDP search of virtual devices: %v, %v", results, err)
	}
	cp := &upnp.ControlPoint{}
	var lampSvc upnp.RemoteService
	found := false
	for _, res := range results {
		desc, services, err := cp.Describe(ctx, res.Location)
		if err != nil {
			continue
		}
		if desc.FriendlyName == "x10:lamp-1" && len(services) == 1 {
			lampSvc = services[0]
			found = true
		}
	}
	if !found {
		t.Fatal("virtual device for x10:lamp-1 not found via UPnP")
	}
	if _, err := cp.Invoke(ctx, lampSvc, "On", nil); err != nil {
		t.Fatalf("UPnP invoke of virtual lamp: %v", err)
	}
	if !h.Lamp.On() {
		t.Error("lamp not on after UPnP control-point call")
	}
}

func waitCond(t *testing.T, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(15 * time.Second)
	for !cond() {
		if time.Now().After(deadline) {
			t.Fatalf("timed out waiting for %s", what)
		}
		time.Sleep(25 * time.Millisecond)
	}
}
