// Audit plane end to end: a two-home authenticated neighborhood where
// home A runs the audit log. An ACL-denied cross-home call must produce
// a typed fault naming the matched rule, land in A's audit log as a
// policy.deny record carrying the caller and the rule, and be readable
// over the authenticated /audit face — whose ?verify=1 walk recomputes
// the whole hash chain. This is the PR-6 acceptance scenario.
package integration

import (
	"context"
	"encoding/json"
	"errors"
	"io"
	"net/http"
	"strings"
	"testing"
	"time"

	"homeconnect/internal/core/audit"
	"homeconnect/internal/core/identity"
	"homeconnect/internal/core/ops"
	"homeconnect/internal/service"
	"homeconnect/internal/transport"
)

// opsBase strips the /uddi suffix off a repository URL, the same
// derivation homectl uses to find the /health and /audit faces.
func opsBase(vsrURL string) string {
	return strings.TrimSuffix(strings.TrimRight(vsrURL, "/"), "/uddi")
}

// opsGetJSON fetches one face with the given client and decodes it.
func opsGetJSON(t *testing.T, client *http.Client, url string, out any) {
	t.Helper()
	resp, err := client.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET %s: %s: %s", url, resp.Status, body)
	}
	if err := json.Unmarshal(body, out); err != nil {
		t.Fatalf("GET %s: decode: %v\n%s", url, err, body)
	}
}

func TestAuditDenyRoundTrip(t *testing.T) {
	a := newSecureFed(t, "home-a")
	b := newSecureFed(t, "home-b")
	a.trust(t, b)
	b.trust(t, a)
	if err := a.fed.EnableAudit(audit.Options{}); err != nil {
		t.Fatal(err)
	}
	a.fed.SetServiceACL(identity.ACL{
		Deny: []identity.Rule{{Caller: "home-b", Service: "test:vcr-*"}},
	})
	// Peer both directions so A's own import link records peer.connect
	// into A's log.
	if err := b.fed.Peer(a.fed.PeerURL()); err != nil {
		t.Fatal(err)
	}
	if err := a.fed.Peer(b.fed.PeerURL()); err != nil {
		t.Fatal(err)
	}

	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	gw := a.fed.Network("net1").Gateway()
	for id, answer := range map[string]string{
		"test:public-door": "public",
		"test:vcr-1":       "vcr",
	} {
		if err := gw.Export(ctx, echoDesc(id), echoInvoker(answer)); err != nil {
			t.Fatal(err)
		}
	}
	callUntil(t, b.fed, "home-a/test:public-door", "public", 10*time.Second)

	// The ACL-denied out-of-band call faults typed, and the fault names
	// the matched rule and the denied caller (satellite 1).
	remote, err := gw.Resolve(ctx, "test:vcr-1")
	if err != nil {
		t.Fatal(err)
	}
	_, err = b.fed.Network("net1").Gateway().CallRemote(ctx, remote, "Where", nil)
	if !errors.Is(err, service.ErrForbidden) {
		t.Fatalf("ACL-denied call: %v, want ErrForbidden", err)
	}
	for _, want := range []string{"home-b", "home-b=test:vcr-*"} {
		if !strings.Contains(err.Error(), want) {
			t.Errorf("denial fault %q does not name %q", err, want)
		}
	}

	// The denial is in A's audit log with caller and matched pattern.
	var deny *audit.Record
	deadline := time.Now().Add(10 * time.Second)
	for deny == nil {
		for _, rec := range a.fed.Audit().Tail(100, audit.PolicyDeny) {
			rec := rec
			if rec.Caller == "home-b" && rec.Service == "test:vcr-1" {
				deny = &rec
				break
			}
		}
		if deny == nil {
			if time.Now().After(deadline) {
				t.Fatalf("no policy.deny record for home-b/test:vcr-1 in %+v",
					a.fed.Audit().Tail(100, ""))
			}
			time.Sleep(10 * time.Millisecond)
		}
	}
	if deny.Pattern != "home-b=test:vcr-*" {
		t.Errorf("deny record pattern %q, want the matched ACL rule", deny.Pattern)
	}

	// A's import link from B recorded its connect transition.
	for {
		if len(a.fed.Audit().Tail(100, audit.PeerConnect)) > 0 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("no peer.connect record on home-a's side")
		}
		time.Sleep(10 * time.Millisecond)
	}

	// HTTP round trip: the repository's /audit face returns the same
	// records, and ?verify=1 recomputes the chain and roots.
	client := transport.NewAuthClient(a.fed.Auth())
	var snap ops.AuditSnapshot
	opsGetJSON(t, client, opsBase(a.fed.VSRURL())+"/audit?n=200&verify=1", &snap)
	if !snap.Enabled {
		t.Fatal("/audit reports auditing off")
	}
	if snap.Verify == nil || !snap.Verify.OK {
		t.Fatalf("/audit?verify=1 = %+v, want OK", snap.Verify)
	}
	foundDeny, foundConnect := false, false
	for _, rec := range snap.Tail {
		if rec.Type == audit.PolicyDeny && rec.Caller == "home-b" &&
			rec.Service == "test:vcr-1" && rec.Pattern == "home-b=test:vcr-*" {
			foundDeny = true
		}
		if rec.Type == audit.PeerConnect {
			foundConnect = true
		}
	}
	if !foundDeny {
		t.Errorf("/audit tail lacks the policy.deny record: %+v", snap.Tail)
	}
	if !foundConnect {
		t.Errorf("/audit tail lacks a peer.connect record")
	}

	// /health reports the home, its auth state and the audit stats.
	var health struct {
		Home        string      `json:"home"`
		AuthEnabled bool        `json:"auth_enabled"`
		Audit       audit.Stats `json:"audit"`
	}
	opsGetJSON(t, client, opsBase(a.fed.VSRURL())+"/health", &health)
	if health.Home != "home-a" || !health.AuthEnabled {
		t.Errorf("/health = %+v, want home-a with auth enabled", health)
	}
	if health.Audit.Seq == 0 {
		t.Error("/health audit stats report an empty log")
	}

	// The gateway serves the same faces; its health carries call stats
	// including the denied call.
	var gwHealth struct {
		Network string `json:"network"`
		Health  struct {
			Calls struct {
				Denied uint64 `json:"denied"`
			} `json:"calls"`
		} `json:"health"`
	}
	opsGetJSON(t, client, gw.BaseURL()+"/health", &gwHealth)
	if gwHealth.Network != "net1" {
		t.Errorf("gateway /health network %q, want net1", gwHealth.Network)
	}
	if gwHealth.Health.Calls.Denied == 0 {
		t.Error("gateway /health counts no denied calls after the ACL denial")
	}

	// The faces are private to the home's own identity: an unsigned GET
	// is refused, and so is a signed GET from the *other* home.
	for name, c := range map[string]*http.Client{
		"unsigned":     http.DefaultClient,
		"other-signed": transport.NewAuthClient(b.fed.Auth()),
	} {
		resp, err := c.Get(opsBase(a.fed.VSRURL()) + "/audit")
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode == http.StatusOK {
			t.Errorf("%s GET of the private /audit face succeeded", name)
		}
	}
}
