package mail

import (
	"fmt"
	"net"
	"net/smtp"
	"net/textproto"
	"strconv"
	"strings"
)

// Send submits a message through an SMTP server (ours or any other) using
// the standard library client.
func Send(smtpAddr string, m Message) error {
	if err := smtp.SendMail(smtpAddr, nil, m.From, []string{m.To}, m.Render()); err != nil {
		return fmt.Errorf("mail: send: %w", err)
	}
	return nil
}

// Fetch retrieves (and optionally deletes) every message in addr's
// mailbox via the POP3 server.
func Fetch(pop3Addr, addr string, del bool) ([]Message, error) {
	nc, err := net.Dial("tcp", pop3Addr)
	if err != nil {
		return nil, fmt.Errorf("mail: dial pop3: %w", err)
	}
	tp := textproto.NewConn(nc)
	defer tp.Close()

	expectOK := func() (string, error) {
		line, err := tp.ReadLine()
		if err != nil {
			return "", err
		}
		if !strings.HasPrefix(line, "+OK") {
			return "", fmt.Errorf("mail: pop3: %s", line)
		}
		return strings.TrimSpace(strings.TrimPrefix(line, "+OK")), nil
	}
	cmd := func(format string, args ...any) (string, error) {
		if err := tp.PrintfLine(format, args...); err != nil {
			return "", err
		}
		return expectOK()
	}

	if _, err := expectOK(); err != nil { // greeting
		return nil, err
	}
	if _, err := cmd("USER %s", addr); err != nil {
		return nil, err
	}
	if _, err := cmd("PASS x"); err != nil {
		return nil, err
	}
	stat, err := cmd("STAT")
	if err != nil {
		return nil, err
	}
	fields := strings.Fields(stat)
	if len(fields) < 1 {
		return nil, fmt.Errorf("mail: bad STAT reply %q", stat)
	}
	count, err := strconv.Atoi(fields[0])
	if err != nil {
		return nil, fmt.Errorf("mail: bad STAT count %q", stat)
	}

	var out []Message
	for i := 1; i <= count; i++ {
		if _, err := cmd("RETR %d", i); err != nil {
			return nil, err
		}
		raw, err := readDotLines(tp)
		if err != nil {
			return nil, err
		}
		m, err := ParseMessage(raw)
		if err != nil {
			return nil, err
		}
		out = append(out, m)
		if del {
			if _, err := cmd("DELE %d", i); err != nil {
				return nil, err
			}
		}
	}
	if _, err := cmd("QUIT"); err != nil {
		return nil, err
	}
	return out, nil
}

// readDotLines reads a dot-terminated multi-line response, undoing
// dot-stuffing.
func readDotLines(tp *textproto.Conn) ([]byte, error) {
	var b strings.Builder
	for {
		line, err := tp.ReadLine()
		if err != nil {
			return nil, err
		}
		if line == "." {
			return []byte(b.String()), nil
		}
		line = strings.TrimPrefix(line, ".")
		b.WriteString(line)
		b.WriteString("\r\n")
	}
}
