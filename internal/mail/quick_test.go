package mail

import (
	"strings"
	"testing"
	"testing/quick"
)

// TestQuickMessageRoundTrip: any message with header-safe fields and a
// printable body survives Render → ParseMessage.
func TestQuickMessageRoundTrip(t *testing.T) {
	sanitizeHeader := func(s string) string {
		return strings.Map(func(r rune) rune {
			if r < 32 || r > 126 {
				return 'x'
			}
			return r
		}, s)
	}
	fn := func(from, to, subject string, bodyLines []string) bool {
		m := Message{
			From:    sanitizeHeader(from),
			To:      sanitizeHeader(to),
			Subject: sanitizeHeader(subject),
		}
		var body []string
		for _, l := range bodyLines {
			body = append(body, strings.Map(func(r rune) rune {
				if r == '\r' || r == '\n' {
					return ' '
				}
				return r
			}, l))
		}
		m.Body = strings.TrimRight(strings.Join(body, "\n"), "\n")
		out, err := ParseMessage(m.Render())
		if err != nil {
			return false
		}
		return strings.TrimSpace(out.From) == strings.TrimSpace(m.From) &&
			strings.TrimSpace(out.Subject) == strings.TrimSpace(m.Subject) &&
			out.Body == m.Body
	}
	if err := quick.Check(fn, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

// TestQuickNormalize: normalization is idempotent for any input, and
// case-insensitive for ASCII addresses (the only kind RFC 5321 local
// parts guarantee; exotic Unicode has no stable case round trip).
func TestQuickNormalize(t *testing.T) {
	fn := func(addr string) bool {
		n1 := normalize(addr)
		if normalize(n1) != n1 {
			return false
		}
		ascii := strings.Map(func(r rune) rune {
			if r > 126 {
				return 'a'
			}
			return r
		}, addr)
		return normalize(strings.ToUpper(ascii)) == normalize(strings.ToLower(ascii))
	}
	if err := quick.Check(fn, nil); err != nil {
		t.Error(err)
	}
}
