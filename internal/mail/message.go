// Package mail simulates the Internet mail service integrated by the
// paper's prototype (§4.1 lists an "Internet Mail service" PCM among the
// four middleware). It provides a small SMTP server with per-address
// mailboxes, a POP3-style retrieval server, and client helpers built on
// net/smtp.
//
// The mail PCM uses the store-and-forward conventions real systems used:
// commands arrive as messages whose subject line is "invoke <service>
// <operation>" with one argument per body line, and results are mailed
// back — the same asymmetric integration the paper's prototype performed.
package mail

import (
	"bufio"
	"fmt"
	"net/textproto"
	"sort"
	"strings"
	"sync"
	"time"
)

// Message is one mail message.
type Message struct {
	From    string
	To      string
	Subject string
	Date    time.Time
	Body    string
}

// Render produces the RFC 822-style wire form.
func (m Message) Render() []byte {
	var b strings.Builder
	fmt.Fprintf(&b, "From: %s\r\n", m.From)
	fmt.Fprintf(&b, "To: %s\r\n", m.To)
	fmt.Fprintf(&b, "Subject: %s\r\n", m.Subject)
	date := m.Date
	if date.IsZero() {
		date = time.Now()
	}
	fmt.Fprintf(&b, "Date: %s\r\n", date.UTC().Format(time.RFC1123Z))
	b.WriteString("\r\n")
	b.WriteString(m.Body)
	return []byte(b.String())
}

// ParseMessage inverts Render, tolerating missing headers.
func ParseMessage(raw []byte) (Message, error) {
	r := textproto.NewReader(bufio.NewReader(strings.NewReader(string(raw))))
	hdr, err := r.ReadMIMEHeader()
	if err != nil && len(hdr) == 0 {
		return Message{}, fmt.Errorf("mail: parse headers: %w", err)
	}
	var m Message
	m.From = hdr.Get("From")
	m.To = hdr.Get("To")
	m.Subject = hdr.Get("Subject")
	if d := hdr.Get("Date"); d != "" {
		if t, err := time.Parse(time.RFC1123Z, d); err == nil {
			m.Date = t
		}
	}
	rest := new(strings.Builder)
	for {
		line, err := r.ReadLine()
		if err != nil {
			break
		}
		rest.WriteString(line)
		rest.WriteString("\n")
	}
	m.Body = strings.TrimRight(rest.String(), "\n")
	return m, nil
}

// Store holds mailboxes keyed by address.
type Store struct {
	mu    sync.Mutex
	boxes map[string][]Message
}

// NewStore returns an empty store.
func NewStore() *Store {
	return &Store{boxes: make(map[string][]Message)}
}

// Deliver appends a message to the recipient's mailbox.
func (s *Store) Deliver(to string, m Message) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.boxes[normalize(to)] = append(s.boxes[normalize(to)], m)
}

// Messages returns a copy of a mailbox.
func (s *Store) Messages(addr string) []Message {
	s.mu.Lock()
	defer s.mu.Unlock()
	return append([]Message(nil), s.boxes[normalize(addr)]...)
}

// Delete removes message i (0-based) from a mailbox.
func (s *Store) Delete(addr string, i int) bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	key := normalize(addr)
	box := s.boxes[key]
	if i < 0 || i >= len(box) {
		return false
	}
	s.boxes[key] = append(box[:i:i], box[i+1:]...)
	return true
}

// Drain removes and returns every message in a mailbox.
func (s *Store) Drain(addr string) []Message {
	s.mu.Lock()
	defer s.mu.Unlock()
	key := normalize(addr)
	out := s.boxes[key]
	delete(s.boxes, key)
	return out
}

// Addresses lists mailboxes that currently hold mail, sorted.
func (s *Store) Addresses() []string {
	s.mu.Lock()
	defer s.mu.Unlock()
	var out []string
	for addr, box := range s.boxes {
		if len(box) > 0 {
			out = append(out, addr)
		}
	}
	sort.Strings(out)
	return out
}

// normalize lower-cases and strips angle brackets from an address.
func normalize(addr string) string {
	addr = strings.TrimSpace(addr)
	addr = strings.TrimPrefix(addr, "<")
	addr = strings.TrimSuffix(addr, ">")
	return strings.ToLower(addr)
}
