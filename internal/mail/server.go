package mail

import (
	"bufio"
	"net"
	"net/textproto"
	"strconv"
	"strings"
	"sync"
)

// lineServer is shared accept/track/close plumbing for the two
// line-oriented protocol servers.
type lineServer struct {
	mu     sync.Mutex
	ln     net.Listener
	conns  map[net.Conn]struct{}
	wg     sync.WaitGroup
	closed bool
}

func (s *lineServer) start(addr string, serve func(net.Conn)) error {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return err
	}
	s.mu.Lock()
	s.ln = ln
	s.conns = make(map[net.Conn]struct{})
	s.mu.Unlock()
	s.wg.Add(1)
	go func() {
		defer s.wg.Done()
		for {
			nc, err := ln.Accept()
			if err != nil {
				return
			}
			s.mu.Lock()
			if s.closed {
				s.mu.Unlock()
				_ = nc.Close()
				return
			}
			s.conns[nc] = struct{}{}
			s.mu.Unlock()
			s.wg.Add(1)
			go func() {
				defer s.wg.Done()
				defer func() {
					s.mu.Lock()
					delete(s.conns, nc)
					s.mu.Unlock()
					_ = nc.Close()
				}()
				serve(nc)
			}()
		}
	}()
	return nil
}

func (s *lineServer) addrString() string {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.ln == nil {
		return ""
	}
	return s.ln.Addr().String()
}

func (s *lineServer) close() {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		s.wg.Wait()
		return
	}
	s.closed = true
	ln := s.ln
	for nc := range s.conns {
		_ = nc.Close()
	}
	s.mu.Unlock()
	if ln != nil {
		_ = ln.Close()
	}
	s.wg.Wait()
}

// SMTPServer accepts mail and delivers it into a Store.
type SMTPServer struct {
	store *Store
	srv   lineServer
}

// NewSMTPServer returns an unstarted server delivering into store.
func NewSMTPServer(store *Store) *SMTPServer {
	return &SMTPServer{store: store}
}

// Start listens on addr ("127.0.0.1:0" for ephemeral).
func (s *SMTPServer) Start(addr string) error { return s.srv.start(addr, s.serve) }

// Addr returns the listening address.
func (s *SMTPServer) Addr() string { return s.srv.addrString() }

// Close stops the server.
func (s *SMTPServer) Close() { s.srv.close() }

// serve speaks just enough RFC 5321 for net/smtp.SendMail.
func (s *SMTPServer) serve(nc net.Conn) {
	tp := textproto.NewConn(nc)
	defer tp.Close()
	say := func(code int, msg string) bool {
		return tp.PrintfLine("%d %s", code, msg) == nil
	}
	if !say(220, "homeconnect simulated SMTP service ready") {
		return
	}
	var from string
	var rcpts []string
	for {
		line, err := tp.ReadLine()
		if err != nil {
			return
		}
		verb := strings.ToUpper(line)
		switch {
		case strings.HasPrefix(verb, "HELO"), strings.HasPrefix(verb, "EHLO"):
			if !say(250, "homeconnect") {
				return
			}
		case strings.HasPrefix(verb, "MAIL FROM:"):
			from = normalize(line[len("MAIL FROM:"):])
			rcpts = nil
			if !say(250, "sender ok") {
				return
			}
		case strings.HasPrefix(verb, "RCPT TO:"):
			if from == "" {
				if !say(503, "need MAIL before RCPT") {
					return
				}
				continue
			}
			rcpts = append(rcpts, normalize(line[len("RCPT TO:"):]))
			if !say(250, "recipient ok") {
				return
			}
		case verb == "DATA":
			if len(rcpts) == 0 {
				if !say(503, "need RCPT before DATA") {
					return
				}
				continue
			}
			if !say(354, "end with <CRLF>.<CRLF>") {
				return
			}
			raw, err := readDotBody(tp)
			if err != nil {
				return
			}
			msg, err := ParseMessage(raw)
			if err != nil {
				if !say(554, "unparseable message") {
					return
				}
				continue
			}
			if msg.From == "" {
				msg.From = from
			}
			for _, rcpt := range rcpts {
				if msg.To == "" {
					msg.To = rcpt
				}
				s.store.Deliver(rcpt, msg)
			}
			from, rcpts = "", nil
			if !say(250, "delivered") {
				return
			}
		case verb == "RSET":
			from, rcpts = "", nil
			if !say(250, "ok") {
				return
			}
		case verb == "NOOP":
			if !say(250, "ok") {
				return
			}
		case verb == "QUIT":
			say(221, "bye")
			return
		default:
			if !say(502, "command not implemented") {
				return
			}
		}
	}
}

// readDotBody reads a DATA body up to the lone-dot terminator, undoing
// dot-stuffing.
func readDotBody(tp *textproto.Conn) ([]byte, error) {
	var b strings.Builder
	for {
		line, err := tp.ReadLine()
		if err != nil {
			return nil, err
		}
		if line == "." {
			return []byte(strings.TrimSuffix(b.String(), "\r\n")), nil
		}
		line = strings.TrimPrefix(line, ".")
		b.WriteString(line)
		b.WriteString("\r\n")
	}
}

// POP3Server exposes a Store for retrieval with a POP3-style protocol:
// USER/PASS (any password accepted), STAT, LIST, RETR, DELE, QUIT.
type POP3Server struct {
	store *Store
	srv   lineServer
}

// NewPOP3Server returns an unstarted retrieval server over store.
func NewPOP3Server(store *Store) *POP3Server {
	return &POP3Server{store: store}
}

// Start listens on addr.
func (s *POP3Server) Start(addr string) error { return s.srv.start(addr, s.serve) }

// Addr returns the listening address.
func (s *POP3Server) Addr() string { return s.srv.addrString() }

// Close stops the server.
func (s *POP3Server) Close() { s.srv.close() }

func (s *POP3Server) serve(nc net.Conn) {
	tp := textproto.NewConn(nc)
	defer tp.Close()
	ok := func(format string, args ...any) bool {
		return tp.PrintfLine("+OK "+format, args...) == nil
	}
	bad := func(format string, args ...any) bool {
		return tp.PrintfLine("-ERR "+format, args...) == nil
	}
	if !ok("homeconnect POP3 ready") {
		return
	}
	var user string
	authed := false
	// deleted marks messages removed in this session (applied at QUIT,
	// per POP3 update semantics).
	deleted := map[int]bool{}
	for {
		line, err := tp.ReadLine()
		if err != nil {
			return
		}
		fields := strings.Fields(line)
		if len(fields) == 0 {
			continue
		}
		switch strings.ToUpper(fields[0]) {
		case "USER":
			if len(fields) < 2 {
				if !bad("USER needs an address") {
					return
				}
				continue
			}
			user = fields[1]
			if !ok("user accepted") {
				return
			}
		case "PASS":
			if user == "" {
				if !bad("USER first") {
					return
				}
				continue
			}
			authed = true
			if !ok("mailbox open") {
				return
			}
		case "STAT":
			if !authed {
				if !bad("not authenticated") {
					return
				}
				continue
			}
			msgs := s.store.Messages(user)
			size := 0
			for _, m := range msgs {
				size += len(m.Render())
			}
			if !ok("%d %d", len(msgs), size) {
				return
			}
		case "LIST":
			if !authed {
				if !bad("not authenticated") {
					return
				}
				continue
			}
			msgs := s.store.Messages(user)
			if !ok("%d messages", len(msgs)) {
				return
			}
			for i, m := range msgs {
				if tp.PrintfLine("%d %d", i+1, len(m.Render())) != nil {
					return
				}
			}
			if tp.PrintfLine(".") != nil {
				return
			}
		case "RETR":
			if !authed {
				if !bad("not authenticated") {
					return
				}
				continue
			}
			n, err := strconv.Atoi(strings.Join(fields[1:], ""))
			msgs := s.store.Messages(user)
			if err != nil || n < 1 || n > len(msgs) {
				if !bad("no such message") {
					return
				}
				continue
			}
			raw := msgs[n-1].Render()
			if !ok("%d octets", len(raw)) {
				return
			}
			if err := writeDotBody(tp, raw); err != nil {
				return
			}
		case "DELE":
			if !authed {
				if !bad("not authenticated") {
					return
				}
				continue
			}
			n, err := strconv.Atoi(strings.Join(fields[1:], ""))
			msgs := s.store.Messages(user)
			if err != nil || n < 1 || n > len(msgs) {
				if !bad("no such message") {
					return
				}
				continue
			}
			deleted[n-1] = true
			if !ok("marked for deletion") {
				return
			}
		case "NOOP":
			if !ok("") {
				return
			}
		case "QUIT":
			// Apply deletions highest-index first so indices stay valid.
			if authed {
				for i := len(s.store.Messages(user)) - 1; i >= 0; i-- {
					if deleted[i] {
						s.store.Delete(user, i)
					}
				}
			}
			ok("bye")
			return
		default:
			if !bad("unknown command %s", fields[0]) {
				return
			}
		}
	}
}

// writeDotBody writes a multi-line response with dot-stuffing and the
// final lone dot.
func writeDotBody(tp *textproto.Conn, raw []byte) error {
	sc := bufio.NewScanner(strings.NewReader(string(raw)))
	for sc.Scan() {
		line := sc.Text()
		if strings.HasPrefix(line, ".") {
			line = "." + line
		}
		if err := tp.PrintfLine("%s", line); err != nil {
			return err
		}
	}
	return tp.PrintfLine(".")
}
