package mail

import (
	"strings"
	"testing"
	"time"
)

func TestMessageRenderParseRoundTrip(t *testing.T) {
	in := Message{
		From:    "vcr@home.example",
		To:      "user@home.example",
		Subject: "invoke havi:vcr-1 Record",
		Date:    time.Date(2002, 7, 2, 10, 0, 0, 0, time.UTC),
		Body:    "channel=5\nminutes=30",
	}
	out, err := ParseMessage(in.Render())
	if err != nil {
		t.Fatalf("ParseMessage: %v", err)
	}
	if out.From != in.From || out.To != in.To || out.Subject != in.Subject {
		t.Errorf("headers: %+v", out)
	}
	if !out.Date.Equal(in.Date) {
		t.Errorf("date: %v != %v", out.Date, in.Date)
	}
	if out.Body != "channel=5\nminutes=30" {
		t.Errorf("body = %q", out.Body)
	}
}

func TestParseMessageTolerant(t *testing.T) {
	m, err := ParseMessage([]byte("Subject: hi\r\n\r\nbody"))
	if err != nil {
		t.Fatalf("ParseMessage: %v", err)
	}
	if m.Subject != "hi" || m.Body != "body" || m.From != "" {
		t.Errorf("%+v", m)
	}
}

func TestStoreSemantics(t *testing.T) {
	s := NewStore()
	s.Deliver("User@Example.COM", Message{Subject: "a"})
	s.Deliver("<user@example.com>", Message{Subject: "b"})
	msgs := s.Messages("user@example.com")
	if len(msgs) != 2 {
		t.Fatalf("normalization failed: %d messages", len(msgs))
	}
	if !s.Delete("user@example.com", 0) {
		t.Fatal("Delete failed")
	}
	msgs = s.Messages("user@example.com")
	if len(msgs) != 1 || msgs[0].Subject != "b" {
		t.Errorf("after delete: %+v", msgs)
	}
	if s.Delete("user@example.com", 5) {
		t.Error("out-of-range delete succeeded")
	}
	if got := s.Addresses(); len(got) != 1 || got[0] != "user@example.com" {
		t.Errorf("Addresses = %v", got)
	}
	if got := s.Drain("user@example.com"); len(got) != 1 {
		t.Errorf("Drain = %v", got)
	}
	if len(s.Messages("user@example.com")) != 0 {
		t.Error("mailbox not empty after drain")
	}
}

func newMailRig(t *testing.T) (*Store, *SMTPServer, *POP3Server) {
	t.Helper()
	store := NewStore()
	smtpSrv := NewSMTPServer(store)
	if err := smtpSrv.Start("127.0.0.1:0"); err != nil {
		t.Fatal(err)
	}
	popSrv := NewPOP3Server(store)
	if err := popSrv.Start("127.0.0.1:0"); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() {
		smtpSrv.Close()
		popSrv.Close()
	})
	return store, smtpSrv, popSrv
}

func TestSMTPDelivery(t *testing.T) {
	store, smtpSrv, _ := newMailRig(t)
	err := Send(smtpSrv.Addr(), Message{
		From:    "alice@home.example",
		To:      "bob@home.example",
		Subject: "hello",
		Body:    "line one\nline two",
	})
	if err != nil {
		t.Fatalf("Send: %v", err)
	}
	msgs := store.Messages("bob@home.example")
	if len(msgs) != 1 {
		t.Fatalf("delivered %d messages", len(msgs))
	}
	if msgs[0].Subject != "hello" || !strings.Contains(msgs[0].Body, "line two") {
		t.Errorf("message = %+v", msgs[0])
	}
}

func TestSMTPDotStuffing(t *testing.T) {
	store, smtpSrv, _ := newMailRig(t)
	err := Send(smtpSrv.Addr(), Message{
		From:    "a@h",
		To:      "b@h",
		Subject: "dots",
		Body:    ".leading dot\nnormal\n..double",
	})
	if err != nil {
		t.Fatalf("Send: %v", err)
	}
	msgs := store.Messages("b@h")
	if len(msgs) != 1 {
		t.Fatal("no delivery")
	}
	if msgs[0].Body != ".leading dot\nnormal\n..double" {
		t.Errorf("body = %q", msgs[0].Body)
	}
}

func TestPOP3FetchAndDelete(t *testing.T) {
	store, _, popSrv := newMailRig(t)
	store.Deliver("user@h", Message{From: "x@h", To: "user@h", Subject: "one", Body: "1"})
	store.Deliver("user@h", Message{From: "x@h", To: "user@h", Subject: "two", Body: "2"})

	msgs, err := Fetch(popSrv.Addr(), "user@h", false)
	if err != nil {
		t.Fatalf("Fetch: %v", err)
	}
	if len(msgs) != 2 || msgs[0].Subject != "one" || msgs[1].Subject != "two" {
		t.Fatalf("msgs = %+v", msgs)
	}
	// Non-destructive fetch left them in place.
	if len(store.Messages("user@h")) != 2 {
		t.Error("messages deleted by non-destructive fetch")
	}

	// Destructive fetch empties the box.
	if _, err := Fetch(popSrv.Addr(), "user@h", true); err != nil {
		t.Fatal(err)
	}
	if len(store.Messages("user@h")) != 0 {
		t.Error("messages survived destructive fetch")
	}
}

func TestEndToEndMailLoop(t *testing.T) {
	_, smtpSrv, popSrv := newMailRig(t)
	if err := Send(smtpSrv.Addr(), Message{From: "a@h", To: "svc@h", Subject: "invoke x10:lamp-1 On", Body: ""}); err != nil {
		t.Fatal(err)
	}
	msgs, err := Fetch(popSrv.Addr(), "svc@h", true)
	if err != nil || len(msgs) != 1 {
		t.Fatalf("Fetch = %v, %v", msgs, err)
	}
	if msgs[0].Subject != "invoke x10:lamp-1 On" {
		t.Errorf("subject = %q", msgs[0].Subject)
	}
}

func TestFetchEmptyMailbox(t *testing.T) {
	_, _, popSrv := newMailRig(t)
	msgs, err := Fetch(popSrv.Addr(), "nobody@h", true)
	if err != nil {
		t.Fatalf("Fetch: %v", err)
	}
	if len(msgs) != 0 {
		t.Errorf("msgs = %v", msgs)
	}
}

func TestFetchServerGone(t *testing.T) {
	if _, err := Fetch("127.0.0.1:1", "x@h", false); err == nil {
		t.Error("Fetch against dead server succeeded")
	}
}
