// Failover edge tests for the replication protocol layer: replica-mode
// write rejection on both wire encodings, epoch fencing and durability,
// cursor continuity under duplicate and gapped feeds, torn-WAL replica
// re-attach, and the XML-vs-binary replication-frame equivalence the
// HCB1 fast path must hold to keep mixed replica sets convergent.
package uddi

import (
	"bytes"
	"context"
	"encoding/binary"
	"errors"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"sort"
	"testing"
	"time"

	"homeconnect/internal/transport"
)

// stateBytes serializes a registry's full replicated state — position,
// regime, and every entry with its deadline — into one canonical byte
// string, so two replicas can be compared for exact convergence.
func stateBytes(t *testing.T, s *Server) []byte {
	t.Helper()
	entries, deadlines, seq, epoch, leader := s.ReplState()
	b := binary.AppendUvarint(nil, seq)
	b = binary.AppendUvarint(b, epoch)
	b = appendWALString(b, leader)
	for i := range entries {
		b = appendBinEntry(b, &entries[i])
		b = binary.AppendUvarint(b, uint64(deadlines[i].UnixMilli()))
	}
	return b
}

func TestReplicaModeRejectsWrites(t *testing.T) {
	const leaderURL = "http://leader.test/uddi"
	s := NewServer()
	defer s.Close()
	seeded := s.Save(lampEntry(), time.Hour)
	s.SetReplicaOf(leaderURL)

	t.Run("xml", func(t *testing.T) {
		srv := httptest.NewServer(s.Handler())
		defer srv.Close()
		c := &Client{URL: srv.URL}
		ctx := context.Background()
		if _, err := c.Save(ctx, lampEntry(), time.Hour); !errors.Is(err, ErrNotLeader) {
			t.Fatalf("Save on replica: err = %v, want ErrNotLeader", err)
		}
		_, err := c.Save(ctx, lampEntry(), time.Hour)
		if hint := LeaderHint(err); hint != leaderURL {
			t.Fatalf("LeaderHint = %q, want %q", hint, leaderURL)
		}
		if err := c.Delete(ctx, seeded); !errors.Is(err, ErrNotLeader) {
			t.Fatalf("Delete on replica: err = %v, want ErrNotLeader", err)
		}
		// Reads keep working anywhere in the set.
		if got, err := c.Find(ctx, Query{}); err != nil || len(got) != 1 {
			t.Fatalf("Find on replica = %d entries, err %v", len(got), err)
		}
	})

	t.Run("binary", func(t *testing.T) {
		resp := binServe(s, BinOptions{}, "home-a", encodeBinSaveAll([]Entry{lampEntry()}, time.Hour))
		if resp.Status != http.StatusMisdirectedRequest {
			t.Fatalf("binary save on replica: status %d, want %d", resp.Status, http.StatusMisdirectedRequest)
		}
		if len(resp.Body) < 2 || resp.Body[1] != binUDDIError {
			t.Fatalf("binary save on replica: not an error record: % x", resp.Body[:min(len(resp.Body), 4)])
		}
		r := &walReader{b: resp.Body, off: 2}
		code, info := r.str(), r.str()
		if r.err != nil || code != "E_notLeader" {
			t.Fatalf("binary error code = %q (%v), want E_notLeader", code, r.err)
		}
		if leaderHintIn(info) != leaderURL {
			t.Fatalf("binary error info %q does not carry the leader hint", info)
		}
		// Binary reads keep working.
		resp = binServe(s, BinOptions{}, "home-a", encodeBinFind(Query{}))
		if entries, _, err := decodeBinEntries(resp.Body); err != nil || len(entries) != 1 {
			t.Fatalf("binary find on replica = %d entries, err %v", len(entries), err)
		}
	})
}

// The replica-set-aware client: a write that lands on a replica follows
// the leader hint, a dead endpoint advances the resolver, and the caller
// sees neither.
func TestClientFailover(t *testing.T) {
	mem := transport.NewMemNet()
	leader := NewServer()
	defer leader.Close()
	replica := NewServer()
	defer replica.Close()
	const (
		leaderURL  = "http://lead.test/uddi"
		replicaURL = "http://repl.test/uddi"
		deadURL    = "http://dead.test/uddi"
	)
	replica.SetReplicaOf(leaderURL)
	mem.Handle("lead.test", leader.Handler())
	mem.Handle("repl.test", replica.Handler())
	ctx := context.Background()

	t.Run("not-leader re-pins", func(t *testing.T) {
		c := &Client{HTTP: mem.Client(), Resolver: transport.NewResolver(replicaURL, leaderURL)}
		if _, err := c.Save(ctx, lampEntry(), time.Hour); err != nil {
			t.Fatalf("Save through resolver: %v", err)
		}
		if leader.Len() != 1 {
			t.Fatalf("leader Len = %d: the write did not follow the hint", leader.Len())
		}
		if got := c.Resolver.Current(); got != leaderURL {
			t.Fatalf("resolver pinned %q, want the leader", got)
		}
	})

	t.Run("dead endpoint advances", func(t *testing.T) {
		c := &Client{HTTP: mem.Client(), Resolver: transport.NewResolver(deadURL, leaderURL)}
		if _, err := c.Find(ctx, Query{}); err != nil {
			t.Fatalf("Find through resolver with a dead head: %v", err)
		}
		if got := c.Resolver.Current(); got != leaderURL {
			t.Fatalf("resolver stayed on %q, want the live endpoint", got)
		}
	})

	t.Run("all endpoints dead surfaces the error", func(t *testing.T) {
		c := &Client{HTTP: mem.Client(), Resolver: transport.NewResolver(deadURL, "http://dead2.test/uddi")}
		if _, err := c.Find(ctx, Query{}); err == nil {
			t.Fatal("Find with every endpoint dead returned nil error")
		}
	})
}

func TestSetEpochFencing(t *testing.T) {
	s := NewServer()
	defer s.Close()
	if err := s.SetEpoch(5, "http://a/uddi"); err != nil {
		t.Fatalf("SetEpoch(5): %v", err)
	}
	if err := s.SetEpoch(4, "http://b/uddi"); !errors.Is(err, ErrStaleEpoch) {
		t.Fatalf("epoch regression: err = %v, want ErrStaleEpoch", err)
	}
	// Equal-epoch re-assert with a new leader name is allowed: the
	// deterministic loser of a double promotion re-grounds on the winner
	// without burning an epoch.
	if err := s.SetEpoch(5, "http://b/uddi"); err != nil {
		t.Fatalf("equal-epoch re-assert: %v", err)
	}
	epoch, leader := s.Epoch()
	if epoch != 5 || leader != "http://b/uddi" {
		t.Fatalf("Epoch = %d %q after re-assert", epoch, leader)
	}
}

func TestEpochSurvivesRestartAndSnapshot(t *testing.T) {
	dir := t.TempDir()
	open := func() *Server {
		s, err := NewManualDurableServer(DurabilityOptions{Dir: dir, Fsync: FsyncAlways, SnapshotEvery: 2})
		if err != nil {
			t.Fatal(err)
		}
		return s
	}
	s := open()
	if err := s.SetEpoch(3, "http://m1/uddi"); err != nil {
		t.Fatal(err)
	}
	// Enough writes to roll a snapshot past the epoch frame: the epoch
	// must ride the snapshot too, not just the replayable tail.
	for i := 0; i < 5; i++ {
		s.Save(lampEntry(), time.Hour)
	}
	s.Sweep() // snapshot maintenance runs on the sweep seam
	s.Close()

	s = open()
	defer s.Close()
	epoch, leader := s.Epoch()
	if epoch != 3 || leader != "http://m1/uddi" {
		t.Fatalf("after restart: epoch = %d leader = %q, want 3 http://m1/uddi", epoch, leader)
	}
}

func feedChange(seq uint64, key string) Change {
	e := lampEntry()
	e.Key = key
	return Change{Seq: seq, Op: OpAdd, Entry: e, Expires: time.Now().Add(time.Hour)}
}

func TestApplyReplicatedCursorContinuity(t *testing.T) {
	s := NewServer()
	defer s.Close()
	for seq := uint64(1); seq <= 3; seq++ {
		if err := s.ApplyReplicated(feedChange(seq, NewKey())); err != nil {
			t.Fatalf("apply seq %d: %v", seq, err)
		}
	}
	if s.Seq() != 3 {
		t.Fatalf("Seq = %d, want the leader's 3", s.Seq())
	}
	// The replica's journal serves the same cursors the leader would:
	// an importer that was at 0 replays all three without a resync.
	ctx := context.Background()
	changes, next, resync, err := s.WatchChanges(ctx, 0, time.Millisecond)
	if err != nil || resync || len(changes) != 3 || next != 3 {
		t.Fatalf("WatchChanges(0) = %d changes next %d resync %v err %v", len(changes), next, resync, err)
	}
	// Duplicate redelivery (the feed re-sent an already-applied change)
	// is a no-op, not a divergence.
	dup := feedChange(2, "uuid:dup")
	if err := s.ApplyReplicated(dup); err != nil {
		t.Fatalf("duplicate apply: %v", err)
	}
	if _, ok := s.Get("uuid:dup"); ok {
		t.Fatal("duplicate redelivery was applied")
	}
	// A sequence gap re-grounds the journal: the position advances and
	// watchers behind the gap are told to resync rather than fed a hole.
	if err := s.ApplyReplicated(feedChange(10, NewKey())); err != nil {
		t.Fatalf("gapped apply: %v", err)
	}
	if s.Seq() != 10 {
		t.Fatalf("Seq after gap = %d, want 10", s.Seq())
	}
	if _, _, resync, _ := s.WatchChanges(ctx, 3, time.Millisecond); !resync {
		t.Fatal("watcher behind a replication gap was not told to resync")
	}
}

func TestReplWatchStaleEpochFence(t *testing.T) {
	s := NewServer()
	defer s.Close()
	if err := s.SetEpoch(2, "http://old/uddi"); err != nil {
		t.Fatal(err)
	}
	s.Save(lampEntry(), time.Hour)
	srv := httptest.NewServer(s.Handler())
	defer srv.Close()
	c := &Client{URL: srv.URL}
	ctx := context.Background()
	// A replica that has acknowledged epoch 3 must not keep feeding from
	// an epoch-2 leader: the old regime fences the request.
	if _, err := c.ReplWatch(ctx, 0, 3, time.Millisecond); !errors.Is(err, ErrStaleEpoch) {
		t.Fatalf("stale feed: err = %v, want ErrStaleEpoch", err)
	}
	// Same regime feeds fine.
	rc, err := c.ReplWatch(ctx, 0, 2, time.Millisecond)
	if err != nil || len(rc.Changes) != 1 || rc.Epoch != 2 {
		t.Fatalf("current-epoch feed = %d changes epoch %d err %v", len(rc.Changes), rc.Epoch, err)
	}
}

// A replica whose WAL lost its tail (torn final record) recovers the
// surviving prefix, re-attaches with a state transfer, and after the
// transfer no pre-crash entry the leader has since dropped can rise from
// its disk again — the attach resets the replica's WAL history.
func TestTornWALReplicaReattach(t *testing.T) {
	dir := t.TempDir()
	open := func() *Server {
		s, err := NewManualDurableServer(DurabilityOptions{Dir: dir, Fsync: FsyncAlways})
		if err != nil {
			t.Fatal(err)
		}
		return s
	}
	s := open()
	for seq := uint64(1); seq <= 4; seq++ {
		if err := s.ApplyReplicated(feedChange(seq, NewKey())); err != nil {
			t.Fatal(err)
		}
	}
	s.Close()

	// Tear the newest segment mid-record.
	segs, err := filepath.Glob(filepath.Join(dir, "wal-*.log"))
	if err != nil || len(segs) == 0 {
		t.Fatalf("no WAL segments: %v", err)
	}
	sort.Strings(segs)
	last := segs[len(segs)-1]
	fi, err := os.Stat(last)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.Truncate(last, fi.Size()-3); err != nil {
		t.Fatal(err)
	}

	s = open()
	if got := s.Seq(); got != 3 {
		t.Fatalf("recovered seq = %d, want the 3 whole records", got)
	}

	// The leader moved on while this replica was down: a fresh regime
	// whose state does not include any of the torn replica's entries.
	leaderEntry := lampEntry()
	leaderEntry.Key = "uuid:leader-only"
	deadline := time.Now().Add(time.Hour)
	if err := s.ApplyReplicatedState([]Entry{leaderEntry}, []time.Time{deadline}, 9, 2, "http://new/uddi"); err != nil {
		t.Fatalf("attach: %v", err)
	}
	want := stateBytes(t, s)
	s.Close()

	// Restart again: recovery must reproduce the transferred state
	// exactly — the pre-crash WAL records are gone, not replayed under it.
	s = open()
	defer s.Close()
	if got := stateBytes(t, s); !bytes.Equal(got, want) {
		t.Fatalf("state after post-attach restart diverged:\n got % x\nwant % x", got, want)
	}
	if _, ok := s.Get("uuid:leader-only"); !ok {
		t.Fatal("transferred entry missing after restart")
	}
	if s.Len() != 1 {
		t.Fatalf("Len = %d: pre-crash entries resurrected past the attach", s.Len())
	}
}

// ApplyReplicatedState refuses to re-ground on an older regime than the
// replica has acknowledged: a stale leader cannot roll a replica back.
func TestApplyReplicatedStateStaleEpoch(t *testing.T) {
	s := NewServer()
	defer s.Close()
	if err := s.SetEpoch(4, "http://m1/uddi"); err != nil {
		t.Fatal(err)
	}
	err := s.ApplyReplicatedState(nil, nil, 1, 3, "http://old/uddi")
	if !errors.Is(err, ErrStaleEpoch) {
		t.Fatalf("stale state transfer: err = %v, want ErrStaleEpoch", err)
	}
}

// The replication frames must describe the same feed on both wire
// encodings: a SOAP/XML replica and an HCB1 binary replica of the same
// leader converge to byte-identical registry state, including entries
// full of XML-hostile bytes, updates, deletes and expiries.
func TestReplFramesXMLBinaryEquivalence(t *testing.T) {
	leader := NewManualServer()
	defer leader.Close()
	clk := newFakeClock(time.Unix(5000, 0))
	leader.SetClock(clk.now)
	if err := leader.SetEpoch(7, "http://leader/uddi"); err != nil {
		t.Fatal(err)
	}

	// A feed with every change shape: hostile add, update, delete,
	// expiry. The hostile entry stays inside XML's representable range —
	// raw control bytes are the binary wire's exclusive (and separately
	// tested) territory; mixed replica sets converge on what both wires
	// can carry.
	hostile := hostileEntry
	hostile.Description = "line\nbreak\ttab é☃ <no&nul>"
	hk := leader.Save(hostile, time.Hour)
	doomed := leader.Save(lampEntry(), time.Hour)
	fleeting := leader.Save(func() Entry { e := lampEntry(); e.Key = "uuid:fleeting"; return e }(), 10*time.Second)
	upd := hostile
	upd.Key = hk
	upd.Description = "updated <&> desc"
	leader.Save(upd, 2*time.Hour)
	leader.Delete(doomed)
	clk.advance(11 * time.Second)
	leader.Sweep() // journals the expiry of "uuid:fleeting"
	_ = fleeting

	srv := httptest.NewServer(leader.Handler())
	defer srv.Close()
	ctx := context.Background()

	// XML replica: feed decoded from the SOAP face.
	xmlReplica := NewServer()
	defer xmlReplica.Close()
	c := &Client{URL: srv.URL}
	rcXML, err := c.ReplWatch(ctx, 0, 0, time.Millisecond)
	if err != nil || rcXML.Resync {
		t.Fatalf("xml repl_watch: resync %v err %v", rcXML.Resync, err)
	}
	if err := xmlReplica.SetEpoch(rcXML.Epoch, rcXML.Leader); err != nil {
		t.Fatal(err)
	}
	for _, ch := range rcXML.Changes {
		if err := xmlReplica.ApplyReplicated(ch); err != nil {
			t.Fatalf("xml apply seq %d: %v", ch.Seq, err)
		}
	}

	// Binary replica: the same feed through the HCB1 records.
	binReplica := NewServer()
	defer binReplica.Close()
	resp := binServe(leader, BinOptions{}, "home-a", encodeBinReplWatchReq(0, 0, time.Millisecond))
	rcBin, err := decodeBinReplChanges(resp.Body)
	if err != nil || rcBin.Resync {
		t.Fatalf("binary repl_watch: resync %v err %v", rcBin.Resync, err)
	}
	if err := binReplica.SetEpoch(rcBin.Epoch, rcBin.Leader); err != nil {
		t.Fatal(err)
	}
	for _, ch := range rcBin.Changes {
		if err := binReplica.ApplyReplicated(ch); err != nil {
			t.Fatalf("binary apply seq %d: %v", ch.Seq, err)
		}
	}

	// Both wires must have described the identical feed...
	if len(rcXML.Changes) != len(rcBin.Changes) {
		t.Fatalf("feed lengths differ: xml %d binary %d", len(rcXML.Changes), len(rcBin.Changes))
	}
	for i := range rcXML.Changes {
		x, b := rcXML.Changes[i], rcBin.Changes[i]
		if x.Seq != b.Seq || x.Op != b.Op || x.Entry.Key != b.Entry.Key ||
			!entriesEqual(x.Entry, b.Entry) || !x.Expires.Equal(b.Expires) {
			t.Fatalf("change %d differs between wires:\nxml %+v\nbin %+v", i, x, b)
		}
	}
	// ...and the replicas they fed must be byte-identical.
	if x, b := stateBytes(t, xmlReplica), stateBytes(t, binReplica); !bytes.Equal(x, b) {
		t.Fatalf("replica states diverged:\n xml % x\n bin % x", x, b)
	}

	// The state-transfer frames agree the same way.
	stXML, err := c.ReplSync(ctx)
	if err != nil {
		t.Fatal(err)
	}
	resp = binServe(leader, BinOptions{}, "home-a", encodeBinReplSyncReq())
	stBin, err := decodeBinReplState(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	xmlR2, binR2 := NewServer(), NewServer()
	defer xmlR2.Close()
	defer binR2.Close()
	if err := xmlR2.ApplyReplicatedState(stXML.Entries, stXML.Deadlines, stXML.Seq, stXML.Epoch, stXML.Leader); err != nil {
		t.Fatal(err)
	}
	if err := binR2.ApplyReplicatedState(stBin.Entries, stBin.Deadlines, stBin.Seq, stBin.Epoch, stBin.Leader); err != nil {
		t.Fatal(err)
	}
	if x, b := stateBytes(t, xmlR2), stateBytes(t, binR2); !bytes.Equal(x, b) {
		t.Fatalf("state transfers diverged:\n xml % x\n bin % x", x, b)
	}
}
