// Crash-recovery tests for the durable registry: round-trips through
// kill -9-shaped restarts, table-driven WAL corruption, snapshot/WAL
// overlap, lease re-arming, and the monotone-sequence contract that lets
// watchers resume without resync.
package uddi

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"
)

func durableServer(t *testing.T, dir string, opts DurabilityOptions) *Server {
	t.Helper()
	opts.Dir = dir
	if opts.Fsync == "" {
		opts.Fsync = FsyncOff
	}
	s, err := NewManualDurableServer(opts)
	if err != nil {
		t.Fatalf("NewManualDurableServer: %v", err)
	}
	return s
}

func entryNamed(name string) Entry {
	return Entry{
		Name:        name,
		Description: "durable test service",
		AccessPoint: "http://gw.example/" + name,
		TModel:      "tmodel:test",
		Categories:  map[string]string{"room": "den", "kind": "test"},
	}
}

// TestDurableRoundTrip: registrations written before a crash-close are
// all served after reopening the same directory, with the sequence
// number preserved and payloads intact.
func TestDurableRoundTrip(t *testing.T) {
	dir := t.TempDir()
	s := durableServer(t, dir, DurabilityOptions{})
	keys := make([]string, 10)
	for i := range keys {
		keys[i] = s.Save(entryNamed("svc-"+string(rune('a'+i))), time.Hour)
	}
	s.Delete(keys[3])
	preSeq := s.Seq()
	s.CrashClose()

	s2 := durableServer(t, dir, DurabilityOptions{})
	defer s2.Close()
	if got := s2.Seq(); got != preSeq {
		t.Fatalf("seq after restart = %d, want %d", got, preSeq)
	}
	if got := s2.Len(); got != 9 {
		t.Fatalf("Len after restart = %d, want 9", got)
	}
	e, ok := s2.Get(keys[0])
	if !ok {
		t.Fatal("entry missing after restart")
	}
	if e.AccessPoint != "http://gw.example/svc-a" || e.Categories["room"] != "den" {
		t.Fatalf("entry payload mangled after restart: %+v", e)
	}
	if _, ok := s2.Get(keys[3]); ok {
		t.Fatal("deleted entry resurrected by restart")
	}
	rec := s2.Recovery()
	if rec.CleanShutdown {
		t.Fatal("crash close reported as clean shutdown")
	}
	if rec.Replayed == 0 {
		t.Fatal("no WAL records replayed")
	}
}

// TestCleanShutdownMarker: Shutdown writes the marker, so the next boot
// reports a clean shutdown and no tail repair; a new registration after
// the restart continues the sequence monotonically.
func TestCleanShutdownMarker(t *testing.T) {
	dir := t.TempDir()
	s := durableServer(t, dir, DurabilityOptions{})
	s.Save(entryNamed("one"), time.Hour)
	s.Save(entryNamed("two"), time.Hour)
	preSeq := s.Seq()
	if err := s.Shutdown(); err != nil {
		t.Fatalf("Shutdown: %v", err)
	}

	s2 := durableServer(t, dir, DurabilityOptions{})
	defer s2.Close()
	rec := s2.Recovery()
	if !rec.CleanShutdown {
		t.Fatal("marked shutdown not detected as clean")
	}
	if rec.TornTail {
		t.Fatal("clean shutdown reported torn tail")
	}
	if s2.Seq() != preSeq {
		t.Fatalf("seq = %d, want %d", s2.Seq(), preSeq)
	}
	s2.Save(entryNamed("three"), time.Hour)
	if s2.Seq() != preSeq+1 {
		t.Fatalf("post-restart seq = %d, want %d", s2.Seq(), preSeq+1)
	}
}

// corruptWAL is one entry in the corruption table: mutate the (single)
// WAL segment on disk, then say what recovery must report.
type corruptWAL struct {
	name string
	// mutate damages the segment bytes; returns the bytes to write back.
	mutate func(t *testing.T, data []byte) []byte
	// wantEntries after recovery (10 were saved, each ~frame).
	wantEntries  func(got int) bool
	wantTornTail bool
}

// TestWALCorruptionTable: torn final frame, bit-flipped mid-file record,
// and a truncated header all truncate at the last valid frame instead of
// failing the boot.
func TestWALCorruptionTable(t *testing.T) {
	cases := []corruptWAL{
		{
			// The final frame loses its last 3 bytes, as a power cut
			// mid-write would leave it.
			name: "torn final frame",
			mutate: func(t *testing.T, data []byte) []byte {
				return data[:len(data)-3]
			},
			wantEntries:  func(got int) bool { return got == 9 },
			wantTornTail: true,
		},
		{
			// A bit flips in the middle of the file: everything from that
			// record on is untrustworthy and must be dropped.
			name: "bit flip mid-file",
			mutate: func(t *testing.T, data []byte) []byte {
				data[len(data)/2] ^= 0x40
				return data
			},
			wantEntries:  func(got int) bool { return got >= 1 && got <= 9 },
			wantTornTail: true,
		},
		{
			// Only half a frame header survives.
			name: "truncated header",
			mutate: func(t *testing.T, data []byte) []byte {
				return data[:len(walMagic)+4]
			},
			wantEntries:  func(got int) bool { return got == 0 },
			wantTornTail: true,
		},
		{
			name:         "intact",
			mutate:       func(t *testing.T, data []byte) []byte { return data },
			wantEntries:  func(got int) bool { return got == 10 },
			wantTornTail: false,
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			dir := t.TempDir()
			s := durableServer(t, dir, DurabilityOptions{})
			for i := 0; i < 10; i++ {
				s.Save(entryNamed("svc-"+string(rune('a'+i))), time.Hour)
			}
			s.CrashClose()

			seg := walSegments(t, dir)
			if len(seg) != 1 {
				t.Fatalf("segments = %d, want 1", len(seg))
			}
			data, err := os.ReadFile(seg[0])
			if err != nil {
				t.Fatal(err)
			}
			if err := os.WriteFile(seg[0], tc.mutate(t, data), 0o644); err != nil {
				t.Fatal(err)
			}

			s2 := durableServer(t, dir, DurabilityOptions{})
			defer s2.Close()
			rec := s2.Recovery()
			if rec.TornTail != tc.wantTornTail {
				t.Fatalf("TornTail = %v, want %v (%+v)", rec.TornTail, tc.wantTornTail, rec)
			}
			if got := s2.Len(); !tc.wantEntries(got) {
				t.Fatalf("entries after recovery = %d (%+v)", got, rec)
			}
			// Whatever survived must still accept writes: the truncated
			// tail is writable again.
			s2.Save(entryNamed("after"), time.Hour)
			if _, ok := findByName(s2, "after"); !ok {
				t.Fatal("post-recovery write lost")
			}
		})
	}
}

// TestSnapshotWALOverlap: records at and below the snapshot seq also
// present in the WAL must not double-apply, and the fuzzy span above the
// snapshot must replay idempotently.
func TestSnapshotWALOverlap(t *testing.T) {
	dir := t.TempDir()
	s := durableServer(t, dir, DurabilityOptions{})
	keys := make([]string, 6)
	for i := range keys {
		keys[i] = s.Save(entryNamed("svc-"+string(rune('a'+i))), time.Hour)
	}
	if err := s.Snapshot(); err != nil {
		t.Fatalf("Snapshot: %v", err)
	}
	// Post-snapshot churn: an update, a delete, a fresh add.
	e, _ := s.Get(keys[0])
	e.Description = "post-snapshot update"
	s.Save(e, time.Hour)
	s.Delete(keys[1])
	s.Save(entryNamed("late"), time.Hour)
	preSeq := s.Seq()
	s.CrashClose()

	// Force the overlap: re-copy the pre-rotation segment's records by
	// restarting twice (the second boot replays snapshot + tail again).
	for round := 0; round < 2; round++ {
		s2 := durableServer(t, dir, DurabilityOptions{})
		if got := s2.Seq(); got != preSeq {
			t.Fatalf("round %d: seq = %d, want %d", round, got, preSeq)
		}
		if got := s2.Len(); got != 6 {
			t.Fatalf("round %d: Len = %d, want 6", round, got)
		}
		if e, ok := s2.Get(keys[0]); !ok || e.Description != "post-snapshot update" {
			t.Fatalf("round %d: update not replayed over snapshot: %+v", round, e)
		}
		if _, ok := s2.Get(keys[1]); ok {
			t.Fatalf("round %d: delete not replayed over snapshot", round)
		}
		rec := s2.Recovery()
		if rec.SnapshotSeq == 0 {
			t.Fatalf("round %d: snapshot not used: %+v", round, rec)
		}
		s2.CrashClose()
	}
}

// TestSnapshotFallback: a corrupt newest snapshot falls back to the
// previous generation plus a longer WAL replay.
func TestSnapshotFallback(t *testing.T) {
	dir := t.TempDir()
	s := durableServer(t, dir, DurabilityOptions{})
	for i := 0; i < 4; i++ {
		s.Save(entryNamed("gen1-"+string(rune('a'+i))), time.Hour)
	}
	if err := s.Snapshot(); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 4; i++ {
		s.Save(entryNamed("gen2-"+string(rune('a'+i))), time.Hour)
	}
	if err := s.Snapshot(); err != nil {
		t.Fatal(err)
	}
	preSeq := s.Seq()
	s.CrashClose()

	snaps := snapFiles(t, dir)
	if len(snaps) != 2 {
		t.Fatalf("snapshots on disk = %d, want 2", len(snaps))
	}
	// Flip a byte inside the newest snapshot's frame.
	newest := snaps[len(snaps)-1]
	data, err := os.ReadFile(newest)
	if err != nil {
		t.Fatal(err)
	}
	data[len(data)-2] ^= 0xff
	if err := os.WriteFile(newest, data, 0o644); err != nil {
		t.Fatal(err)
	}

	s2 := durableServer(t, dir, DurabilityOptions{})
	defer s2.Close()
	rec := s2.Recovery()
	if !rec.SnapshotFallback {
		t.Fatalf("fallback not reported: %+v", rec)
	}
	if s2.Seq() != preSeq || s2.Len() != 8 {
		t.Fatalf("state after fallback: seq=%d len=%d, want %d/8", s2.Seq(), s2.Len(), preSeq)
	}
}

// TestExpiryRearmAcrossRestart: a lease's remaining lifetime survives the
// restart — the deadline is the persisted absolute time, not TTL-from-boot
// — and a lease that lapsed while the process was down is expired (and
// journaled) by the first sweep.
func TestExpiryRearmAcrossRestart(t *testing.T) {
	dir := t.TempDir()
	clk := newFakeClock(time.Date(2030, 1, 1, 0, 0, 0, 0, time.UTC))
	s := durableServer(t, dir, DurabilityOptions{Clock: clk.now})
	longKey := s.Save(entryNamed("long-lease"), time.Hour)
	s.Save(entryNamed("short-lease"), time.Minute)
	s.CrashClose()

	// Down for 10 minutes: the short lease lapses, the long one has 50
	// minutes left.
	clk.advance(10 * time.Minute)
	s2 := durableServer(t, dir, DurabilityOptions{Clock: clk.now})
	defer s2.Close()
	if s2.Recovery().LapsedAtBoot != 1 {
		t.Fatalf("LapsedAtBoot = %d, want 1: %+v", s2.Recovery().LapsedAtBoot, s2.Recovery())
	}
	seqBefore := s2.Seq()
	s2.Sweep()
	if _, ok := findByName(s2, "short-lease"); ok {
		t.Fatal("lapsed lease survived the first sweep")
	}
	changes, _, resync := s2.Changes(seqBefore)
	if resync || len(changes) != 1 || changes[0].Op != OpExpire {
		t.Fatalf("lapsed lease not journaled as expiry: %+v (resync=%v)", changes, resync)
	}
	// 49 more minutes: the long lease is still inside its original hour.
	clk.advance(49 * time.Minute)
	s2.Sweep()
	if _, ok := s2.Get(longKey); !ok {
		t.Fatal("long lease expired early: deadline not re-armed with remaining lifetime")
	}
	// Past the hour: it lapses on schedule.
	clk.advance(2 * time.Minute)
	s2.Sweep()
	if _, ok := s2.Get(longKey); ok {
		t.Fatal("long lease survived past its persisted deadline")
	}
}

// TestWatcherResumeWithoutResync: a watcher cursor taken before a crash
// stays valid after the restart — Changes(since) serves the tail without
// demanding a resync, because recovery refills the journal ring. A cursor
// from before the snapshot horizon still (correctly) resyncs.
func TestWatcherResumeWithoutResync(t *testing.T) {
	dir := t.TempDir()
	s := durableServer(t, dir, DurabilityOptions{})
	for i := 0; i < 5; i++ {
		s.Save(entryNamed("pre-"+string(rune('a'+i))), time.Hour)
	}
	cursor := s.Seq() // watcher is caught up here
	for i := 0; i < 3; i++ {
		s.Save(entryNamed("unseen-"+string(rune('a'+i))), time.Hour)
	}
	s.CrashClose()

	s2 := durableServer(t, dir, DurabilityOptions{})
	defer s2.Close()
	changes, next, resync := s2.Changes(cursor)
	if resync {
		t.Fatal("watcher forced into resync after restart")
	}
	if len(changes) != 3 {
		t.Fatalf("resumed changes = %d, want 3", len(changes))
	}
	for i, c := range changes {
		if c.Seq != cursor+uint64(i+1) {
			t.Fatalf("change %d seq = %d, want %d", i, c.Seq, cursor+uint64(i+1))
		}
		if c.Op != OpAdd || !strings.HasPrefix(c.Entry.Name, "unseen-") {
			t.Fatalf("resumed change %d wrong: %+v", i, c)
		}
	}
	if next != s2.Seq() {
		t.Fatalf("next = %d, want %d", next, s2.Seq())
	}

	// After a snapshot + restart, a cursor below the snapshot horizon is
	// beyond what the ring can reconstruct: resync is the right answer.
	if err := s2.Snapshot(); err != nil {
		t.Fatal(err)
	}
	s2.Save(entryNamed("post-snap"), time.Hour)
	s2.CrashClose()
	s3 := durableServer(t, dir, DurabilityOptions{})
	defer s3.Close()
	if _, _, resync := s3.Changes(1); !resync {
		t.Fatal("cursor below the snapshot horizon must resync")
	}
	if _, _, resync := s3.Changes(s3.Seq() - 1); resync {
		t.Fatal("cursor above the snapshot horizon must not resync")
	}
}

// TestSnapshotPrunesSegments: snapshots rotate the WAL and prune segments
// older than the fallback generation needs, so the directory doesn't grow
// without bound.
func TestSnapshotPrunesSegments(t *testing.T) {
	dir := t.TempDir()
	s := durableServer(t, dir, DurabilityOptions{SnapshotEvery: 8})
	defer s.Close()
	for i := 0; i < 100; i++ {
		s.Save(entryNamed("churn"), time.Hour)
		s.Sweep() // drives the SnapshotEvery trigger deterministically
	}
	segs := walSegments(t, dir)
	if len(segs) > 3 {
		t.Fatalf("segments not pruned: %d on disk", len(segs))
	}
	if snaps := snapFiles(t, dir); len(snaps) > snapshotsKept {
		t.Fatalf("snapshots not pruned: %d on disk", len(snaps))
	}
	d := s.Durability()
	if d.Snapshots == 0 || d.SnapshotSeq == 0 {
		t.Fatalf("snapshot trigger never fired: %+v", d)
	}
}

// TestInMemoryUnaffected: a plain in-memory registry reports durability
// disabled and has no WAL hooks in its mutation path.
func TestInMemoryUnaffected(t *testing.T) {
	s := NewManualServer()
	defer s.Close()
	s.Save(entryNamed("x"), time.Hour)
	if d := s.Durability(); d.Enabled {
		t.Fatalf("in-memory registry claims durability: %+v", d)
	}
	if err := s.Shutdown(); err != nil {
		t.Fatalf("in-memory Shutdown: %v", err)
	}
}

func walSegments(t *testing.T, dir string) []string {
	t.Helper()
	m, err := filepath.Glob(filepath.Join(dir, "wal-*.log"))
	if err != nil {
		t.Fatal(err)
	}
	return m
}

func snapFiles(t *testing.T, dir string) []string {
	t.Helper()
	m, err := filepath.Glob(filepath.Join(dir, "snap-*.snap"))
	if err != nil {
		t.Fatal(err)
	}
	return m
}

func findByName(s *Server, name string) (Entry, bool) {
	for _, e := range s.Find(Query{Name: name}) {
		return e, true
	}
	return Entry{}, false
}
