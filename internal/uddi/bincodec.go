// Binary-native registry protocol: the framework-internal encoding of
// the UDDI operations (save/find/get/delete/watch) for the session-keyed
// fast path. The XML wire stays byte-identical for HTTP callers; between
// framework-owned endpoints that negotiated a binary session, the same
// operations ride compact WAL-style records — op byte, uvarint lengths —
// inside MAC'd frames, skipping XML encode/escape/parse entirely. This
// is where the fast path earns its latency target: the frame layer alone
// only removes HTTP, while registry traffic (watch rounds above all) is
// dominated by document encoding.
//
// The record grammar reuses the WAL's field encoding (appendWALString /
// walReader), so an entry encodes identically in the journal on disk and
// on the wire.
package uddi

import (
	"context"
	"encoding/binary"
	"fmt"
	"net/http"
	"sort"
	"time"

	"homeconnect/internal/service"
	"homeconnect/internal/transport"
)

// BinContentType marks a binary-native registry request or response
// inside a fast-path frame. Anything else on a registry face is treated
// as tunneled XML and handed to the HTTP handler.
const BinContentType = "application/x-homeconnect-binuddi"

// binUDDIVersion versions the record grammar; a decoder seeing a higher
// version refuses, and the client falls back to XML.
const binUDDIVersion = 1

// Request records.
const (
	binUDDISaveAll = 'S' // uvarint ttlMS, uvarint n, n × entry
	binUDDIDelete  = 'D' // key
	binUDDIFind    = 'F' // name, tModel, uvarint n, n × (key, value)
	binUDDIGet     = 'G' // key
	binUDDIWatch   = 'W' // uvarint since, uvarint timeoutMS, uvarint sinceEpoch
	// Replication requests (private repository face only; see replica.go).
	binUDDIReplSync   = 'Y' // (empty)
	binUDDIReplWatch  = 'V' // uvarint since, uvarint timeoutMS, uvarint epoch
	binUDDIReplStatus = 'Q' // (empty)
)

// Response records.
const (
	binUDDIKeys    = 'K' // uvarint n, n × key
	binUDDIEntries = 'L' // uvarint seq, uvarint n, n × entry
	binUDDIChanges = 'C' // uvarint next, bool resync, uvarint epoch, uvarint n, n × (uvarint seq, op byte, entry)
	binUDDIError   = 'E' // code, info — the dispositionReport twin
	// Replication responses.
	binUDDIReplState   = 'R' // uvarint seq, uvarint epoch, leader, uvarint n, n × (uvarint expMS, entry)
	binUDDIReplChange  = 'H' // uvarint next, bool resync, uvarint epoch, leader, uvarint n, n × (uvarint seq, op byte, uvarint expMS, entry)
	binUDDIReplStatusR = 'T' // uvarint seq, uvarint epoch, leader, role, replicaOf
)

// appendBinEntry appends one entry in WAL field order (minus the
// journal-only expiry stamp). Category pairs sort so identical entries
// encode identically.
func appendBinEntry(b []byte, e *Entry) []byte {
	b = appendWALString(b, e.Key)
	b = appendWALString(b, e.Name)
	b = appendWALString(b, e.Description)
	b = appendWALString(b, e.AccessPoint)
	b = appendWALString(b, e.TModel)
	b = appendWALString(b, e.WSDL)
	b = binary.AppendUvarint(b, uint64(len(e.Categories)))
	if len(e.Categories) > 0 {
		keys := make([]string, 0, len(e.Categories))
		for k := range e.Categories {
			keys = append(keys, k)
		}
		sort.Strings(keys)
		for _, k := range keys {
			b = appendWALString(b, k)
			b = appendWALString(b, e.Categories[k])
		}
	}
	return b
}

func decodeBinEntry(r *walReader) Entry {
	var e Entry
	e.Key = r.str()
	e.Name = r.str()
	e.Description = r.str()
	e.AccessPoint = r.str()
	e.TModel = r.str()
	e.WSDL = r.str()
	ncats := int(r.uvarint())
	if r.err == nil && ncats > 0 {
		if ncats > maxWALFrame {
			r.err = fmt.Errorf("uddi: category count out of range")
			return Entry{}
		}
		e.Categories = make(map[string]string, ncats)
		for i := 0; i < ncats; i++ {
			k := r.str()
			e.Categories[k] = r.str()
		}
	}
	return e
}

// binReaderFor validates the version/op header and positions a reader
// past it.
func binReaderFor(data []byte) (op byte, r *walReader, err error) {
	if len(data) < 2 {
		return 0, nil, fmt.Errorf("uddi: short binary record")
	}
	if data[0] != binUDDIVersion {
		return 0, nil, fmt.Errorf("uddi: unknown binary record version %d", data[0])
	}
	return data[1], &walReader{b: data, off: 2}, nil
}

// --- request encoding (client side) -------------------------------------

func encodeBinSaveAll(entries []Entry, ttl time.Duration) []byte {
	b := []byte{binUDDIVersion, binUDDISaveAll}
	b = binary.AppendUvarint(b, uint64(ttl/time.Millisecond))
	b = binary.AppendUvarint(b, uint64(len(entries)))
	for i := range entries {
		b = appendBinEntry(b, &entries[i])
	}
	return b
}

func encodeBinDelete(key string) []byte {
	return appendWALString([]byte{binUDDIVersion, binUDDIDelete}, key)
}

func encodeBinFind(q Query) []byte {
	b := []byte{binUDDIVersion, binUDDIFind}
	b = appendWALString(b, q.Name)
	b = appendWALString(b, q.TModel)
	b = binary.AppendUvarint(b, uint64(len(q.Categories)))
	if len(q.Categories) > 0 {
		keys := make([]string, 0, len(q.Categories))
		for k := range q.Categories {
			keys = append(keys, k)
		}
		sort.Strings(keys)
		for _, k := range keys {
			b = appendWALString(b, k)
			b = appendWALString(b, q.Categories[k])
		}
	}
	return b
}

func encodeBinGet(key string) []byte {
	return appendWALString([]byte{binUDDIVersion, binUDDIGet}, key)
}

func encodeBinWatch(since, sinceEpoch uint64, timeout time.Duration) []byte {
	b := []byte{binUDDIVersion, binUDDIWatch}
	b = binary.AppendUvarint(b, since)
	b = binary.AppendUvarint(b, uint64(timeout/time.Millisecond))
	b = binary.AppendUvarint(b, sinceEpoch)
	return b
}

func encodeBinReplSyncReq() []byte {
	return []byte{binUDDIVersion, binUDDIReplSync}
}

func encodeBinReplStatusReq() []byte {
	return []byte{binUDDIVersion, binUDDIReplStatus}
}

func encodeBinReplWatchReq(since, epoch uint64, timeout time.Duration) []byte {
	b := []byte{binUDDIVersion, binUDDIReplWatch}
	b = binary.AppendUvarint(b, since)
	b = binary.AppendUvarint(b, uint64(timeout/time.Millisecond))
	b = binary.AppendUvarint(b, epoch)
	return b
}

// --- response encoding (server side) ------------------------------------

func encodeBinKeys(keys []string) []byte {
	b := []byte{binUDDIVersion, binUDDIKeys}
	b = binary.AppendUvarint(b, uint64(len(keys)))
	for _, k := range keys {
		b = appendWALString(b, k)
	}
	return b
}

func encodeBinEntries(seq uint64, entries []Entry) []byte {
	b := []byte{binUDDIVersion, binUDDIEntries}
	b = binary.AppendUvarint(b, seq)
	b = binary.AppendUvarint(b, uint64(len(entries)))
	for i := range entries {
		b = appendBinEntry(b, &entries[i])
	}
	return b
}

func encodeBinChanges(changes []Change, next, epoch uint64, resync bool) []byte {
	b := []byte{binUDDIVersion, binUDDIChanges}
	b = binary.AppendUvarint(b, next)
	if resync {
		b = append(b, 1)
	} else {
		b = append(b, 0)
	}
	b = binary.AppendUvarint(b, epoch)
	b = binary.AppendUvarint(b, uint64(len(changes)))
	for i := range changes {
		c := &changes[i]
		b = binary.AppendUvarint(b, c.Seq)
		b = append(b, changeOpWAL(c.Op))
		b = appendBinEntry(b, &c.Entry)
	}
	return b
}

func encodeBinError(code, info string) []byte {
	b := []byte{binUDDIVersion, binUDDIError}
	b = appendWALString(b, code)
	return appendWALString(b, info)
}

func encodeBinReplState(st ReplState) []byte {
	b := []byte{binUDDIVersion, binUDDIReplState}
	b = binary.AppendUvarint(b, st.Seq)
	b = binary.AppendUvarint(b, st.Epoch)
	b = appendWALString(b, st.Leader)
	b = binary.AppendUvarint(b, uint64(len(st.Entries)))
	for i := range st.Entries {
		var expMS uint64
		if !st.Deadlines[i].IsZero() {
			expMS = uint64(st.Deadlines[i].UnixMilli())
		}
		b = binary.AppendUvarint(b, expMS)
		b = appendBinEntry(b, &st.Entries[i])
	}
	return b
}

func encodeBinReplChanges(rc ReplChanges) []byte {
	b := []byte{binUDDIVersion, binUDDIReplChange}
	b = binary.AppendUvarint(b, rc.Next)
	if rc.Resync {
		b = append(b, 1)
	} else {
		b = append(b, 0)
	}
	b = binary.AppendUvarint(b, rc.Epoch)
	b = appendWALString(b, rc.Leader)
	b = binary.AppendUvarint(b, uint64(len(rc.Changes)))
	for i := range rc.Changes {
		c := &rc.Changes[i]
		b = binary.AppendUvarint(b, c.Seq)
		b = append(b, changeOpWAL(c.Op))
		var expMS uint64
		if !c.Expires.IsZero() {
			expMS = uint64(c.Expires.UnixMilli())
		}
		b = binary.AppendUvarint(b, expMS)
		b = appendBinEntry(b, &c.Entry)
	}
	return b
}

func encodeBinReplStatus(st ReplStatus) []byte {
	b := []byte{binUDDIVersion, binUDDIReplStatusR}
	b = binary.AppendUvarint(b, st.Seq)
	b = binary.AppendUvarint(b, st.Epoch)
	b = appendWALString(b, st.Leader)
	b = appendWALString(b, st.Role)
	b = appendWALString(b, st.ReplicaOf)
	return b
}

// --- response decoding (client side) ------------------------------------

// binErrorOf maps a decoded registry refusal to a typed error. It is the
// single mapping both wires use: roundTrip feeds it dispositionReport
// code/info, the binary path feeds it a decoded error record.
func binErrorOf(code, info string) error {
	switch code {
	case "E_authTokenRequired":
		return &authError{msg: fmt.Sprintf("uddi: %s: %s", code, info), kind: service.ErrUnauthenticated}
	case "E_userMismatch":
		return &authError{msg: fmt.Sprintf("uddi: %s: %s", code, info), kind: service.ErrForbidden}
	case "E_notLeader":
		return &notLeaderError{msg: fmt.Sprintf("uddi: %s: %s", code, info), leader: leaderHintIn(info)}
	case "E_staleEpoch":
		return fmt.Errorf("uddi: %s: %s: %w", code, info, ErrStaleEpoch)
	}
	return fmt.Errorf("uddi: %s: %s", code, info)
}

// decodeBinReply validates a binary response, handles the error record,
// and returns a reader positioned at the payload of the expected record.
func decodeBinReply(data []byte, want byte) (*walReader, error) {
	op, r, err := binReaderFor(data)
	if err != nil {
		return nil, err
	}
	if op == binUDDIError {
		code := r.str()
		info := r.str()
		if r.err != nil {
			return nil, r.err
		}
		return nil, binErrorOf(code, info)
	}
	if op != want {
		return nil, fmt.Errorf("uddi: binary response record %q, want %q", op, want)
	}
	return r, nil
}

func decodeBinKeys(data []byte) ([]string, error) {
	r, err := decodeBinReply(data, binUDDIKeys)
	if err != nil {
		return nil, err
	}
	n := int(r.uvarint())
	if r.err != nil {
		return nil, r.err
	}
	if n > maxWALFrame {
		return nil, fmt.Errorf("uddi: key count out of range")
	}
	keys := make([]string, 0, n)
	for i := 0; i < n; i++ {
		keys = append(keys, r.str())
	}
	return keys, r.err
}

func decodeBinEntries(data []byte) ([]Entry, uint64, error) {
	r, err := decodeBinReply(data, binUDDIEntries)
	if err != nil {
		return nil, 0, err
	}
	seq := r.uvarint()
	n := int(r.uvarint())
	if r.err != nil {
		return nil, 0, r.err
	}
	if n > maxWALFrame {
		return nil, 0, fmt.Errorf("uddi: entry count out of range")
	}
	var entries []Entry
	for i := 0; i < n; i++ {
		entries = append(entries, decodeBinEntry(r))
	}
	return entries, seq, r.err
}

func decodeBinReplStatus(data []byte) (ReplStatus, error) {
	r, err := decodeBinReply(data, binUDDIReplStatusR)
	if err != nil {
		return ReplStatus{}, err
	}
	var st ReplStatus
	st.Seq = r.uvarint()
	st.Epoch = r.uvarint()
	st.Leader = r.str()
	st.Role = r.str()
	st.ReplicaOf = r.str()
	return st, r.err
}

func decodeBinReplState(data []byte) (ReplState, error) {
	r, err := decodeBinReply(data, binUDDIReplState)
	if err != nil {
		return ReplState{}, err
	}
	var st ReplState
	st.Seq = r.uvarint()
	st.Epoch = r.uvarint()
	st.Leader = r.str()
	n := int(r.uvarint())
	if r.err != nil {
		return ReplState{}, r.err
	}
	if n > maxWALFrame {
		return ReplState{}, fmt.Errorf("uddi: state entry count out of range")
	}
	for i := 0; i < n; i++ {
		expMS := r.uvarint()
		e := decodeBinEntry(r)
		if r.err != nil {
			return ReplState{}, r.err
		}
		st.Entries = append(st.Entries, e)
		st.Deadlines = append(st.Deadlines, time.UnixMilli(int64(expMS)))
	}
	return st, nil
}

func decodeBinReplChanges(data []byte) (ReplChanges, error) {
	r, err := decodeBinReply(data, binUDDIReplChange)
	if err != nil {
		return ReplChanges{}, err
	}
	var rc ReplChanges
	rc.Next = r.uvarint()
	if r.err == nil {
		if r.off >= len(r.b) {
			r.err = fmt.Errorf("uddi: truncated repl change list")
		} else {
			rc.Resync = r.b[r.off] != 0
			r.off++
		}
	}
	rc.Epoch = r.uvarint()
	rc.Leader = r.str()
	n := int(r.uvarint())
	if r.err != nil {
		return ReplChanges{}, r.err
	}
	if n > maxWALFrame {
		return ReplChanges{}, fmt.Errorf("uddi: repl change count out of range")
	}
	for i := 0; i < n; i++ {
		seq := r.uvarint()
		if r.err != nil || r.off >= len(r.b) {
			return ReplChanges{}, fmt.Errorf("uddi: truncated repl change record")
		}
		op := walOpChange(r.b[r.off])
		r.off++
		expMS := r.uvarint()
		e := decodeBinEntry(r)
		if r.err != nil {
			return ReplChanges{}, r.err
		}
		c := Change{Seq: seq, Op: op, Entry: e}
		if expMS != 0 {
			c.Expires = time.UnixMilli(int64(expMS))
		}
		rc.Changes = append(rc.Changes, c)
	}
	return rc, nil
}

func decodeBinChanges(data []byte) (changes []Change, next, epoch uint64, resync bool, err error) {
	r, err := decodeBinReply(data, binUDDIChanges)
	if err != nil {
		return nil, 0, 0, false, err
	}
	next = r.uvarint()
	if r.err == nil {
		if r.off >= len(r.b) {
			r.err = fmt.Errorf("uddi: truncated change list")
		} else {
			resync = r.b[r.off] != 0
			r.off++
		}
	}
	epoch = r.uvarint()
	n := int(r.uvarint())
	if r.err != nil {
		return nil, 0, 0, false, r.err
	}
	if n > maxWALFrame {
		return nil, 0, 0, false, fmt.Errorf("uddi: change count out of range")
	}
	for i := 0; i < n; i++ {
		seq := r.uvarint()
		if r.err != nil || r.off >= len(r.b) {
			return nil, 0, 0, false, fmt.Errorf("uddi: truncated change record")
		}
		op := walOpChange(r.b[r.off])
		r.off++
		e := decodeBinEntry(r)
		if r.err != nil {
			return nil, 0, 0, false, r.err
		}
		changes = append(changes, Change{Seq: seq, Op: op, Entry: e})
	}
	return changes, next, epoch, resync, nil
}

// --- server face ---------------------------------------------------------

// BinOptions configures a registry's binary-native face.
type BinOptions struct {
	// OwnHome, when non-empty, makes the face private to that home —
	// the binary twin of the identity middleware's ownOnly policy on
	// /uddi. Foreign callers get E_userMismatch, decoding to
	// service.ErrForbidden exactly like the HTTP face's refusal.
	OwnHome string
	// ReadOnly restricts the face to the inquiry operations, as the
	// /peer XML face is: publication records get E_operatorMismatch.
	ReadOnly bool
	// ViewFor, when set, chooses the caller's entry view (export policy
	// on a peering face). ok=false refuses service entirely — the face
	// exists but is not mounted yet.
	ViewFor func(caller string) (View, bool)
	// Fallback serves anything that is not a binary-native record —
	// normally identity.BinFace wrapping the XML HTTP handler, keeping
	// tunneled XML working on the same path.
	Fallback transport.BinHandler
}

// binError renders a protocol-level refusal in the binary encoding with
// the HTTP status its XML twin would carry.
func binError(status int, code, info string) *transport.BinResponse {
	return &transport.BinResponse{Status: status, ContentType: BinContentType,
		Body: encodeBinError(code, info)}
}

// BinHandler returns the registry's binary-native face: UDDI operations
// as compact WAL-style records, dispatched straight onto the store with
// no XML in between. Requests with any other content type go to
// opts.Fallback untouched, so one path serves both encodings.
func (s *Server) BinHandler(opts BinOptions) transport.BinHandler {
	return transport.BinHandlerFunc(func(ctx context.Context, caller string, req *transport.BinRequest) *transport.BinResponse {
		if req.ContentType != BinContentType {
			if opts.Fallback != nil {
				return opts.Fallback.ServeBin(ctx, caller, req)
			}
			return binError(http.StatusUnsupportedMediaType, "E_unsupported", "binary registry face: unknown content type "+req.ContentType)
		}
		if opts.OwnHome != "" && caller != opts.OwnHome {
			return binError(http.StatusForbidden, "E_userMismatch",
				"identity: this face is private to home "+opts.OwnHome+": "+service.ErrForbidden.Error())
		}
		var view View
		if opts.ViewFor != nil {
			v, ok := opts.ViewFor(caller)
			if !ok {
				return binError(http.StatusNotFound, "E_unsupported", "peering not enabled on this repository")
			}
			view = v
		}
		op, r, err := binReaderFor(req.Body)
		if err != nil {
			return binError(http.StatusBadRequest, "E_fatalError", err.Error())
		}
		if op == binUDDISaveAll || op == binUDDIDelete {
			if opts.ReadOnly {
				return binError(http.StatusForbidden, "E_operatorMismatch", "read-only endpoint")
			}
			if rs := s.replica.Load(); rs != nil {
				return binError(http.StatusMisdirectedRequest, "E_notLeader", notLeaderInfo(rs.leader))
			}
		}
		if op == binUDDIReplSync || op == binUDDIReplWatch || op == binUDDIReplStatus {
			// The replication records serve full entries with their lease
			// deadlines; they belong to the private face only, never behind
			// a peer view or a read-only mount.
			if opts.ReadOnly || opts.ViewFor != nil {
				return binError(http.StatusForbidden, "E_unsupported",
					"replication is private to the repository face")
			}
		}
		switch op {
		case binUDDISaveAll:
			ttl := time.Duration(r.uvarint()) * time.Millisecond
			n := int(r.uvarint())
			if r.err != nil || n <= 0 || n > maxWALFrame {
				return binError(http.StatusBadRequest, "E_fatalError", "bad save record")
			}
			entries := make([]Entry, 0, n)
			for i := 0; i < n; i++ {
				entries = append(entries, decodeBinEntry(r))
			}
			if r.err != nil {
				return binError(http.StatusBadRequest, "E_fatalError", r.err.Error())
			}
			keys := s.SaveAll(entries, ttl)
			return &transport.BinResponse{Status: http.StatusOK, ContentType: BinContentType,
				Body: encodeBinKeys(keys)}
		case binUDDIDelete:
			key := r.str()
			if r.err != nil || key == "" {
				return binError(http.StatusBadRequest, "E_invalidKeyPassed", "delete without serviceKey")
			}
			s.Delete(key)
			return &transport.BinResponse{Status: http.StatusOK, ContentType: BinContentType,
				Body: encodeBinKeys(nil)}
		case binUDDIFind:
			q := Query{Name: r.str(), TModel: r.str()}
			n := int(r.uvarint())
			if r.err != nil || n > maxWALFrame {
				return binError(http.StatusBadRequest, "E_fatalError", "bad find record")
			}
			if n > 0 {
				q.Categories = make(map[string]string, n)
				for i := 0; i < n; i++ {
					k := r.str()
					q.Categories[k] = r.str()
				}
			}
			if r.err != nil {
				return binError(http.StatusBadRequest, "E_fatalError", r.err.Error())
			}
			// Journal position read before the scan, as in handleFind: the
			// fence clients use against concurrent mutations.
			seq := s.Seq()
			entries := s.Find(q)
			if view != nil {
				kept := entries[:0]
				for _, e := range entries {
					if ve, ok := view(e); ok {
						kept = append(kept, ve)
					}
				}
				entries = kept
			}
			return &transport.BinResponse{Status: http.StatusOK, ContentType: BinContentType,
				Body: encodeBinEntries(seq, entries)}
		case binUDDIGet:
			key := r.str()
			if r.err != nil {
				return binError(http.StatusBadRequest, "E_fatalError", r.err.Error())
			}
			entry, ok := s.Get(key)
			if ok && view != nil {
				entry, ok = view(entry)
			}
			var entries []Entry
			if ok {
				entries = append(entries, entry)
			}
			return &transport.BinResponse{Status: http.StatusOK, ContentType: BinContentType,
				Body: encodeBinEntries(0, entries)}
		case binUDDIWatch:
			since := r.uvarint()
			timeout := time.Duration(r.uvarint()) * time.Millisecond
			sinceEpoch := r.uvarint()
			if r.err != nil {
				return binError(http.StatusBadRequest, "E_fatalError", r.err.Error())
			}
			if timeout > maxWatchTimeout {
				timeout = maxWatchTimeout
			}
			changes, next, nextEpoch, resync, err := s.WatchChangesEpoch(ctx, since, sinceEpoch, timeout, false)
			if err != nil {
				// Client went away mid-poll; nothing useful to write.
				return binError(http.StatusRequestTimeout, "E_fatalError", err.Error())
			}
			if view != nil {
				// A filtered-to-empty round reads as an empty poll, exactly
				// like the XML face: the cursor advances past hidden changes.
				kept := changes[:0]
				for _, c := range changes {
					ve, ok := view(c.Entry)
					if !ok {
						continue
					}
					c.Entry = ve
					kept = append(kept, c)
				}
				changes = kept
			}
			return &transport.BinResponse{Status: http.StatusOK, ContentType: BinContentType,
				Body: encodeBinChanges(changes, next, nextEpoch, resync)}
		case binUDDIReplStatus:
			return &transport.BinResponse{Status: http.StatusOK, ContentType: BinContentType,
				Body: encodeBinReplStatus(s.replStatusNow())}
		case binUDDIReplSync:
			entries, deadlines, seq, epoch, leader := s.ReplState()
			return &transport.BinResponse{Status: http.StatusOK, ContentType: BinContentType,
				Body: encodeBinReplState(ReplState{Seq: seq, Epoch: epoch, Leader: leader,
					Entries: entries, Deadlines: deadlines})}
		case binUDDIReplWatch:
			since := r.uvarint()
			timeout := time.Duration(r.uvarint()) * time.Millisecond
			reqEpoch := r.uvarint()
			if r.err != nil {
				return binError(http.StatusBadRequest, "E_fatalError", r.err.Error())
			}
			if info, ok := s.replWatchFence(reqEpoch); !ok {
				return binError(http.StatusConflict, "E_staleEpoch", info)
			}
			if timeout > maxWatchTimeout {
				timeout = maxWatchTimeout
			}
			changes, next, _, resync, err := s.WatchChangesEpoch(ctx, since, reqEpoch, timeout, true)
			if err != nil {
				return binError(http.StatusRequestTimeout, "E_fatalError", err.Error())
			}
			epoch, leader := s.Epoch()
			return &transport.BinResponse{Status: http.StatusOK, ContentType: BinContentType,
				Body: encodeBinReplChanges(ReplChanges{Changes: changes, Next: next,
					Resync: resync, Epoch: epoch, Leader: leader})}
		}
		return binError(http.StatusBadRequest, "E_unsupported", fmt.Sprintf("unknown binary request %q", op))
	})
}
