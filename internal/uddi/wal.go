// wal.go gives the registry a disk life: a CRC-framed write-ahead log
// riding the change journal (every mutation is framed and written to the
// active WAL segment before the caller's save/delete returns), periodic
// atomic snapshots, and boot-time recovery that replays snapshot + WAL
// tail so sequence numbers stay monotone across restarts. Watchers and
// peer replication cursors therefore resume from `since` after a crash
// instead of being forced into a full-snapshot resync.
//
// On-disk layout inside DurabilityOptions.Dir:
//
//	wal-<seq>.log   WAL segments; <seq> is 16 hex digits naming the first
//	                sequence number the segment may contain. Each segment
//	                opens with walMagic and then frames:
//	                  u32le payload length | u32le CRC-32 (IEEE) | payload
//	                A payload is: version byte, op byte ('a','u','d','e',
//	                or 'S' for the clean-shutdown marker), uvarint seq,
//	                uvarint expiry (unix milli; adds/updates only), then
//	                the entry fields as length-prefixed strings and the
//	                sorted category pairs.
//	snap-<seq>.snap Snapshots; <seq> names the journal position the
//	                snapshot covers. snapMagic then one frame whose
//	                payload is version, uvarint seq, uvarint count, and
//	                count (expiry, entry) groups. Written to a .tmp file,
//	                fsynced, then renamed; the two newest are kept so a
//	                corrupt snapshot falls back to its predecessor.
//
// Records are written straight to the file descriptor (no user-space
// buffering), so a kill -9 loses nothing the registry acknowledged — only
// power loss can tear a frame, and a torn tail truncates at the last
// valid frame with a logged + audited registry.recovered event.
package uddi

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"log"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"time"

	"homeconnect/internal/core/audit"
)

const (
	walMagic  = "homeconnect-wal-v1\n"
	snapMagic = "homeconnect-snap-v1\n"

	recVersion = 1

	opWALAdd    = 'a'
	opWALUpdate = 'u'
	opWALDelete = 'd'
	opWALExpire = 'e'
	// opWALMarker is the clean-shutdown marker: Shutdown writes it as the
	// final frame, recovery truncates it back off. A crash never writes
	// one, so its absence is what distinguishes a dirty boot.
	opWALMarker = 'S'
	// opWALEpoch records a replication epoch change (promotion, or a
	// replica adopting a new leader): uvarint epoch and the leader name
	// follow the journal position. Recovery replays it so a restarted node
	// remembers which leader regime it last acknowledged — the fencing
	// state that stops a stale leader from feeding anyone (see replica.go).
	opWALEpoch = 'E'

	// defaultSnapshotEvery is how many WAL records accumulate between
	// snapshots when the owner doesn't say.
	defaultSnapshotEvery = 1024

	// maxWALFrame bounds a frame read during recovery so a corrupt length
	// word cannot ask for gigabytes.
	maxWALFrame = 4 << 20

	// snapshotsKept is how many snapshot generations stay on disk; the
	// older one is the fallback when the newest fails its CRC.
	snapshotsKept = 2
)

// FsyncPolicy says when the WAL is flushed to stable storage.
type FsyncPolicy string

const (
	// FsyncAlways syncs after every record: no acknowledged write is ever
	// lost, at the price of a disk flush per mutation.
	FsyncAlways FsyncPolicy = "always"
	// FsyncInterval syncs on the janitor/Sweep cadence (~100ms for a
	// background registry): a power cut loses at most one interval of
	// acknowledged writes; a plain process crash loses nothing because
	// records hit the file descriptor before acknowledgment.
	FsyncInterval FsyncPolicy = "interval"
	// FsyncOff never syncs explicitly; the OS writes back on its own
	// schedule. Fastest, and still crash-safe against process death.
	FsyncOff FsyncPolicy = "off"
)

// DurabilityOptions configures a durable registry.
type DurabilityOptions struct {
	// Dir is the data directory (created if missing). Required.
	Dir string
	// Fsync is the flush policy; empty means FsyncInterval.
	Fsync FsyncPolicy
	// SnapshotEvery is the number of WAL records between snapshots;
	// 0 means defaultSnapshotEvery, negative disables snapshots.
	SnapshotEvery int
	// Clock, when set, replaces the registry clock before recovery runs,
	// so persisted expiry deadlines are judged against the owner's
	// (possibly virtual) time. The deterministic simulation uses this.
	Clock func() time.Time
}

// RecoveryStats describes what boot recovery found and did.
type RecoveryStats struct {
	// CleanShutdown is true when the WAL ended with the shutdown marker:
	// the previous process exited through Shutdown, so no tail repair was
	// needed.
	CleanShutdown bool `json:"clean_shutdown"`
	// SnapshotSeq is the journal position of the snapshot that seeded the
	// store (0 when booting from WAL alone).
	SnapshotSeq uint64 `json:"snapshot_seq"`
	// SnapshotFallback is true when the newest snapshot failed its CRC
	// and an older generation was used instead.
	SnapshotFallback bool `json:"snapshot_fallback,omitempty"`
	// Entries is the number of registrations restored.
	Entries int `json:"entries"`
	// LapsedAtBoot counts restored registrations whose TTL deadline had
	// already passed; the first sweep expires and journals them.
	LapsedAtBoot int `json:"lapsed_at_boot,omitempty"`
	// Replayed is the number of WAL records applied over the snapshot.
	Replayed int `json:"replayed"`
	// TornTail is true when the WAL ended in a torn or corrupt frame and
	// was truncated back to the last valid one.
	TornTail bool `json:"torn_tail,omitempty"`
	// DroppedBytes is how much was truncated away repairing the tail.
	DroppedBytes int64 `json:"dropped_bytes,omitempty"`
	// Seq is the journal sequence number recovery ended on — the floor
	// for every sequence number this process will ever assign.
	Seq uint64 `json:"seq"`
	// DurationMS is wall-clock recovery time.
	DurationMS float64 `json:"duration_ms"`
}

// DurabilityStats is the registry's durability face, served in /health.
type DurabilityStats struct {
	Enabled       bool           `json:"enabled"`
	Dir           string         `json:"dir,omitempty"`
	Fsync         string         `json:"fsync,omitempty"`
	SnapshotEvery int            `json:"snapshot_every,omitempty"`
	Appends       uint64         `json:"appends"`
	Fsyncs        uint64         `json:"fsyncs"`
	Snapshots     uint64         `json:"snapshots"`
	SnapshotSeq   uint64         `json:"snapshot_seq"`
	Segments      int            `json:"segments"`
	WALBytes      int64          `json:"wal_bytes"`
	LastError     string         `json:"last_error,omitempty"`
	Recovery      *RecoveryStats `json:"recovery,omitempty"`
}

// wal is the registry's disk state. Every field is guarded by the
// owning Server's jmu except during single-threaded recovery.
type wal struct {
	dir       string
	policy    FsyncPolicy
	snapEvery int

	f       *os.File // active segment append handle; nil once closed
	segs    []walFile
	snaps   []walFile
	off     int64 // bytes written to the active segment
	scratch []byte

	snapSeq  uint64 // journal position of the newest durable snapshot
	haveSnap bool

	sinceSnap int  // records appended since snapSeq
	snapBusy  bool // a snapshot is being written outside jmu
	dirty     bool // unsynced records present

	appends   uint64
	fsyncs    uint64
	snapshots uint64
	lastErr   string

	recovery RecoveryStats
}

// walFile is one on-disk segment or snapshot, named by sequence number.
type walFile struct {
	seq  uint64
	path string
}

// NewDurableServer returns a registry persisted under opts.Dir, recovered
// from any prior state there, with the expiry janitor running. Call
// Shutdown for a clean stop (Close alone is safe but leaves the WAL
// unmarked, so the next boot takes the recovery path).
func NewDurableServer(opts DurabilityOptions) (*Server, error) {
	s, err := NewManualDurableServer(opts)
	if err != nil {
		return nil, err
	}
	go s.janitor()
	return s, nil
}

// NewManualDurableServer is NewDurableServer without the background
// janitor: the owner drives expiry, fsync-interval flushing and snapshot
// scheduling by calling Sweep. The deterministic simulation uses this.
func NewManualDurableServer(opts DurabilityOptions) (*Server, error) {
	s := NewManualServer()
	if err := s.openDurable(opts); err != nil {
		return nil, err
	}
	return s, nil
}

func (s *Server) openDurable(opts DurabilityOptions) error {
	if opts.Dir == "" {
		return fmt.Errorf("uddi: durability requires a data directory")
	}
	switch opts.Fsync {
	case "":
		opts.Fsync = FsyncInterval
	case FsyncAlways, FsyncInterval, FsyncOff:
	default:
		return fmt.Errorf("uddi: unknown fsync policy %q", opts.Fsync)
	}
	if opts.SnapshotEvery == 0 {
		opts.SnapshotEvery = defaultSnapshotEvery
	}
	if opts.Clock != nil {
		s.SetClock(opts.Clock)
	}
	if err := os.MkdirAll(opts.Dir, 0o755); err != nil {
		return err
	}
	w := &wal{
		dir:       opts.Dir,
		policy:    opts.Fsync,
		snapEvery: opts.SnapshotEvery,
		scratch:   make([]byte, 0, 512),
	}
	start := time.Now()
	if err := s.recover(w); err != nil {
		return err
	}
	w.recovery.DurationMS = float64(time.Since(start).Microseconds()) / 1000
	w.recovery.Seq = s.seq
	w.sinceSnap = int(s.seq - w.snapSeq)
	s.wal = w
	if !w.recovery.CleanShutdown && (w.recovery.Entries > 0 || w.recovery.Replayed > 0 || w.recovery.TornTail) {
		// Unclean boot that restored state: log it, and queue the audit
		// event for whenever a recorder is installed (recovery runs before
		// the federation wires the audit plane up).
		msg := fmt.Sprintf("recovered %d entries to seq %d after unclean shutdown (snapshot %d + %d replayed)",
			w.recovery.Entries, s.seq, w.snapSeq, w.recovery.Replayed)
		if w.recovery.TornTail {
			msg += fmt.Sprintf("; truncated %d bytes of torn WAL tail", w.recovery.DroppedBytes)
		}
		log.Printf("uddi: %s", msg)
		s.recoveredMsg = msg
		s.recoveredPending.Store(true)
	}
	return nil
}

// recover loads the newest valid snapshot, replays the WAL tail into the
// shards and the in-memory journal ring, repairs a torn tail, and leaves
// the active segment open for appends. Runs single-threaded before the
// server is shared, so it mutates shards without locks.
func (s *Server) recover(w *wal) error {
	var err error
	w.snaps, w.segs, err = scanWALDir(w.dir)
	if err != nil {
		return err
	}

	// Newest snapshot first; a corrupt one falls back to its predecessor.
	for i := len(w.snaps) - 1; i >= 0; i-- {
		entries, deadlines, seq, epoch, leader, lerr := loadSnapshot(w.snaps[i].path)
		if lerr != nil {
			log.Printf("uddi: snapshot %s unreadable (%v); falling back", filepath.Base(w.snaps[i].path), lerr)
			w.recovery.SnapshotFallback = true
			continue
		}
		for j, e := range entries {
			sh := s.shardFor(e.Key)
			sh.entries[e.Key] = &record{entry: e, expires: deadlines[j]}
		}
		s.epoch, s.epochLeader = epoch, leader
		w.snapSeq, w.haveSnap = seq, true
		break
	}
	s.seq = w.snapSeq
	w.recovery.SnapshotSeq = w.snapSeq

	// Replay segments in order. Any unreadable frame truncates the log
	// there: the tail (and any later segment) is unacknowledgeable
	// history we can no longer trust.
	truncated := false
	for i := 0; i < len(w.segs) && !truncated; i++ {
		sg := w.segs[i]
		data, rerr := os.ReadFile(sg.path)
		if rerr != nil {
			return rerr
		}
		off := 0
		if !strings.HasPrefix(string(data[:min(len(data), len(walMagic))]), walMagic) {
			// Unrecognized segment: treat the whole file as a torn tail.
			truncated = s.truncateWAL(w, i, sg.path, 0, int64(len(data)))
			break
		}
		off = len(walMagic)
		cleanAt := int64(-1)
		for off < len(data) {
			payload, next, ferr := readWALFrame(data, off)
			if ferr != nil {
				truncated = s.truncateWAL(w, i, sg.path, int64(off), int64(len(data)-off))
				break
			}
			rec, derr := decodeWALRecord(payload)
			if derr != nil {
				truncated = s.truncateWAL(w, i, sg.path, int64(off), int64(len(data)-off))
				break
			}
			if rec.op == opWALMarker {
				if next == len(data) && i == len(w.segs)-1 {
					cleanAt = int64(off)
				}
				off = next
				continue
			}
			if rec.op == opWALEpoch {
				// Epoch frames replay regardless of the snapshot floor: the
				// last one wins, carrying the leader regime forward. A frame
				// that bumps the epoch also restores the regime boundary —
				// the journal position the frame was written at — so watch
				// cursors from the older regime survive this node's restart
				// (see ChangesEpoch).
				if rec.epoch > s.epoch {
					s.epochMarks = append(s.epochMarks, epochMark{epoch: rec.epoch, seq: rec.seq})
					if len(s.epochMarks) > maxEpochMarks {
						s.epochMarks = s.epochMarks[len(s.epochMarks)-maxEpochMarks:]
					}
				}
				if rec.epoch >= s.epoch {
					s.epoch, s.epochLeader = rec.epoch, rec.leader
				}
				off = next
				continue
			}
			if rec.seq > w.snapSeq {
				s.applyRecovered(rec)
				w.recovery.Replayed++
			}
			off = next
		}
		if cleanAt >= 0 {
			// Clean shutdown: drop the marker so appends resume after the
			// last real frame.
			if terr := os.Truncate(sg.path, cleanAt); terr != nil {
				return terr
			}
			w.recovery.CleanShutdown = true
		}
	}

	// Count what came back, and what lapsed while we were down — the
	// first sweep expires and journals those.
	now := s.now()
	for i := range s.shards {
		for _, rec := range s.shards[i].entries {
			w.recovery.Entries++
			if now.After(rec.expires) {
				w.recovery.LapsedAtBoot++
			}
		}
	}

	// Open (or create) the active segment for appends.
	if len(w.segs) == 0 {
		if err := w.newSegment(s.seq + 1); err != nil {
			return err
		}
	} else {
		last := w.segs[len(w.segs)-1]
		f, oerr := os.OpenFile(last.path, os.O_WRONLY|os.O_APPEND, 0o644)
		if oerr != nil {
			return oerr
		}
		st, serr := f.Stat()
		if serr != nil {
			f.Close()
			return serr
		}
		w.f, w.off = f, st.Size()
	}
	return nil
}

// truncateWAL repairs a torn tail found at offset off of segment i:
// truncate that segment there and delete every later segment. Returns
// true so the replay loop stops.
func (s *Server) truncateWAL(w *wal, i int, path string, off, dropped int64) bool {
	w.recovery.TornTail = true
	w.recovery.DroppedBytes += dropped
	if err := os.Truncate(path, off); err != nil {
		log.Printf("uddi: truncating torn WAL tail %s: %v", filepath.Base(path), err)
	}
	for _, later := range w.segs[i+1:] {
		if st, err := os.Stat(later.path); err == nil {
			w.recovery.DroppedBytes += st.Size()
		}
		if err := os.Remove(later.path); err != nil {
			log.Printf("uddi: removing WAL segment past torn tail: %v", err)
		}
	}
	w.segs = w.segs[:i+1]
	if off == 0 && i == 0 {
		// Whole first segment unreadable: nothing of it survives; recreate
		// it below via newSegment when no usable segment remains.
		os.Remove(path)
		w.segs = w.segs[:0]
	}
	return true
}

// applyRecovered applies one replayed WAL record to the shards and the
// in-memory journal ring, advancing the sequence floor. Recovery-only:
// runs before the server is shared, so no locks.
func (s *Server) applyRecovered(rec walRecord) {
	sh := s.shardFor(rec.entry.Key)
	switch rec.op {
	case opWALAdd, opWALUpdate:
		sh.entries[rec.entry.Key] = &record{entry: rec.entry, expires: rec.expires}
	case opWALDelete, opWALExpire:
		delete(sh.entries, rec.entry.Key)
	}
	s.seq = rec.seq
	c := Change{Seq: rec.seq, Op: walOpChange(rec.op), Entry: rec.entry}
	if rec.op == opWALDelete || rec.op == opWALExpire {
		c.Entry = Entry{Key: rec.entry.Key, Name: rec.entry.Name}
	}
	// Refilling the ring is what lets Changes(since) cover the span back
	// to the snapshot: watchers and peer cursors inside that window
	// resume with no resync after a restart.
	s.journal = append(s.journal, c)
	if len(s.journal) > s.jcap {
		s.journal = s.journal[len(s.journal)-s.jcap:]
	}
}

// walAppend frames and writes one mutation to the active segment. Called
// under jmu, immediately after the in-memory journal append, so WAL order
// is journal order. The scratch buffer is reused: with fsync off this
// path adds no allocations over the in-memory append.
func (s *Server) walAppend(op ChangeOp, e Entry, expires time.Time) {
	w := s.wal
	if w == nil || w.f == nil {
		return
	}
	b := append(w.scratch[:0], 0, 0, 0, 0, 0, 0, 0, 0)
	b = appendWALRecord(b, changeOpWAL(op), s.seq, e, expires)
	w.scratch = b[:0]
	payload := b[8:]
	binary.LittleEndian.PutUint32(b[0:4], uint32(len(payload)))
	binary.LittleEndian.PutUint32(b[4:8], crc32.ChecksumIEEE(payload))
	n, err := w.f.Write(b)
	w.off += int64(n)
	if err != nil {
		w.lastErr = "append: " + err.Error()
		return
	}
	w.appends++
	w.sinceSnap++
	w.dirty = true
	if w.policy == FsyncAlways {
		if err := w.f.Sync(); err != nil {
			w.lastErr = "fsync: " + err.Error()
		} else {
			w.fsyncs++
			w.dirty = false
		}
	}
}

// walMaintain runs the periodic durability work — interval fsync and
// snapshot scheduling — on the Sweep/janitor cadence.
func (s *Server) walMaintain() {
	s.jmu.Lock()
	w := s.wal
	var snap bool
	if w != nil && w.f != nil {
		if w.policy == FsyncInterval && w.dirty {
			if err := w.f.Sync(); err != nil {
				w.lastErr = "fsync: " + err.Error()
			} else {
				w.fsyncs++
				w.dirty = false
			}
		}
		snap = w.snapEvery > 0 && w.sinceSnap >= w.snapEvery && !w.snapBusy
		if snap {
			w.snapBusy = true
		}
	}
	s.jmu.Unlock()
	if snap {
		if err := s.snapshotNow(); err != nil {
			log.Printf("uddi: snapshot: %v", err)
		}
	}
}

// Snapshot forces a snapshot now (tests and operators; the steady-state
// trigger is SnapshotEvery records via Sweep/the janitor).
func (s *Server) Snapshot() error {
	s.jmu.Lock()
	if s.wal == nil || s.wal.f == nil || s.wal.snapBusy {
		s.jmu.Unlock()
		return nil
	}
	s.wal.snapBusy = true
	s.jmu.Unlock()
	return s.snapshotNow()
}

// snapshotNow scans the shards into a snapshot file, atomically installs
// it, rotates the WAL to a fresh segment and prunes history the previous
// snapshot generation no longer needs. Caller has set snapBusy; the scan
// runs outside jmu (lock order is shard → jmu, never the reverse) so
// mutators keep flowing — the snapshot is fuzzy, and replaying the WAL
// span above its seq over it is idempotent, so recovery converges.
func (s *Server) snapshotNow() error {
	s.jmu.Lock()
	seq := s.seq
	dir := s.wal.dir
	epoch, leader := s.epoch, s.epochLeader
	s.jmu.Unlock()

	var entries []Entry
	var deadlines []time.Time
	for i := range s.shards {
		sh := &s.shards[i]
		sh.mu.RLock()
		for _, rec := range sh.entries {
			entries = append(entries, rec.entry.Clone())
			deadlines = append(deadlines, rec.expires)
		}
		sh.mu.RUnlock()
	}
	sort.Sort(&snapOrder{entries, deadlines})

	path := filepath.Join(dir, fmt.Sprintf("snap-%016x.snap", seq))
	err := writeSnapshot(path, seq, entries, deadlines, epoch, leader)

	s.jmu.Lock()
	defer s.jmu.Unlock()
	w := s.wal
	w.snapBusy = false
	if err != nil {
		w.lastErr = "snapshot: " + err.Error()
		return err
	}
	if w.haveSnap && seq < w.snapSeq {
		// The registry was re-grounded (ApplyReplicatedState reset the WAL)
		// while this snapshot was being written: it describes a history
		// that no longer exists here. Discard it.
		os.Remove(path)
		return nil
	}
	w.snapshots++
	prevSnap, hadPrev := w.snapSeq, w.haveSnap
	w.snapSeq, w.haveSnap = seq, true
	w.snaps = append(w.snaps, walFile{seq: seq, path: path})
	w.sinceSnap = int(s.seq - seq)

	// Rotate: the next segment starts after everything written so far
	// (mutations kept landing in the old segment during the scan).
	if w.f != nil {
		if serr := w.f.Sync(); serr == nil {
			w.fsyncs++
			w.dirty = false
		}
		w.f.Close()
		w.f = nil
		if nerr := w.newSegment(s.seq + 1); nerr != nil {
			w.lastErr = "rotate: " + nerr.Error()
			return nerr
		}
	}

	// Prune: segments whose records all predate the previous snapshot
	// (the fallback still needs the span above *it*), and snapshots past
	// the kept generations.
	if hadPrev {
		for len(w.segs) > 1 && w.segs[1].seq <= prevSnap+1 {
			os.Remove(w.segs[0].path)
			w.segs = w.segs[1:]
		}
	}
	for len(w.snaps) > snapshotsKept {
		os.Remove(w.snaps[0].path)
		w.snaps = w.snaps[1:]
	}
	return nil
}

// newSegment creates and opens a fresh WAL segment whose first record
// will be seq. Called under jmu (or during single-threaded recovery).
func (w *wal) newSegment(seq uint64) error {
	path := filepath.Join(w.dir, fmt.Sprintf("wal-%016x.log", seq))
	f, err := os.OpenFile(path, os.O_WRONLY|os.O_CREATE|os.O_TRUNC, 0o644)
	if err != nil {
		return err
	}
	if _, err := f.WriteString(walMagic); err != nil {
		f.Close()
		return err
	}
	w.f, w.off = f, int64(len(walMagic))
	w.segs = append(w.segs, walFile{seq: seq, path: path})
	return nil
}

// Shutdown writes the clean-shutdown marker, flushes and closes the WAL,
// journals a registry.shutdown audit event, and stops the janitor. The
// next boot sees the marker and skips tail repair.
func (s *Server) Shutdown() error {
	var err error
	closed := false
	s.jmu.Lock()
	w := s.wal
	seq := s.seq
	if w != nil && w.f != nil {
		b := append(w.scratch[:0], 0, 0, 0, 0, 0, 0, 0, 0)
		b = append(b, recVersion, opWALMarker)
		b = binary.AppendUvarint(b, seq)
		payload := b[8:]
		binary.LittleEndian.PutUint32(b[0:4], uint32(len(payload)))
		binary.LittleEndian.PutUint32(b[4:8], crc32.ChecksumIEEE(payload))
		if _, werr := w.f.Write(b); werr != nil && err == nil {
			err = werr
		}
		if serr := w.f.Sync(); serr == nil {
			w.fsyncs++
			w.dirty = false
		} else if err == nil {
			err = serr
		}
		if cerr := w.f.Close(); cerr != nil && err == nil {
			err = cerr
		}
		w.f = nil
		closed = true
	}
	s.jmu.Unlock()
	if closed {
		s.auditEvent(audit.Event{Type: audit.RegistryShutdown,
			Detail: fmt.Sprintf("clean shutdown at seq %d; WAL marked and closed", seq)})
	}
	s.Close()
	return err
}

// CrashClose simulates kill -9 for tests and the fault-injection
// simulation: the WAL file descriptor is closed with no marker and no
// final fsync, exactly the state a killed process leaves behind, then the
// janitor stops. The next open of the same directory takes the recovery
// path.
func (s *Server) CrashClose() {
	s.jmu.Lock()
	if s.wal != nil && s.wal.f != nil {
		s.wal.f.Close()
		s.wal.f = nil
	}
	s.jmu.Unlock()
	s.Close()
}

// Durability reports the registry's persistence state; Enabled is false
// for a purely in-memory registry.
func (s *Server) Durability() DurabilityStats {
	s.jmu.Lock()
	defer s.jmu.Unlock()
	w := s.wal
	if w == nil {
		return DurabilityStats{}
	}
	rec := w.recovery
	return DurabilityStats{
		Enabled:       true,
		Dir:           w.dir,
		Fsync:         string(w.policy),
		SnapshotEvery: w.snapEvery,
		Appends:       w.appends,
		Fsyncs:        w.fsyncs,
		Snapshots:     w.snapshots,
		SnapshotSeq:   w.snapSeq,
		Segments:      len(w.segs),
		WALBytes:      w.off,
		LastError:     w.lastErr,
		Recovery:      &rec,
	}
}

// Recovery returns boot recovery stats (zero value when not durable).
func (s *Server) Recovery() RecoveryStats {
	s.jmu.Lock()
	defer s.jmu.Unlock()
	if s.wal == nil {
		return RecoveryStats{}
	}
	return s.wal.recovery
}

// --- encoding ---

type walRecord struct {
	op      byte
	seq     uint64
	expires time.Time
	entry   Entry
	// epoch and leader are set only for opWALEpoch records.
	epoch  uint64
	leader string
}

func changeOpWAL(op ChangeOp) byte {
	switch op {
	case OpAdd:
		return opWALAdd
	case OpUpdate:
		return opWALUpdate
	case OpDelete:
		return opWALDelete
	default:
		return opWALExpire
	}
}

func walOpChange(op byte) ChangeOp {
	switch op {
	case opWALAdd:
		return OpAdd
	case opWALUpdate:
		return OpUpdate
	case opWALDelete:
		return OpDelete
	default:
		return OpExpire
	}
}

func appendWALString(b []byte, v string) []byte {
	b = binary.AppendUvarint(b, uint64(len(v)))
	return append(b, v...)
}

// appendWALRecord appends the framed payload for one mutation. Category
// pairs are sorted so identical entries encode identically.
func appendWALRecord(b []byte, op byte, seq uint64, e Entry, expires time.Time) []byte {
	b = append(b, recVersion, op)
	b = binary.AppendUvarint(b, seq)
	var expMS uint64
	if !expires.IsZero() {
		expMS = uint64(expires.UnixMilli())
	}
	b = binary.AppendUvarint(b, expMS)
	b = appendWALString(b, e.Key)
	b = appendWALString(b, e.Name)
	b = appendWALString(b, e.Description)
	b = appendWALString(b, e.AccessPoint)
	b = appendWALString(b, e.TModel)
	b = appendWALString(b, e.WSDL)
	b = binary.AppendUvarint(b, uint64(len(e.Categories)))
	if len(e.Categories) > 0 {
		keys := make([]string, 0, len(e.Categories))
		for k := range e.Categories {
			keys = append(keys, k)
		}
		sort.Strings(keys)
		for _, k := range keys {
			b = appendWALString(b, k)
			b = appendWALString(b, e.Categories[k])
		}
	}
	return b
}

// readWALFrame validates the frame at data[off:] and returns its payload
// and the offset just past it.
func readWALFrame(data []byte, off int) (payload []byte, next int, err error) {
	if off+8 > len(data) {
		return nil, 0, fmt.Errorf("uddi: truncated frame header")
	}
	n := int(binary.LittleEndian.Uint32(data[off : off+4]))
	sum := binary.LittleEndian.Uint32(data[off+4 : off+8])
	if n <= 0 || n > maxWALFrame || off+8+n > len(data) {
		return nil, 0, fmt.Errorf("uddi: frame length %d out of range", n)
	}
	payload = data[off+8 : off+8+n]
	if crc32.ChecksumIEEE(payload) != sum {
		return nil, 0, fmt.Errorf("uddi: frame CRC mismatch")
	}
	return payload, off + 8 + n, nil
}

type walReader struct {
	b   []byte
	off int
	err error
}

func (r *walReader) uvarint() uint64 {
	if r.err != nil {
		return 0
	}
	v, n := binary.Uvarint(r.b[r.off:])
	if n <= 0 {
		r.err = fmt.Errorf("uddi: bad uvarint")
		return 0
	}
	r.off += n
	return v
}

func (r *walReader) str() string {
	n := int(r.uvarint())
	if r.err != nil {
		return ""
	}
	if n < 0 || r.off+n > len(r.b) {
		r.err = fmt.Errorf("uddi: string length %d out of range", n)
		return ""
	}
	v := string(r.b[r.off : r.off+n])
	r.off += n
	return v
}

func decodeWALEntry(r *walReader) (Entry, time.Time) {
	expMS := r.uvarint()
	var e Entry
	e.Key = r.str()
	e.Name = r.str()
	e.Description = r.str()
	e.AccessPoint = r.str()
	e.TModel = r.str()
	e.WSDL = r.str()
	ncats := int(r.uvarint())
	if r.err == nil && ncats > 0 {
		if ncats > maxWALFrame {
			r.err = fmt.Errorf("uddi: category count out of range")
			return Entry{}, time.Time{}
		}
		e.Categories = make(map[string]string, ncats)
		for i := 0; i < ncats; i++ {
			k := r.str()
			e.Categories[k] = r.str()
		}
	}
	var exp time.Time
	if expMS != 0 {
		exp = time.UnixMilli(int64(expMS))
	}
	return e, exp
}

func decodeWALRecord(payload []byte) (walRecord, error) {
	if len(payload) < 2 {
		return walRecord{}, fmt.Errorf("uddi: short record")
	}
	if payload[0] != recVersion {
		return walRecord{}, fmt.Errorf("uddi: unknown record version %d", payload[0])
	}
	rec := walRecord{op: payload[1]}
	r := &walReader{b: payload, off: 2}
	rec.seq = r.uvarint()
	if rec.op == opWALMarker {
		return rec, r.err
	}
	if rec.op == opWALEpoch {
		rec.epoch = r.uvarint()
		rec.leader = r.str()
		return rec, r.err
	}
	switch rec.op {
	case opWALAdd, opWALUpdate, opWALDelete, opWALExpire:
	default:
		return walRecord{}, fmt.Errorf("uddi: unknown record op %q", rec.op)
	}
	rec.entry, rec.expires = decodeWALEntry(r)
	return rec, r.err
}

// writeSnapshot writes an atomic snapshot: tmp file, fsync, rename, and
// a best-effort directory sync so the rename itself is durable. The
// replication epoch and leader name ride at the payload tail, after the
// entry groups, so pre-replication snapshots (which simply end at the
// last entry) still load.
func writeSnapshot(path string, seq uint64, entries []Entry, deadlines []time.Time, epoch uint64, leader string) error {
	b := make([]byte, 8, 1024)
	b = append(b, recVersion)
	b = binary.AppendUvarint(b, seq)
	b = binary.AppendUvarint(b, uint64(len(entries)))
	for i, e := range entries {
		var expMS uint64
		if !deadlines[i].IsZero() {
			expMS = uint64(deadlines[i].UnixMilli())
		}
		b = binary.AppendUvarint(b, expMS)
		b = appendWALString(b, e.Key)
		b = appendWALString(b, e.Name)
		b = appendWALString(b, e.Description)
		b = appendWALString(b, e.AccessPoint)
		b = appendWALString(b, e.TModel)
		b = appendWALString(b, e.WSDL)
		b = binary.AppendUvarint(b, uint64(len(e.Categories)))
		keys := make([]string, 0, len(e.Categories))
		for k := range e.Categories {
			keys = append(keys, k)
		}
		sort.Strings(keys)
		for _, k := range keys {
			b = appendWALString(b, k)
			b = appendWALString(b, e.Categories[k])
		}
	}
	b = binary.AppendUvarint(b, epoch)
	b = appendWALString(b, leader)
	payload := b[8:]
	binary.LittleEndian.PutUint32(b[0:4], uint32(len(payload)))
	binary.LittleEndian.PutUint32(b[4:8], crc32.ChecksumIEEE(payload))

	tmp := path + ".tmp"
	f, err := os.OpenFile(tmp, os.O_WRONLY|os.O_CREATE|os.O_TRUNC, 0o644)
	if err != nil {
		return err
	}
	if _, err := f.WriteString(snapMagic); err == nil {
		_, err = f.Write(b)
	}
	if err == nil {
		err = f.Sync()
	}
	if cerr := f.Close(); err == nil {
		err = cerr
	}
	if err != nil {
		os.Remove(tmp)
		return err
	}
	if err := os.Rename(tmp, path); err != nil {
		os.Remove(tmp)
		return err
	}
	if d, derr := os.Open(filepath.Dir(path)); derr == nil {
		d.Sync()
		d.Close()
	}
	return nil
}

// loadSnapshot reads and validates one snapshot file. The epoch/leader
// tail is optional: snapshots written before replication end at the last
// entry group and load with epoch 0.
func loadSnapshot(path string) (entries []Entry, deadlines []time.Time, seq, epoch uint64, leader string, err error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, nil, 0, 0, "", err
	}
	if !strings.HasPrefix(string(data[:min(len(data), len(snapMagic))]), snapMagic) {
		return nil, nil, 0, 0, "", fmt.Errorf("uddi: bad snapshot magic")
	}
	payload, next, err := readWALFrame(data, len(snapMagic))
	if err != nil {
		return nil, nil, 0, 0, "", err
	}
	if next != len(data) {
		return nil, nil, 0, 0, "", fmt.Errorf("uddi: trailing bytes after snapshot frame")
	}
	if payload[0] != recVersion {
		return nil, nil, 0, 0, "", fmt.Errorf("uddi: unknown snapshot version %d", payload[0])
	}
	r := &walReader{b: payload, off: 1}
	seq = r.uvarint()
	count := int(r.uvarint())
	if r.err != nil {
		return nil, nil, 0, 0, "", r.err
	}
	if count < 0 || count > maxWALFrame {
		return nil, nil, 0, 0, "", fmt.Errorf("uddi: snapshot count out of range")
	}
	entries = make([]Entry, 0, count)
	deadlines = make([]time.Time, 0, count)
	for i := 0; i < count; i++ {
		e, exp := decodeWALEntry(r)
		if r.err != nil {
			return nil, nil, 0, 0, "", r.err
		}
		entries = append(entries, e)
		deadlines = append(deadlines, exp)
	}
	if r.off < len(payload) {
		epoch = r.uvarint()
		leader = r.str()
		if r.err != nil {
			return nil, nil, 0, 0, "", r.err
		}
	}
	return entries, deadlines, seq, epoch, leader, nil
}

// scanWALDir lists snapshots and WAL segments by their sequence-number
// names, ascending. Stray .tmp files from an interrupted snapshot are
// removed.
func scanWALDir(dir string) (snaps, segs []walFile, err error) {
	des, err := os.ReadDir(dir)
	if err != nil {
		return nil, nil, err
	}
	for _, de := range des {
		name := de.Name()
		switch {
		case strings.HasSuffix(name, ".tmp"):
			os.Remove(filepath.Join(dir, name))
		case strings.HasPrefix(name, "wal-") && strings.HasSuffix(name, ".log"):
			var seq uint64
			if _, err := fmt.Sscanf(name, "wal-%016x.log", &seq); err == nil {
				segs = append(segs, walFile{seq: seq, path: filepath.Join(dir, name)})
			}
		case strings.HasPrefix(name, "snap-") && strings.HasSuffix(name, ".snap"):
			var seq uint64
			if _, err := fmt.Sscanf(name, "snap-%016x.snap", &seq); err == nil {
				snaps = append(snaps, walFile{seq: seq, path: filepath.Join(dir, name)})
			}
		}
	}
	sort.Slice(segs, func(i, j int) bool { return segs[i].seq < segs[j].seq })
	sort.Slice(snaps, func(i, j int) bool { return snaps[i].seq < snaps[j].seq })
	return snaps, segs, nil
}

// snapOrder sorts snapshot entries (and their deadlines, in lockstep) by
// key, for stable snapshot bytes.
type snapOrder struct {
	entries   []Entry
	deadlines []time.Time
}

func (o *snapOrder) Len() int           { return len(o.entries) }
func (o *snapOrder) Less(i, j int) bool { return o.entries[i].Key < o.entries[j].Key }
func (o *snapOrder) Swap(i, j int) {
	o.entries[i], o.entries[j] = o.entries[j], o.entries[i]
	o.deadlines[i], o.deadlines[j] = o.deadlines[j], o.deadlines[i]
}
