// Tests for the view-filtered, read-only registry face peering endpoints
// are built from.
package uddi

import (
	"context"
	"net/http/httptest"
	"strings"
	"testing"
	"time"
)

// viewFixture starts a registry plus a ViewHandler that hides entries
// whose name starts with "secret" and stamps a category on the rest.
func viewFixture(t *testing.T) (*Server, *Client, *Client) {
	t.Helper()
	s := NewServer()
	t.Cleanup(s.Close)
	main := httptest.NewServer(s.Handler())
	t.Cleanup(main.Close)
	view := func(e Entry) (Entry, bool) {
		if strings.HasPrefix(e.Name, "secret") {
			return Entry{}, false
		}
		e = e.Clone()
		if e.Categories == nil {
			e.Categories = make(map[string]string)
		}
		e.Categories["stamp"] = "yes"
		return e, true
	}
	viewed := httptest.NewServer(s.ViewHandler(view))
	t.Cleanup(viewed.Close)
	return s, &Client{URL: main.URL}, &Client{URL: viewed.URL}
}

func TestViewHandlerFindFiltersAndStamps(t *testing.T) {
	_, direct, viewed := viewFixture(t)
	ctx := context.Background()
	for _, name := range []string{"public-1", "secret-1", "public-2"} {
		if _, err := direct.Save(ctx, Entry{Name: name, AccessPoint: "http://h/" + name}, time.Minute); err != nil {
			t.Fatal(err)
		}
	}
	all, err := direct.Find(ctx, Query{})
	if err != nil || len(all) != 3 {
		t.Fatalf("direct find = %d entries, %v", len(all), err)
	}
	got, err := viewed.Find(ctx, Query{})
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 2 {
		t.Fatalf("viewed find = %d entries, want 2: %v", len(got), got)
	}
	for _, e := range got {
		if strings.HasPrefix(e.Name, "secret") {
			t.Errorf("secret entry %s leaked through view", e.Name)
		}
		if e.Categories["stamp"] != "yes" {
			t.Errorf("entry %s missing view stamp", e.Name)
		}
	}
}

func TestViewHandlerGetFilters(t *testing.T) {
	_, direct, viewed := viewFixture(t)
	ctx := context.Background()
	secretKey, err := direct.Save(ctx, Entry{Name: "secret-9"}, time.Minute)
	if err != nil {
		t.Fatal(err)
	}
	pubKey, err := direct.Save(ctx, Entry{Name: "public-9"}, time.Minute)
	if err != nil {
		t.Fatal(err)
	}
	if _, found, err := viewed.Get(ctx, secretKey); err != nil || found {
		t.Errorf("secret entry visible through viewed get (found=%v err=%v)", found, err)
	}
	e, found, err := viewed.Get(ctx, pubKey)
	if err != nil || !found || e.Categories["stamp"] != "yes" {
		t.Errorf("public entry through viewed get = %+v found=%v err=%v", e, found, err)
	}
}

func TestViewHandlerWatchFilters(t *testing.T) {
	_, direct, viewed := viewFixture(t)
	ctx := context.Background()
	if _, err := direct.Save(ctx, Entry{Name: "secret-w"}, time.Minute); err != nil {
		t.Fatal(err)
	}
	if _, err := direct.Save(ctx, Entry{Name: "public-w"}, time.Minute); err != nil {
		t.Fatal(err)
	}
	changes, next, resync, err := viewed.Watch(ctx, 0, 0)
	if err != nil || resync {
		t.Fatalf("watch: changes=%v resync=%v err=%v", changes, resync, err)
	}
	if next == 0 {
		t.Fatal("watch cursor not advanced")
	}
	if len(changes) != 1 || changes[0].Entry.Name != "public-w" {
		t.Fatalf("viewed watch = %v, want only public-w", changes)
	}
	// The cursor still covers the hidden change: resuming from next sees
	// nothing new rather than replaying it.
	changes, _, _, err = viewed.Watch(ctx, next, 0)
	if err != nil || len(changes) != 0 {
		t.Fatalf("resumed watch = %v, %v", changes, err)
	}
}

func TestViewHandlerReadOnly(t *testing.T) {
	s, direct, viewed := viewFixture(t)
	ctx := context.Background()
	if _, err := viewed.Save(ctx, Entry{Name: "writer"}, time.Minute); err == nil {
		t.Error("save through view handler accepted")
	}
	key, err := direct.Save(ctx, Entry{Name: "keeper"}, time.Minute)
	if err != nil {
		t.Fatal(err)
	}
	if err := viewed.Delete(ctx, key); err == nil {
		t.Error("delete through view handler accepted")
	}
	if s.Len() != 1 {
		t.Errorf("registry length = %d after rejected writes, want 1", s.Len())
	}
}

func TestViewHandlerWatchFiltersDeletes(t *testing.T) {
	_, direct, viewed := viewFixture(t)
	ctx := context.Background()
	sk, err := direct.Save(ctx, Entry{Name: "secret-d"}, time.Minute)
	if err != nil {
		t.Fatal(err)
	}
	pk, err := direct.Save(ctx, Entry{Name: "public-d"}, time.Minute)
	if err != nil {
		t.Fatal(err)
	}
	_, next, _, err := viewed.Watch(ctx, 0, 0)
	if err != nil {
		t.Fatal(err)
	}
	if err := direct.Delete(ctx, sk); err != nil {
		t.Fatal(err)
	}
	if err := direct.Delete(ctx, pk); err != nil {
		t.Fatal(err)
	}
	changes, _, _, err := viewed.Watch(ctx, next, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(changes) != 1 || changes[0].Op != OpDelete || changes[0].Entry.Name != "public-d" {
		t.Fatalf("viewed delete stream = %v, want only public-d delete", changes)
	}
}
