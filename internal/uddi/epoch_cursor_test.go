// Epoch-aware watch cursor tests: the contract that lets an importer
// cursor taken from one regime keep working against the next. A replica
// parks cursors ahead of its feed instead of resyncing them; a promoted
// leader replays old-epoch cursors from the regime boundary it recorded;
// the strict replication feed — where idempotent redelivery would paper
// over divergence — resyncs instead; and the boundary marks survive a
// durable restart, because the promotion itself rode the WAL.
package uddi

import (
	"context"
	"errors"
	"fmt"
	"net/http/httptest"
	"testing"
	"time"
)

// TestReplicaHoldsAheadCursor: an importer failing over from a dead
// leader lands on a replica that is one feed interval behind, carrying a
// cursor past the replica's journal. Same-regime, that cursor is simply
// early — the replica parks it until the feed catches up, rather than
// bouncing the importer into a full resync.
func TestReplicaHoldsAheadCursor(t *testing.T) {
	ctx := context.Background()
	s := NewServer()
	defer s.Close()
	s.SetReplicaOf("http://leader/uddi")
	for seq := uint64(1); seq <= 3; seq++ {
		if err := s.ApplyReplicated(feedChange(seq, NewKey())); err != nil {
			t.Fatal(err)
		}
	}

	// Non-blocking probe: cursor 5 on a replica at 3 is held, not resynced.
	changes, next, _, resync := s.ChangesEpoch(5, 0, false)
	if resync || len(changes) != 0 || next != 5 {
		t.Fatalf("ahead cursor on replica: %d changes next %d resync %v, want a hold at 5",
			len(changes), next, resync)
	}

	// A parked watcher wakes when the feed delivers past its cursor.
	done := make(chan error, 1)
	go func() {
		changes, next, resync, err := s.WatchChanges(ctx, 5, 5*time.Second)
		if err != nil {
			done <- err
			return
		}
		if resync {
			done <- errors.New("held watcher was resynced when the feed caught up")
			return
		}
		if len(changes) != 1 || next != 6 {
			done <- fmt.Errorf("held watcher got %d changes next %d, want the 1 change past its cursor", len(changes), next)
			return
		}
		done <- nil
	}()
	time.Sleep(20 * time.Millisecond) // let the watcher park
	for seq := uint64(4); seq <= 6; seq++ {
		if err := s.ApplyReplicated(feedChange(seq, NewKey())); err != nil {
			t.Fatal(err)
		}
	}
	select {
	case err := <-done:
		if err != nil {
			t.Fatal(err)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("held watcher never woke")
	}

	// The same ahead cursor on a LEADER is from a future this node never
	// served: resync.
	s.SetReplicaOf("")
	if _, _, _, resync := s.ChangesEpoch(100, 0, false); !resync {
		t.Fatal("leader served a cursor past its own journal without resync")
	}
}

// TestWatchCursorAcrossPromotion drives the full importer-side story: a
// cursor handed out by the old leader, carried across that leader's death
// and a replica's promotion, keeps working — replayed from the epoch
// boundary, never resynced — on both wire encodings. The strict
// replication feed, asked the same question, answers resync.
func TestWatchCursorAcrossPromotion(t *testing.T) {
	ctx := context.Background()

	// Old regime: leader A at epoch 1 with five acknowledged writes.
	a := NewServer()
	defer a.Close()
	if err := a.SetEpoch(1, "http://a/uddi"); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 5; i++ {
		a.Save(lampEntry(), time.Hour)
	}

	// Replica B mirrored only the first three before A died.
	b := NewServer()
	defer b.Close()
	if err := b.SetEpoch(1, "http://a/uddi"); err != nil {
		t.Fatal(err)
	}
	b.SetReplicaOf("http://a/uddi")
	feed, _, _, _ := a.ChangesEpoch(0, 0, false)
	for _, ch := range feed[:3] {
		if err := b.ApplyReplicated(ch); err != nil {
			t.Fatal(err)
		}
	}

	// The importer's cursor from A: all five changes, epoch 1.
	const importerCursor = 5

	// Before promotion the cursor is merely ahead of B's feed: held.
	if changes, next, _, resync := b.ChangesEpoch(importerCursor, 1, false); resync || len(changes) != 0 || next != importerCursor {
		t.Fatalf("pre-promotion: %d changes next %d resync %v, want a hold", len(changes), next, resync)
	}

	// B promotes at its replicated position 3 and the new regime moves on:
	// seqs 4 and 5 now name different records than A's 4 and 5 did.
	if err := b.SetEpoch(2, "http://b/uddi"); err != nil {
		t.Fatal(err)
	}
	b.SetReplicaOf("")
	newKeys := []string{
		b.Save(lampEntry(), time.Hour),
		b.Save(lampEntry(), time.Hour),
	}

	srv := httptest.NewServer(b.Handler())
	defer srv.Close()
	c := &Client{URL: srv.URL}

	t.Run("xml importer replays from the boundary", func(t *testing.T) {
		changes, next, nextEpoch, resync, err := c.WatchEpoch(ctx, importerCursor, 1, time.Millisecond)
		if err != nil {
			t.Fatal(err)
		}
		if resync {
			t.Fatal("old-epoch cursor was resynced, want boundary replay")
		}
		if nextEpoch != 2 {
			t.Fatalf("nextEpoch = %d, want the new regime's 2", nextEpoch)
		}
		// The boundary was 3, so the replay is exactly the new regime's
		// tail — idempotent redelivery territory for the importer.
		if len(changes) != 2 || next != 5 {
			t.Fatalf("replay = %d changes next %d, want the 2 new-regime changes to 5", len(changes), next)
		}
		for i, ch := range changes {
			if ch.Entry.Key != newKeys[i] {
				t.Fatalf("replayed change %d is %q, want the new regime's %q", i, ch.Entry.Key, newKeys[i])
			}
		}
		// Once re-grounded on (5, epoch 2) the importer watches normally.
		changes, next, nextEpoch, resync, err = c.WatchEpoch(ctx, next, nextEpoch, time.Millisecond)
		if err != nil || resync || len(changes) != 0 || next != 5 || nextEpoch != 2 {
			t.Fatalf("re-grounded watch: %d changes next %d epoch %d resync %v err %v",
				len(changes), next, nextEpoch, resync, err)
		}
	})

	t.Run("binary importer replays identically", func(t *testing.T) {
		resp := binServe(b, BinOptions{}, "home-a", encodeBinWatch(importerCursor, 1, time.Millisecond))
		changes, next, nextEpoch, resync, err := decodeBinChanges(resp.Body)
		if err != nil {
			t.Fatal(err)
		}
		if resync || len(changes) != 2 || next != 5 || nextEpoch != 2 {
			t.Fatalf("binary replay: %d changes next %d epoch %d resync %v",
				len(changes), next, nextEpoch, resync)
		}
	})

	t.Run("strict replication feed resyncs the diverged cursor", func(t *testing.T) {
		// A replica of A's regime at position 5 holds records B's history
		// does not share. Redelivery would be silently skipped as
		// duplicates, so the feed must force a state transfer instead.
		rc, err := c.ReplWatch(ctx, importerCursor, 1, time.Millisecond)
		if err != nil {
			t.Fatal(err)
		}
		if !rc.Resync {
			t.Fatal("strict feed served a diverged old-epoch cursor without resync")
		}
		// A cursor at or before the boundary shares all its history with
		// the new regime: the feed serves it straight through.
		rc, err = c.ReplWatch(ctx, 2, 1, time.Millisecond)
		if err != nil || rc.Resync {
			t.Fatalf("undiverged old-epoch feed: resync %v err %v", rc.Resync, err)
		}
		if len(rc.Changes) != 3 || rc.Next != 5 || rc.Epoch != 2 {
			t.Fatalf("undiverged feed = %d changes next %d epoch %d, want the shared+new tail to 5",
				len(rc.Changes), rc.Next, rc.Epoch)
		}
	})

	t.Run("re-ground clears the boundary marks", func(t *testing.T) {
		// A state transfer breaks journal continuity: after it, no old-
		// epoch cursor can be safely replayed — only resynced.
		r := NewServer()
		defer r.Close()
		st, err := c.ReplSync(ctx)
		if err != nil {
			t.Fatal(err)
		}
		if err := r.ApplyReplicatedState(st.Entries, st.Deadlines, st.Seq, st.Epoch, st.Leader); err != nil {
			t.Fatal(err)
		}
		if _, _, _, resync := r.ChangesEpoch(2, 1, false); !resync {
			t.Fatal("re-grounded server replayed an old-epoch cursor it has no boundary for")
		}
	})
}

// TestEpochMarksSurviveRestart: a promotion is a WAL event, so the
// regime boundary it defines must survive a restart — an importer that
// kept an old-epoch cursor across the promoted leader's reboot still
// gets boundary replay, not a resync.
func TestEpochMarksSurviveRestart(t *testing.T) {
	dir := t.TempDir()
	open := func() *Server {
		// Snapshots disabled: the journal must rebuild from seq 1 so the
		// replay floor does not hide what this test measures.
		s, err := NewManualDurableServer(DurabilityOptions{Dir: dir, Fsync: FsyncAlways, SnapshotEvery: -1})
		if err != nil {
			t.Fatal(err)
		}
		return s
	}
	s := open()
	if err := s.SetEpoch(1, "http://a/uddi"); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		s.Save(lampEntry(), time.Hour)
	}
	// Promotion at seq 3, then the new regime writes two more.
	if err := s.SetEpoch(2, "http://b/uddi"); err != nil {
		t.Fatal(err)
	}
	s.Save(lampEntry(), time.Hour)
	s.Save(lampEntry(), time.Hour)
	s.Close()

	s = open()
	defer s.Close()
	if epoch, leader := s.Epoch(); epoch != 2 || leader != "http://b/uddi" {
		t.Fatalf("recovered regime = %d %q, want 2 http://b/uddi", epoch, leader)
	}
	// An epoch-1 cursor at 5 crossed the recovered boundary at 3: replay
	// the new regime's tail, exactly as before the restart.
	changes, next, nextEpoch, resync := s.ChangesEpoch(5, 1, false)
	if resync {
		t.Fatal("restart lost the epoch boundary: old-epoch cursor resynced")
	}
	if len(changes) != 2 || next != 5 || nextEpoch != 2 {
		t.Fatalf("recovered replay = %d changes next %d epoch %d, want 2 changes to 5 under epoch 2",
			len(changes), next, nextEpoch)
	}
	// The strict feed still refuses it.
	if _, _, _, resync := s.ChangesEpoch(5, 1, true); !resync {
		t.Fatal("strict feed served a diverged cursor after restart")
	}
}
