// Tests for the binary-native registry protocol: entry/record round
// trips over XML-hostile strings, the server face's dispatch and policy
// (private face, read-only face, per-caller views), error-code parity
// with the dispositionReport mapping, and rejection of malformed
// records.
package uddi

import (
	"context"
	"errors"
	"strings"
	"testing"
	"time"

	"homeconnect/internal/service"
	"homeconnect/internal/transport"
)

var hostileEntry = Entry{
	Key:         "uuid:svc-hostile",
	Name:        `<name attr="x">&amp;]]></name>`,
	Description: "line\nbreak\ttab é☃\x00nul",
	AccessPoint: "http://h/soap?q=a&b=<c>",
	TModel:      "IFace",
	WSDL:        `<definitions name="IFace"/>`,
	Categories:  map[string]string{"k<1>": "v&1", "k2": ""},
}

func entriesEqual(a, b Entry) bool {
	if a.Key != b.Key || a.Name != b.Name || a.Description != b.Description ||
		a.AccessPoint != b.AccessPoint || a.TModel != b.TModel || a.WSDL != b.WSDL ||
		len(a.Categories) != len(b.Categories) {
		return false
	}
	for k, v := range a.Categories {
		if b.Categories[k] != v {
			return false
		}
	}
	return true
}

func TestBinEntryRoundTrip(t *testing.T) {
	for _, want := range []Entry{{}, {Key: "k", Name: "n"}, hostileEntry} {
		b := appendBinEntry(nil, &want)
		r := &walReader{b: b}
		got := decodeBinEntry(r)
		if r.err != nil {
			t.Fatalf("%s: %v", want.Key, r.err)
		}
		if len(want.Categories) == 0 {
			want.Categories = nil
		}
		if !entriesEqual(got, want) {
			t.Errorf("round trip %+v → %+v", want, got)
		}
	}
}

// binServe runs one native record through a registry's binary face.
func binServe(s *Server, opts BinOptions, caller string, req []byte) *transport.BinResponse {
	return s.BinHandler(opts).ServeBin(context.Background(), caller,
		&transport.BinRequest{Path: "/uddi", ContentType: BinContentType, Body: req})
}

func TestBinHandlerSaveFindGetDeleteWatch(t *testing.T) {
	s := NewServer()
	defer s.Close()
	var opts BinOptions

	resp := binServe(s, opts, "home-a", encodeBinSaveAll([]Entry{hostileEntry}, time.Hour))
	keys, err := decodeBinKeys(resp.Body)
	if err != nil || len(keys) != 1 || keys[0] != hostileEntry.Key {
		t.Fatalf("save: keys=%v err=%v", keys, err)
	}

	resp = binServe(s, opts, "home-a", encodeBinFind(Query{Name: "%"}))
	entries, seq, err := decodeBinEntries(resp.Body)
	if err != nil || len(entries) != 1 || seq == 0 {
		t.Fatalf("find: entries=%d seq=%d err=%v", len(entries), seq, err)
	}
	if !entriesEqual(entries[0], hostileEntry) {
		t.Fatalf("find returned %+v, want the hostile entry intact", entries[0])
	}

	resp = binServe(s, opts, "home-a", encodeBinGet(hostileEntry.Key))
	entries, _, err = decodeBinEntries(resp.Body)
	if err != nil || len(entries) != 1 {
		t.Fatalf("get: entries=%d err=%v", len(entries), err)
	}

	resp = binServe(s, opts, "home-a", encodeBinWatch(0, 0, 0))
	changes, next, _, resync, err := decodeBinChanges(resp.Body)
	if err != nil || resync || len(changes) != 1 || next != seq {
		t.Fatalf("watch: changes=%d next=%d resync=%v err=%v", len(changes), next, resync, err)
	}
	if changes[0].Op != OpAdd || !entriesEqual(changes[0].Entry, hostileEntry) {
		t.Fatalf("watch change = %+v", changes[0])
	}

	resp = binServe(s, opts, "home-a", encodeBinDelete(hostileEntry.Key))
	if _, err := decodeBinKeys(resp.Body); err != nil {
		t.Fatalf("delete: %v", err)
	}
	resp = binServe(s, opts, "home-a", encodeBinGet(hostileEntry.Key))
	if entries, _, _ := decodeBinEntries(resp.Body); len(entries) != 0 {
		t.Fatal("entry survived delete")
	}
}

// TestBinHandlerErrorParity holds the binary face to the XML face's
// refusal mapping: the same typed sentinels out of the same conditions.
func TestBinHandlerErrorParity(t *testing.T) {
	s := NewServer()
	defer s.Close()

	// Private face, foreign caller → E_userMismatch → ErrForbidden.
	resp := binServe(s, BinOptions{OwnHome: "home-a"}, "home-b", encodeBinFind(Query{}))
	if _, err := decodeBinKeys(resp.Body); !errors.Is(err, service.ErrForbidden) {
		t.Fatalf("foreign caller on private face = %v, want ErrForbidden", err)
	}

	// Read-only face refuses publication.
	resp = binServe(s, BinOptions{ReadOnly: true}, "home-b", encodeBinSaveAll([]Entry{{Name: "x"}}, 0))
	if _, err := decodeBinKeys(resp.Body); err == nil || !strings.Contains(err.Error(), "read-only") {
		t.Fatalf("save on read-only face = %v, want refusal", err)
	}

	// Unmounted peering view refuses service.
	opts := BinOptions{ViewFor: func(string) (View, bool) { return nil, false }}
	resp = binServe(s, opts, "home-b", encodeBinFind(Query{}))
	if _, err := decodeBinKeys(resp.Body); err == nil || !strings.Contains(err.Error(), "peering not enabled") {
		t.Fatalf("unmounted view = %v, want refusal", err)
	}

	// The authentication code the session layer would emit maps to
	// ErrUnauthenticated, mirroring roundTrip's dispositionReport switch.
	if err := binErrorOf("E_authTokenRequired", "x"); !errors.Is(err, service.ErrUnauthenticated) {
		t.Fatalf("E_authTokenRequired = %v, want ErrUnauthenticated", err)
	}
}

func TestBinHandlerViewFilters(t *testing.T) {
	s := NewServer()
	defer s.Close()
	s.Save(Entry{Key: "uuid:public", Name: "public"}, time.Hour)
	s.Save(Entry{Key: "uuid:secret", Name: "secret"}, time.Hour)
	opts := BinOptions{ViewFor: func(caller string) (View, bool) {
		return func(e Entry) (Entry, bool) {
			if e.Name == "secret" {
				return Entry{}, false
			}
			e.Name = caller + "/" + e.Name
			return e, true
		}, true
	}}

	resp := binServe(s, opts, "home-b", encodeBinFind(Query{Name: "%"}))
	entries, _, err := decodeBinEntries(resp.Body)
	if err != nil || len(entries) != 1 || entries[0].Name != "home-b/public" {
		t.Fatalf("filtered find = %+v, err=%v", entries, err)
	}

	resp = binServe(s, opts, "home-b", encodeBinWatch(0, 0, 0))
	changes, next, _, _, err := decodeBinChanges(resp.Body)
	if err != nil || len(changes) != 1 || changes[0].Entry.Name != "home-b/public" {
		t.Fatalf("filtered watch = %+v, err=%v", changes, err)
	}
	// The cursor still advances past the hidden change.
	if next != s.Seq() {
		t.Fatalf("cursor %d, want %d", next, s.Seq())
	}

	resp = binServe(s, opts, "home-b", encodeBinGet("uuid:secret"))
	if entries, _, _ := decodeBinEntries(resp.Body); len(entries) != 0 {
		t.Fatal("hidden entry served through get")
	}
}

func TestBinHandlerFallsBackOnOtherContent(t *testing.T) {
	s := NewServer()
	defer s.Close()
	called := false
	fallback := transport.BinHandlerFunc(func(ctx context.Context, caller string, req *transport.BinRequest) *transport.BinResponse {
		called = true
		return &transport.BinResponse{Status: 200, ContentType: "text/xml", Body: []byte("<ok/>")}
	})
	h := s.BinHandler(BinOptions{Fallback: fallback})
	resp := h.ServeBin(context.Background(), "home-a",
		&transport.BinRequest{Path: "/uddi", ContentType: `text/xml; charset="utf-8"`, Body: []byte("<find_service/>")})
	if !called || resp.Status != 200 {
		t.Fatalf("tunneled XML did not reach the fallback (called=%v status=%d)", called, resp.Status)
	}
}

func TestBinCodecRejectsMalformed(t *testing.T) {
	s := NewServer()
	defer s.Close()
	bad := map[string][]byte{
		"empty":       nil,
		"bad version": {99, binUDDIFind},
		"unknown op":  {binUDDIVersion, 'Z'},
		"truncated save": append([]byte{binUDDIVersion, binUDDISaveAll},
			0x80, 0x01, 0x05),
		"absurd count": append([]byte{binUDDIVersion, binUDDISaveAll, 0},
			0xFF, 0xFF, 0xFF, 0xFF, 0x7F),
	}
	for name, req := range bad {
		resp := binServe(s, BinOptions{}, "home-a", req)
		if resp.Status == 200 {
			t.Errorf("%s accepted", name)
		}
		if _, err := decodeBinKeys(resp.Body); err == nil {
			t.Errorf("%s: error response decoded as success", name)
		}
	}
	// Malformed responses must not decode.
	if _, err := decodeBinKeys([]byte{binUDDIVersion, binUDDIEntries}); err == nil {
		t.Error("wrong record kind decoded as keys")
	}
	if _, _, err := decodeBinEntries([]byte{binUDDIVersion, binUDDIEntries, 0, 0x90}); err == nil {
		t.Error("truncated entry list decoded")
	}
	if _, _, _, _, err := decodeBinChanges([]byte{binUDDIVersion, binUDDIChanges, 0}); err == nil {
		t.Error("truncated change list decoded")
	}
}
