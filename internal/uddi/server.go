package uddi

import (
	"fmt"
	"io"
	"net/http"
	"sort"
	"strconv"
	"sync"
	"time"

	"homeconnect/internal/xmltree"
)

// maxRequestBytes bounds inbound publication/inquiry documents.
const maxRequestBytes = 1 << 20

// Server is an in-memory UDDI-style registry. The zero value is not
// usable; call NewServer.
type Server struct {
	// now is swappable for expiry tests.
	now func() time.Time

	mu      sync.RWMutex
	entries map[string]*record

	// saves and finds count operations for the benchmark harness.
	saves int64
	finds int64
}

type record struct {
	entry   Entry
	expires time.Time
}

// NewServer returns an empty registry.
func NewServer() *Server {
	return &Server{
		now:     time.Now,
		entries: make(map[string]*record),
	}
}

// SetClock overrides the time source (tests only).
func (s *Server) SetClock(now func() time.Time) { s.now = now }

// Save registers or replaces an entry with the given TTL and returns its
// key.
func (s *Server) Save(e Entry, ttl time.Duration) string {
	if ttl <= 0 {
		ttl = DefaultTTL
	}
	if e.Key == "" {
		e.Key = NewKey()
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	s.saves++
	s.entries[e.Key] = &record{entry: e.Clone(), expires: s.now().Add(ttl)}
	return e.Key
}

// Delete removes an entry; deleting an unknown key is not an error,
// matching UDDI semantics for already-expired registrations.
func (s *Server) Delete(key string) {
	s.mu.Lock()
	defer s.mu.Unlock()
	delete(s.entries, key)
}

// Get returns the entry for key if present and unexpired.
func (s *Server) Get(key string) (Entry, bool) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	rec, ok := s.entries[key]
	if !ok || s.now().After(rec.expires) {
		return Entry{}, false
	}
	return rec.entry.Clone(), true
}

// Find returns unexpired entries matching q, ordered by name then key for
// determinism.
func (s *Server) Find(q Query) []Entry {
	s.mu.Lock()
	s.finds++
	now := s.now()
	var out []Entry
	for key, rec := range s.entries {
		if now.After(rec.expires) {
			delete(s.entries, key)
			continue
		}
		if q.Matches(rec.entry) {
			out = append(out, rec.entry.Clone())
		}
	}
	s.mu.Unlock()
	sort.Slice(out, func(i, j int) bool {
		if out[i].Name != out[j].Name {
			return out[i].Name < out[j].Name
		}
		return out[i].Key < out[j].Key
	})
	return out
}

// Len reports the number of live entries.
func (s *Server) Len() int {
	s.mu.RLock()
	defer s.mu.RUnlock()
	n := 0
	now := s.now()
	for _, rec := range s.entries {
		if !now.After(rec.expires) {
			n++
		}
	}
	return n
}

// Stats returns cumulative (saves, finds) counters.
func (s *Server) Stats() (saves, finds int64) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.saves, s.finds
}

// Handler returns the HTTP face of the registry. All operations POST an
// XML document to this handler.
func (s *Server) Handler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.Method != http.MethodPost {
			writeError(w, http.StatusMethodNotAllowed, "E_unsupported", "POST required")
			return
		}
		data, err := io.ReadAll(io.LimitReader(r.Body, maxRequestBytes))
		if err != nil {
			writeError(w, http.StatusBadRequest, "E_fatalError", "read: "+err.Error())
			return
		}
		root, err := xmltree.Parse(data)
		if err != nil {
			writeError(w, http.StatusBadRequest, "E_fatalError", "parse: "+err.Error())
			return
		}
		switch root.Name.Local {
		case "save_service":
			s.handleSave(w, root)
		case "delete_service":
			s.handleDelete(w, root)
		case "find_service":
			s.handleFind(w, root)
		case "get_serviceDetail":
			s.handleGet(w, root)
		default:
			writeError(w, http.StatusBadRequest, "E_unsupported", "unknown request "+root.Name.Local)
		}
	})
}

func (s *Server) handleSave(w http.ResponseWriter, root *xmltree.Element) {
	svc := root.Child("service")
	if svc == nil {
		writeError(w, http.StatusBadRequest, "E_fatalError", "save_service without service")
		return
	}
	entry, err := entryFromXML(svc)
	if err != nil {
		writeError(w, http.StatusBadRequest, "E_fatalError", err.Error())
		return
	}
	ttl := time.Duration(0)
	if t := root.ChildText("ttlms"); t != "" {
		ms, err := strconv.Atoi(t)
		if err != nil || ms < 0 {
			writeError(w, http.StatusBadRequest, "E_fatalError", "bad ttlms "+t)
			return
		}
		ttl = time.Duration(ms) * time.Millisecond
	}
	key := s.Save(entry, ttl)
	xw := xmltree.NewWriter()
	xw.Open("serviceDetail")
	xw.Leaf("serviceKey", key)
	writeXML(w, xw.Bytes())
}

func (s *Server) handleDelete(w http.ResponseWriter, root *xmltree.Element) {
	key := root.ChildText("serviceKey")
	if key == "" {
		writeError(w, http.StatusBadRequest, "E_invalidKeyPassed", "delete_service without serviceKey")
		return
	}
	s.Delete(key)
	xw := xmltree.NewWriter()
	xw.SelfClose("dispositionReport", "result", "ok")
	writeXML(w, xw.Bytes())
}

func (s *Server) handleFind(w http.ResponseWriter, root *xmltree.Element) {
	q := Query{
		Name:   root.ChildText("name"),
		TModel: root.ChildText("tModel"),
	}
	for _, c := range root.All("category") {
		if q.Categories == nil {
			q.Categories = make(map[string]string)
		}
		q.Categories[c.Attr("keyName")] = c.Attr("keyValue")
	}
	entries := s.Find(q)
	xw := xmltree.NewWriter()
	xw.Open("serviceList")
	for _, e := range entries {
		entryToXML(xw, e)
	}
	writeXML(w, xw.Bytes())
}

func (s *Server) handleGet(w http.ResponseWriter, root *xmltree.Element) {
	key := root.ChildText("serviceKey")
	entry, ok := s.Get(key)
	xw := xmltree.NewWriter()
	xw.Open("serviceDetail")
	if ok {
		entryToXML(xw, entry)
	}
	writeXML(w, xw.Bytes())
}

// entryToXML appends a <service> element for e to the writer.
func entryToXML(w *xmltree.Writer, e Entry) {
	w.Open("service",
		"serviceKey", e.Key,
		"name", e.Name,
		"accessPoint", e.AccessPoint,
		"tModel", e.TModel,
	)
	if e.Description != "" {
		w.Leaf("description", e.Description)
	}
	// Deterministic category order for stable wire output.
	keys := make([]string, 0, len(e.Categories))
	for k := range e.Categories {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, k := range keys {
		w.SelfClose("category", "keyName", k, "keyValue", e.Categories[k])
	}
	if e.WSDL != "" {
		w.Leaf("wsdl", e.WSDL)
	}
	w.Close()
}

// entryFromXML parses a <service> element.
func entryFromXML(svc *xmltree.Element) (Entry, error) {
	e := Entry{
		Key:         svc.Attr("serviceKey"),
		Name:        svc.Attr("name"),
		AccessPoint: svc.Attr("accessPoint"),
		TModel:      svc.Attr("tModel"),
		Description: svc.ChildText("description"),
	}
	if e.Name == "" {
		return Entry{}, fmt.Errorf("uddi: service without name")
	}
	for _, c := range svc.All("category") {
		if e.Categories == nil {
			e.Categories = make(map[string]string)
		}
		e.Categories[c.Attr("keyName")] = c.Attr("keyValue")
	}
	if wel := svc.Child("wsdl"); wel != nil {
		e.WSDL = wel.Text
	}
	return e, nil
}

func writeXML(w http.ResponseWriter, data []byte) {
	w.Header().Set("Content-Type", `text/xml; charset="utf-8"`)
	w.WriteHeader(http.StatusOK)
	_, _ = w.Write(data)
}

func writeError(w http.ResponseWriter, status int, code, msg string) {
	xw := xmltree.NewWriter()
	xw.Open("dispositionReport", "result", "error")
	xw.Leaf("errCode", code)
	xw.Leaf("errInfo", msg)
	w.Header().Set("Content-Type", `text/xml; charset="utf-8"`)
	w.WriteHeader(status)
	_, _ = w.Write(xw.Bytes())
}
