package uddi

import (
	"context"
	"fmt"
	"hash/fnv"
	"io"
	"net/http"
	"sort"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"homeconnect/internal/core/audit"
	"homeconnect/internal/xmltree"
)

// maxRequestBytes bounds inbound publication/inquiry documents.
const maxRequestBytes = 1 << 20

// numShards splits the index by service-key hash so registration and
// inquiry from many gateways stop contending on one mutex. Power of two.
const numShards = 16

// defaultJournalCapacity bounds the change journal; watchers further
// behind than this are told to resync (drop caches, resume from the
// current sequence) rather than silently miss changes.
const defaultJournalCapacity = 1024

// sweepInterval is how often the expiry janitor scans for lapsed
// registrations. Expired entries are invisible to reads immediately; the
// janitor exists to delete them and journal the expiry for watchers.
const sweepInterval = 100 * time.Millisecond

// maxWatchTimeout caps how long one watch request may park server-side.
const maxWatchTimeout = 30 * time.Second

// Server is an in-memory UDDI-style registry with a change journal. The
// zero value is not usable; call NewServer.
type Server struct {
	// nowFn is swappable for expiry tests; atomic so the janitor and
	// SetClock don't race.
	nowFn atomic.Value // func() time.Time

	shards [numShards]shard

	// The journal: a ring of the most recent changes, covering sequence
	// numbers (seq-len(journal), seq]. Mutators append while holding
	// their shard lock (shard → journal lock order, never the reverse),
	// so journal order always matches per-key map order.
	jmu     sync.Mutex
	journal []Change
	jcap    int
	seq     uint64
	wake    chan struct{} // closed and replaced on every append

	// epoch and epochLeader are the replication epoch: which leader
	// regime the journal's recent history belongs to (see replica.go).
	// Guarded by jmu; persisted as WAL epoch frames and in snapshots.
	epoch       uint64
	epochLeader string
	// epochMarks remembers, per epoch bump this node witnessed in place,
	// the journal position the previous regime ended at. Watchers holding
	// cursors from an older epoch are replayed from that boundary instead
	// of being forced into a full resync (see ChangesEpoch). Cleared on a
	// state-transfer re-ground, whose journal discontinuity makes old
	// cursors unservable anyway. Guarded by jmu.
	epochMarks []epochMark

	// replica, when non-nil, puts the registry in replica mode: the wire
	// faces refuse publication (E_notLeader, naming the leader), and the
	// expiry sweep stops journaling — lapsed entries go invisible to reads
	// immediately but their expire records arrive from the leader's feed,
	// keeping sequence numbers identical across the replica set.
	replica atomic.Pointer[replicaState]

	// saves and finds count operations for the benchmark harness.
	saves atomic.Int64
	finds atomic.Int64

	// shardOps counts mutations per shard — the simulation harness reads
	// the distribution to test shard-load uniformity under churn.
	shardOps [numShards]atomic.Int64

	// auditRec, when set, receives registry lifecycle events: TTL
	// expiries and endpoint re-homes.
	auditRec atomic.Pointer[audit.Recorder]

	// wal, when non-nil, persists the journal to disk (see wal.go). Its
	// fields are guarded by jmu. recoveredPending defers the boot-time
	// registry.recovered audit event until a recorder is installed.
	wal              *wal
	recoveredMsg     string
	recoveredPending atomic.Bool

	stopOnce sync.Once
	stop     chan struct{}
}

type shard struct {
	mu      sync.RWMutex
	entries map[string]*record
}

type record struct {
	entry   Entry
	expires time.Time
}

// NewServer returns an empty registry and starts its expiry janitor;
// call Close to stop it.
func NewServer() *Server {
	s := NewManualServer()
	go s.janitor()
	return s
}

// NewManualServer returns an empty registry with no background janitor:
// the owner drives expiry by calling Sweep. This is the construction the
// deterministic simulation uses — expiry happens exactly when the event
// loop schedules it, never on a wall-clock tick.
func NewManualServer() *Server {
	s := &Server{
		jcap: defaultJournalCapacity,
		wake: make(chan struct{}),
		stop: make(chan struct{}),
	}
	s.nowFn.Store(time.Now)
	for i := range s.shards {
		s.shards[i].entries = make(map[string]*record)
	}
	return s
}

// Sweep runs one expiry pass at the registry's current clock reading,
// deleting lapsed registrations and journaling each expiry, then any due
// durability work (interval fsync, snapshot). The background janitor
// calls this every sweepInterval; a manual registry's owner calls it on
// its own schedule.
func (s *Server) Sweep() {
	s.expireSweep()
	s.walMaintain()
}

// Close stops the expiry janitor, wakes parked watchers, and closes the
// WAL (flushed, but without the clean-shutdown marker — use Shutdown for
// a marked close that lets the next boot skip tail recovery).
func (s *Server) Close() {
	s.stopOnce.Do(func() {
		close(s.stop)
		s.jmu.Lock()
		if s.wal != nil && s.wal.f != nil {
			s.wal.f.Sync()
			s.wal.f.Close()
			s.wal.f = nil
		}
		close(s.wake)
		s.wake = make(chan struct{})
		s.jmu.Unlock()
	})
}

// SetClock overrides the time source (tests only).
func (s *Server) SetClock(now func() time.Time) { s.nowFn.Store(now) }

// SetAuditRecorder installs the audit recorder registry lifecycle events
// (expiries, re-homes, recovery) are reported to; nil turns recording
// off. If the registry recovered from an unclean shutdown before a
// recorder existed, the deferred registry.recovered event is emitted now.
func (s *Server) SetAuditRecorder(r audit.Recorder) {
	if r == nil {
		s.auditRec.Store(nil)
		return
	}
	s.auditRec.Store(&r)
	if s.recoveredPending.CompareAndSwap(true, false) {
		s.auditEvent(audit.Event{Type: audit.RegistryRecovered, Detail: s.recoveredMsg})
	}
}

// auditEvent emits an audit event if a recorder is installed.
func (s *Server) auditEvent(ev audit.Event) {
	p := s.auditRec.Load()
	if p != nil {
		(*p).Record(ev)
	}
}

func (s *Server) now() time.Time { return s.nowFn.Load().(func() time.Time)() }

// SetJournalCapacity resizes the change journal (set before traffic
// flows; existing excess history is discarded).
func (s *Server) SetJournalCapacity(n int) {
	if n < 1 {
		n = 1
	}
	s.jmu.Lock()
	defer s.jmu.Unlock()
	s.jcap = n
	if len(s.journal) > n {
		s.journal = append([]Change(nil), s.journal[len(s.journal)-n:]...)
	}
}

func shardIndex(key string) int {
	h := fnv.New32a()
	_, _ = h.Write([]byte(key))
	return int(h.Sum32() & (numShards - 1))
}

func (s *Server) shardFor(key string) *shard {
	return &s.shards[shardIndex(key)]
}

// ShardLoads returns cumulative mutations (saves and deletes) per index
// shard. The simulation harness tests this distribution for uniformity
// under churn — a hot shard here is a hot mutex under load.
func (s *Server) ShardLoads() []int64 {
	out := make([]int64, numShards)
	for i := range s.shardOps {
		out[i] = s.shardOps[i].Load()
	}
	return out
}

// JournalStats reports the journal's current length, capacity and head
// sequence number — how close watchers are to being forced into resync.
func (s *Server) JournalStats() (length, capacity int, seq uint64) {
	s.jmu.Lock()
	defer s.jmu.Unlock()
	return len(s.journal), s.jcap, s.seq
}

// appendChange journals one mutation, writing it through to the WAL (when
// durable) before the caller's save/delete returns. expires carries the
// registration deadline for adds/updates so recovery can re-arm leases
// with their remaining lifetime; zero for deletes and expiries. Callers
// hold the shard lock for the change's key, which serializes per-key
// journal order with map order.
func (s *Server) appendChange(op ChangeOp, e Entry, expires time.Time) {
	if op == OpDelete || op == OpExpire {
		// Invalidation needs identity, not payload; drop the heavy fields.
		e = Entry{Key: e.Key, Name: e.Name}
	}
	s.jmu.Lock()
	s.seq++
	s.journal = append(s.journal, Change{Seq: s.seq, Op: op, Entry: e.Clone(), Expires: expires})
	if len(s.journal) > s.jcap {
		s.journal = s.journal[len(s.journal)-s.jcap:]
	}
	s.walAppend(op, e, expires)
	close(s.wake)
	s.wake = make(chan struct{})
	s.jmu.Unlock()
}

// janitor deletes lapsed registrations and journals each expiry, so
// watchers learn about silently dead services without polling.
func (s *Server) janitor() {
	t := time.NewTicker(sweepInterval)
	defer t.Stop()
	for {
		select {
		case <-s.stop:
			return
		case <-t.C:
			s.Sweep()
		}
	}
}

func (s *Server) expireSweep() {
	if s.replica.Load() != nil {
		// Replicas never journal their own expiries: reads already skip
		// lapsed entries, and the authoritative expire record arrives from
		// the leader's feed under the leader's sequence number. A local
		// sweep here would assign divergent sequence numbers.
		return
	}
	now := s.now()
	for i := range s.shards {
		sh := &s.shards[i]
		sh.mu.Lock()
		for key, rec := range sh.entries {
			if now.After(rec.expires) {
				delete(sh.entries, key)
				s.appendChange(OpExpire, rec.entry, time.Time{})
				s.auditEvent(audit.Event{Type: audit.Expire, Service: rec.entry.Name,
					Detail: "registration TTL lapsed (gateway went silent)"})
			}
		}
		sh.mu.Unlock()
	}
}

// Save registers or replaces an entry with the given TTL and returns its
// key.
func (s *Server) Save(e Entry, ttl time.Duration) string {
	if ttl <= 0 {
		ttl = DefaultTTL
	}
	if e.Key == "" {
		e.Key = NewKey()
	}
	sh := s.shardFor(e.Key)
	sh.mu.Lock()
	s.saves.Add(1)
	s.shardOps[shardIndex(e.Key)].Add(1)
	op := OpAdd
	rehomedFrom := ""
	if old, ok := sh.entries[e.Key]; ok && !s.now().After(old.expires) {
		op = OpUpdate
		if old.entry.AccessPoint != e.AccessPoint {
			rehomedFrom = old.entry.AccessPoint
		}
	}
	deadline := s.now().Add(ttl)
	sh.entries[e.Key] = &record{entry: e.Clone(), expires: deadline}
	s.appendChange(op, e, deadline)
	sh.mu.Unlock()
	if rehomedFrom != "" {
		s.auditEvent(audit.Event{Type: audit.ReHome, Service: e.Name,
			Detail: rehomedFrom + " → " + e.AccessPoint})
	}
	return e.Key
}

// SaveAll registers every entry under one TTL and returns the keys in
// order — the batched form gateways use to renew all their exports in a
// single round trip.
func (s *Server) SaveAll(entries []Entry, ttl time.Duration) []string {
	keys := make([]string, len(entries))
	for i, e := range entries {
		keys[i] = s.Save(e, ttl)
	}
	return keys
}

// Delete removes an entry; deleting an unknown key is not an error,
// matching UDDI semantics for already-expired registrations.
func (s *Server) Delete(key string) {
	sh := s.shardFor(key)
	sh.mu.Lock()
	if rec, ok := sh.entries[key]; ok {
		delete(sh.entries, key)
		s.shardOps[shardIndex(key)].Add(1)
		s.appendChange(OpDelete, rec.entry, time.Time{})
	}
	sh.mu.Unlock()
}

// Get returns the entry for key if present and unexpired.
func (s *Server) Get(key string) (Entry, bool) {
	sh := s.shardFor(key)
	sh.mu.RLock()
	defer sh.mu.RUnlock()
	rec, ok := sh.entries[key]
	if !ok || s.now().After(rec.expires) {
		return Entry{}, false
	}
	return rec.entry.Clone(), true
}

// Find returns unexpired entries matching q, ordered by name then key for
// determinism. Expired entries are skipped (the janitor deletes and
// journals them).
func (s *Server) Find(q Query) []Entry {
	s.finds.Add(1)
	now := s.now()
	var out []Entry
	for i := range s.shards {
		sh := &s.shards[i]
		sh.mu.RLock()
		for _, rec := range sh.entries {
			if now.After(rec.expires) {
				continue
			}
			if q.Matches(rec.entry) {
				out = append(out, rec.entry.Clone())
			}
		}
		sh.mu.RUnlock()
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Name != out[j].Name {
			return out[i].Name < out[j].Name
		}
		return out[i].Key < out[j].Key
	})
	return out
}

// Len reports the number of live entries.
func (s *Server) Len() int {
	n := 0
	now := s.now()
	for i := range s.shards {
		sh := &s.shards[i]
		sh.mu.RLock()
		for _, rec := range sh.entries {
			if !now.After(rec.expires) {
				n++
			}
		}
		sh.mu.RUnlock()
	}
	return n
}

// Stats returns cumulative (saves, finds) counters.
func (s *Server) Stats() (saves, finds int64) {
	return s.saves.Load(), s.finds.Load()
}

// Seq returns the sequence number of the most recent change.
func (s *Server) Seq() uint64 {
	s.jmu.Lock()
	defer s.jmu.Unlock()
	return s.seq
}

// Changes returns the journal entries with sequence numbers greater than
// since, plus the cursor to resume from. resync is true when the journal
// no longer covers since (the watcher fell too far behind, or it resumed
// against a restarted registry): the watcher must discard everything it
// cached and continue from next.
func (s *Server) Changes(since uint64) (changes []Change, next uint64, resync bool) {
	changes, next, _, resync = s.ChangesEpoch(since, 0, false)
	return changes, next, resync
}

// ChangesEpoch is Changes for a watcher that also states which replication
// epoch its cursor came from (0 means unknown — legacy behavior). The
// epoch lets the registry serve cursors across a failover:
//
//   - A cursor from an older epoch pointing past that regime's end is
//     replayed from the epoch boundary — the last journal position the
//     regimes share — instead of resyncing. Journal ops are idempotent
//     per key, so redelivering shared history is safe; records the dead
//     regime acknowledged but never replicated return via the deposed
//     leader's rejoin handback, and any the watcher applied that the new
//     regime never saw age out by TTL.
//   - A replica holds a same-regime cursor that is ahead of its feed
//     (nothing lost — the watcher just raced the replication lag) and
//     answers it once the feed catches up.
//
// strict disables the boundary replay — a diverged cursor resyncs. The
// replication feed itself uses strict mode: a replica must mirror its
// leader exactly, so records it applied beyond the boundary have to be
// discarded by a state transfer, not papered over by replay (replayed
// records at or below its own position would be skipped as duplicates).
func (s *Server) ChangesEpoch(since, sinceEpoch uint64, strict bool) (changes []Change, next, nextEpoch uint64, resync bool) {
	s.jmu.Lock()
	defer s.jmu.Unlock()
	nextEpoch = s.epoch
	oldest := s.seq - uint64(len(s.journal)) // journal covers (oldest, seq]
	if sinceEpoch > 0 && sinceEpoch < s.epoch {
		b, ok := s.epochBoundaryLocked(sinceEpoch)
		if !ok {
			// The boundary is unknown (bumped before this node's memory):
			// no way to tell shared history from divergence.
			return nil, s.seq, nextEpoch, true
		}
		if since > b {
			if strict {
				return nil, s.seq, nextEpoch, true
			}
			since = b
		}
	}
	if since > s.seq {
		// A replica shares its leader's sequence space, so a watcher that
		// failed over here can present a cursor the replication feed has
		// not reached yet. The watcher lost nothing — hold its cursor and
		// let it retry once the feed catches up, instead of forcing a full
		// resync. A leader seeing a future same-regime cursor still
		// resyncs: that cursor came from history this node never had.
		if s.ReplicaOf() != "" {
			return nil, since, nextEpoch, false
		}
		return nil, s.seq, nextEpoch, true
	}
	if since < oldest {
		return nil, s.seq, nextEpoch, true
	}
	// Sequence numbers are contiguous, so the requested tail is a single
	// slice — no per-record scan of a journal that is mostly history.
	tail := s.journal[len(s.journal)-int(s.seq-since):]
	if len(tail) > 0 {
		changes = append(make([]Change, 0, len(tail)), tail...)
	}
	return changes, s.seq, nextEpoch, false
}

// WatchChanges long-polls the journal: it returns as soon as there are
// changes after since (or a resync condition), blocking up to timeout. A
// zero timeout returns immediately — an empty result with the current
// cursor, which watchers use as a cheap liveness probe.
func (s *Server) WatchChanges(ctx context.Context, since uint64, timeout time.Duration) (changes []Change, next uint64, resync bool, err error) {
	changes, next, _, resync, err = s.WatchChangesEpoch(ctx, since, 0, timeout, false)
	return changes, next, resync, err
}

// WatchChangesEpoch is WatchChanges with the watcher's cursor epoch (see
// ChangesEpoch). A round that crosses an epoch — the watcher's cursor is
// from an older regime — returns immediately even when empty, so the
// watcher re-grounds its cursor and epoch rather than parking on a
// boundary it cannot see.
func (s *Server) WatchChangesEpoch(ctx context.Context, since, sinceEpoch uint64, timeout time.Duration, strict bool) (changes []Change, next, nextEpoch uint64, resync bool, err error) {
	// Wall-clock deadline: the swappable clock governs TTLs, not polls.
	deadline := time.Now().Add(timeout)
	for {
		s.jmu.Lock()
		waitCh := s.wake
		s.jmu.Unlock()
		changes, next, nextEpoch, resync = s.ChangesEpoch(since, sinceEpoch, strict)
		if len(changes) > 0 || resync || (sinceEpoch > 0 && nextEpoch != sinceEpoch) {
			return changes, next, nextEpoch, resync, nil
		}
		select {
		case <-s.stop:
			return nil, next, nextEpoch, false, nil
		default:
		}
		remaining := time.Until(deadline)
		if remaining <= 0 {
			return nil, next, nextEpoch, false, nil
		}
		timer := time.NewTimer(remaining)
		select {
		case <-waitCh:
			timer.Stop()
		case <-timer.C:
			return nil, next, nextEpoch, false, nil
		case <-ctx.Done():
			timer.Stop()
			return nil, next, nextEpoch, false, ctx.Err()
		}
	}
}

// View rewrites or suppresses registry entries served to one consumer
// class. It receives each outbound entry (for delete/expire journal
// records, an identity-only entry carrying just Key and Name) and returns
// the entry to serve, or ok=false to hide it from this consumer entirely.
// Views apply to inquiries and the change watch alike, so a consumer
// behind a view sees one consistent, filtered registry. A view that
// rewrites an entry must Clone it first: the argument may share storage
// (the category map in particular) with the registry's own records.
type View func(Entry) (Entry, bool)

// Handler returns the HTTP face of the registry. All operations POST an
// XML document to this handler.
func (s *Server) Handler() http.Handler {
	return s.handler(nil, false)
}

// ViewHandler returns a read-only HTTP face of the registry speaking the
// same wire protocol as Handler, restricted to the inquiry operations
// (find_service, get_serviceDetail, watch) with every outbound entry
// passed through view. This is the face a repository shows to peer homes:
// they replicate over the ordinary UDDI operations, but see only what the
// view — the home's export policy — admits. Publication operations are
// rejected, so a peer cannot write into this registry through it.
func (s *Server) ViewHandler(view View) http.Handler {
	if view == nil {
		view = func(e Entry) (Entry, bool) { return e, true }
	}
	return s.handler(func(*http.Request) View { return view }, true)
}

// CallerViewHandler is ViewHandler with the view chosen per request:
// caller extracts the authenticated caller's home from the request
// (identity.CallerFrom behind an auth middleware), viewFor builds that
// caller's view. This is how a home's export face serves each peer only
// what the export policy and the per-caller ACL admit to it.
func (s *Server) CallerViewHandler(caller func(*http.Request) string, viewFor func(string) View) http.Handler {
	return s.handler(func(r *http.Request) View { return viewFor(caller(r)) }, true)
}

// handler implements the Handler variants; viewFor (nil = unfiltered)
// selects the per-request entry filter and readOnly rejects the
// publication operations.
func (s *Server) handler(viewFor func(*http.Request) View, readOnly bool) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.Method != http.MethodPost {
			writeError(w, http.StatusMethodNotAllowed, "E_unsupported", "POST required")
			return
		}
		var view View
		if viewFor != nil {
			view = viewFor(r)
		}
		data, err := io.ReadAll(io.LimitReader(r.Body, maxRequestBytes))
		if err != nil {
			writeError(w, http.StatusBadRequest, "E_fatalError", "read: "+err.Error())
			return
		}
		root, err := xmltree.Parse(data)
		if err != nil {
			writeError(w, http.StatusBadRequest, "E_fatalError", "parse: "+err.Error())
			return
		}
		// deny refuses publication on read-only faces and — with the
		// leader's address, so resolver-aware clients re-pin — on replicas.
		deny := func() bool {
			if readOnly {
				writeError(w, http.StatusForbidden, "E_operatorMismatch", "read-only endpoint: "+root.Name.Local)
				return true
			}
			if rs := s.replica.Load(); rs != nil {
				writeError(w, http.StatusMisdirectedRequest, "E_notLeader", notLeaderInfo(rs.leader))
				return true
			}
			return false
		}
		// The replication operations serve full entries with their lease
		// deadlines; they belong to the private face only, never behind a
		// peer view or a read-only mount.
		repl := func() bool {
			if readOnly || viewFor != nil {
				writeError(w, http.StatusForbidden, "E_unsupported",
					"replication is private to the repository face: "+root.Name.Local)
				return false
			}
			return true
		}
		switch root.Name.Local {
		case "save_service":
			if !deny() {
				s.handleSave(w, root)
			}
		case "save_services":
			if !deny() {
				s.handleSaveAll(w, root)
			}
		case "delete_service":
			if !deny() {
				s.handleDelete(w, root)
			}
		case "find_service":
			s.handleFind(w, root, view)
		case "get_serviceDetail":
			s.handleGet(w, root, view)
		case "watch":
			s.handleWatch(r.Context(), w, root, view)
		case "repl_status":
			if repl() {
				s.handleReplStatus(w)
			}
		case "repl_sync":
			if repl() {
				s.handleReplSync(w)
			}
		case "repl_watch":
			if repl() {
				s.handleReplWatch(r.Context(), w, root)
			}
		default:
			writeError(w, http.StatusBadRequest, "E_unsupported", "unknown request "+root.Name.Local)
		}
	})
}

// parseMillis reads an optional millisecond-valued child element; an
// absent element is zero (each caller's "use the default").
func parseMillis(root *xmltree.Element, name string) (time.Duration, error) {
	t := root.ChildText(name)
	if t == "" {
		return 0, nil
	}
	ms, err := strconv.Atoi(t)
	if err != nil || ms < 0 {
		return 0, fmt.Errorf("bad %s %s", name, t)
	}
	return time.Duration(ms) * time.Millisecond, nil
}

func (s *Server) handleSave(w http.ResponseWriter, root *xmltree.Element) {
	svc := root.Child("service")
	if svc == nil {
		writeError(w, http.StatusBadRequest, "E_fatalError", "save_service without service")
		return
	}
	entry, err := entryFromXML(svc)
	if err != nil {
		writeError(w, http.StatusBadRequest, "E_fatalError", err.Error())
		return
	}
	ttl, err := parseMillis(root, "ttlms")
	if err != nil {
		writeError(w, http.StatusBadRequest, "E_fatalError", err.Error())
		return
	}
	key := s.Save(entry, ttl)
	xw := xmltree.NewWriter()
	xw.Open("serviceDetail")
	xw.Leaf("serviceKey", key)
	writeXML(w, xw.Bytes())
}

func (s *Server) handleSaveAll(w http.ResponseWriter, root *xmltree.Element) {
	svcs := root.All("service")
	if len(svcs) == 0 {
		writeError(w, http.StatusBadRequest, "E_fatalError", "save_services without service")
		return
	}
	entries := make([]Entry, 0, len(svcs))
	for _, svc := range svcs {
		entry, err := entryFromXML(svc)
		if err != nil {
			writeError(w, http.StatusBadRequest, "E_fatalError", err.Error())
			return
		}
		entries = append(entries, entry)
	}
	ttl, err := parseMillis(root, "ttlms")
	if err != nil {
		writeError(w, http.StatusBadRequest, "E_fatalError", err.Error())
		return
	}
	keys := s.SaveAll(entries, ttl)
	xw := xmltree.NewWriter()
	xw.Open("serviceDetail")
	for _, key := range keys {
		xw.Leaf("serviceKey", key)
	}
	writeXML(w, xw.Bytes())
}

func (s *Server) handleDelete(w http.ResponseWriter, root *xmltree.Element) {
	key := root.ChildText("serviceKey")
	if key == "" {
		writeError(w, http.StatusBadRequest, "E_invalidKeyPassed", "delete_service without serviceKey")
		return
	}
	s.Delete(key)
	xw := xmltree.NewWriter()
	xw.SelfClose("dispositionReport", "result", "ok")
	writeXML(w, xw.Bytes())
}

func (s *Server) handleFind(w http.ResponseWriter, root *xmltree.Element, view View) {
	q := Query{
		Name:   root.ChildText("name"),
		TModel: root.ChildText("tModel"),
	}
	for _, c := range root.All("category") {
		if q.Categories == nil {
			q.Categories = make(map[string]string)
		}
		q.Categories[c.Attr("keyName")] = c.Attr("keyValue")
	}
	// Journal position read before the scan: any change the scan might
	// have missed has a higher sequence number, so clients can fence
	// cache fills against concurrent mutations.
	seq := s.Seq()
	entries := s.Find(q)
	xw := xmltree.NewWriter()
	xw.Open("serviceList", "seq", strconv.FormatUint(seq, 10))
	for _, e := range entries {
		if view != nil {
			ve, ok := view(e)
			if !ok {
				continue
			}
			e = ve
		}
		entryToXML(xw, e)
	}
	writeXML(w, xw.Bytes())
}

func (s *Server) handleGet(w http.ResponseWriter, root *xmltree.Element, view View) {
	key := root.ChildText("serviceKey")
	entry, ok := s.Get(key)
	if ok && view != nil {
		entry, ok = view(entry)
	}
	xw := xmltree.NewWriter()
	xw.Open("serviceDetail")
	if ok {
		entryToXML(xw, entry)
	}
	writeXML(w, xw.Bytes())
}

func (s *Server) handleWatch(ctx context.Context, w http.ResponseWriter, root *xmltree.Element, view View) {
	var since, sinceEpoch uint64
	if t := root.ChildText("since"); t != "" {
		v, err := strconv.ParseUint(t, 10, 64)
		if err != nil {
			writeError(w, http.StatusBadRequest, "E_fatalError", "bad since "+t)
			return
		}
		since = v
	}
	if t := root.ChildText("epoch"); t != "" {
		v, err := strconv.ParseUint(t, 10, 64)
		if err != nil {
			writeError(w, http.StatusBadRequest, "E_fatalError", "bad epoch "+t)
			return
		}
		sinceEpoch = v
	}
	timeout, err := parseMillis(root, "timeoutms")
	if err != nil {
		writeError(w, http.StatusBadRequest, "E_fatalError", err.Error())
		return
	}
	if timeout > maxWatchTimeout {
		timeout = maxWatchTimeout
	}
	changes, next, nextEpoch, resync, err := s.WatchChangesEpoch(ctx, since, sinceEpoch, timeout, false)
	if err != nil {
		// Client went away mid-poll; nothing useful to write.
		return
	}
	if view != nil {
		// A filtered-to-empty round reads as an empty poll: the client
		// advances its cursor past the hidden changes and parks again.
		kept := changes[:0]
		for _, c := range changes {
			ve, ok := view(c.Entry)
			if !ok {
				continue
			}
			c.Entry = ve
			kept = append(kept, c)
		}
		changes = kept
	}
	writeXML(w, encodeChangeList(changes, next, nextEpoch, resync))
}

// encodeChangeList renders a watch response.
func encodeChangeList(changes []Change, next, epoch uint64, resync bool) []byte {
	xw := xmltree.NewWriter()
	xw.Open("changeList",
		"next", strconv.FormatUint(next, 10),
		"resync", strconv.FormatBool(resync),
		"epoch", strconv.FormatUint(epoch, 10),
	)
	for _, c := range changes {
		switch c.Op {
		case OpAdd, OpUpdate:
			xw.Open("change", "seq", strconv.FormatUint(c.Seq, 10), "op", string(c.Op))
			entryToXML(xw, c.Entry)
			xw.Close()
		default:
			xw.SelfClose("change",
				"seq", strconv.FormatUint(c.Seq, 10),
				"op", string(c.Op),
				"serviceKey", c.Entry.Key,
				"name", c.Entry.Name,
			)
		}
	}
	return xw.Bytes()
}

// decodeChangeList parses a watch response. A response without an epoch
// attribute (an older server) reads as epoch 0 — unknown.
func decodeChangeList(root *xmltree.Element) (changes []Change, next, epoch uint64, resync bool, err error) {
	if root.Name.Local != "changeList" {
		return nil, 0, 0, false, fmt.Errorf("uddi: watch response root %s", root.Name.Local)
	}
	next, err = strconv.ParseUint(root.Attr("next"), 10, 64)
	if err != nil {
		return nil, 0, 0, false, fmt.Errorf("uddi: bad changeList next: %w", err)
	}
	if t := root.Attr("epoch"); t != "" {
		epoch, err = strconv.ParseUint(t, 10, 64)
		if err != nil {
			return nil, 0, 0, false, fmt.Errorf("uddi: bad changeList epoch: %w", err)
		}
	}
	resync = root.Attr("resync") == "true"
	for _, el := range root.All("change") {
		seq, err := strconv.ParseUint(el.Attr("seq"), 10, 64)
		if err != nil {
			return nil, 0, 0, false, fmt.Errorf("uddi: bad change seq: %w", err)
		}
		c := Change{Seq: seq, Op: ChangeOp(el.Attr("op"))}
		switch c.Op {
		case OpAdd, OpUpdate:
			svc := el.Child("service")
			if svc == nil {
				return nil, 0, 0, false, fmt.Errorf("uddi: %s change without service", c.Op)
			}
			c.Entry, err = entryFromXML(svc)
			if err != nil {
				return nil, 0, 0, false, err
			}
		case OpDelete, OpExpire:
			c.Entry = Entry{Key: el.Attr("serviceKey"), Name: el.Attr("name")}
		default:
			return nil, 0, 0, false, fmt.Errorf("uddi: unknown change op %q", el.Attr("op"))
		}
		changes = append(changes, c)
	}
	return changes, next, epoch, resync, nil
}

// entryToXML appends a <service> element for e to the writer.
func entryToXML(w *xmltree.Writer, e Entry) {
	w.Open("service",
		"serviceKey", e.Key,
		"name", e.Name,
		"accessPoint", e.AccessPoint,
		"tModel", e.TModel,
	)
	if e.Description != "" {
		w.Leaf("description", e.Description)
	}
	// Deterministic category order for stable wire output.
	keys := make([]string, 0, len(e.Categories))
	for k := range e.Categories {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, k := range keys {
		w.SelfClose("category", "keyName", k, "keyValue", e.Categories[k])
	}
	if e.WSDL != "" {
		w.Leaf("wsdl", e.WSDL)
	}
	w.Close()
}

// entryFromXML parses a <service> element.
func entryFromXML(svc *xmltree.Element) (Entry, error) {
	e := Entry{
		Key:         svc.Attr("serviceKey"),
		Name:        svc.Attr("name"),
		AccessPoint: svc.Attr("accessPoint"),
		TModel:      svc.Attr("tModel"),
		Description: svc.ChildText("description"),
	}
	if e.Name == "" {
		return Entry{}, fmt.Errorf("uddi: service without name")
	}
	for _, c := range svc.All("category") {
		if e.Categories == nil {
			e.Categories = make(map[string]string)
		}
		e.Categories[c.Attr("keyName")] = c.Attr("keyValue")
	}
	if wel := svc.Child("wsdl"); wel != nil {
		e.WSDL = wel.Text
	}
	return e, nil
}

func writeXML(w http.ResponseWriter, data []byte) {
	w.Header().Set("Content-Type", `text/xml; charset="utf-8"`)
	w.WriteHeader(http.StatusOK)
	_, _ = w.Write(data)
}

// AuthErrorWriter renders an authentication refusal in the registry's
// own dispositionReport vocabulary — the identity.DenyWriter for UDDI
// faces. The UDDI v2 error codes are the closest the spec offers:
// E_authTokenRequired for missing/invalid credentials, E_userMismatch
// for an authenticated party the face refuses.
func AuthErrorWriter(w http.ResponseWriter, code, msg string) {
	switch code {
	case "Forbidden":
		writeError(w, http.StatusForbidden, "E_userMismatch", msg)
	default:
		writeError(w, http.StatusUnauthorized, "E_authTokenRequired", msg)
	}
}

func writeError(w http.ResponseWriter, status int, code, msg string) {
	xw := xmltree.NewWriter()
	xw.Open("dispositionReport", "result", "error")
	xw.Leaf("errCode", code)
	xw.Leaf("errInfo", msg)
	w.Header().Set("Content-Type", `text/xml; charset="utf-8"`)
	w.WriteHeader(status)
	_, _ = w.Write(xw.Bytes())
}
