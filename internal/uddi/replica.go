// replica.go is the registry's replication face: the protocol a replica
// uses to mirror a leader registry change-for-change, and the mode switch
// that makes this process one of the mirrors.
//
// Replication rides the machinery PR 2 built for watchers: every mutation
// already has a global sequence number and a journal record, so a replica
// is "just" a watcher that (a) receives lease deadlines along with
// entries, (b) applies changes under the leader's sequence numbers
// instead of assigning its own, and (c) persists through its own WAL. The
// payoff of keeping the leader's numbering is failover transparency:
// when a replica is promoted, every importer and watcher cursor pointed
// at the old leader is still valid against the new one — clients re-pin
// to a surviving endpoint and resume from `since` with zero resyncs.
//
// Promotions are fenced by an epoch: a monotone counter recorded in the
// WAL (opWALEpoch frames) and in snapshots, bumped exactly once per
// leadership change. A node refuses to regress its epoch, and the
// replication operations carry the requester's epoch so a deposed leader
// that comes back is told E_staleEpoch instead of being allowed to serve
// a dead regime. Election itself is deterministic — highest replicated
// sequence number wins, ties broken by replica-set order — and lives in
// internal/core/replica; this file provides the mechanism (epoch
// storage, fenced apply, state transfer), after the policy-free-middleware
// argument that infrastructure should expose journals and cursors and let
// the deployment choose failover policy.
package uddi

import (
	"context"
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"net/http"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
	"time"

	"homeconnect/internal/xmltree"
)

// ErrNotLeader is the typed refusal a replica answers writes with. It is
// what makes failover error-driven: a resolver-backed client that sees it
// re-pins to the leader the replica named (or the next endpoint) instead
// of reporting failure.
var ErrNotLeader = errors.New("uddi: not the leader")

// ErrStaleEpoch reports a replication operation from (or against) a
// deposed leadership regime: the other side's epoch is behind ours, or
// ours is behind theirs. The loser must stop serving its regime and
// re-attach as a replica.
var ErrStaleEpoch = errors.New("uddi: stale epoch")

// notLeaderError carries the leader address a replica named in its
// refusal; unwraps to ErrNotLeader.
type notLeaderError struct {
	msg    string
	leader string
}

func (e *notLeaderError) Error() string { return e.msg }
func (e *notLeaderError) Unwrap() error { return ErrNotLeader }

// LeaderHint extracts the leader address from an ErrNotLeader refusal,
// or "" when the error carries none.
func LeaderHint(err error) string {
	var nl *notLeaderError
	if errors.As(err, &nl) {
		return nl.leader
	}
	return ""
}

// notLeaderInfo is the E_notLeader errInfo text; leaderHintIn parses the
// address back out on the client side.
func notLeaderInfo(leader string) string {
	return "replica: writes go to the leader at " + leader
}

func leaderHintIn(info string) string {
	if i := strings.LastIndex(info, " at "); i >= 0 {
		return strings.TrimSpace(info[i+len(" at "):])
	}
	return ""
}

// endpointDownError marks a transport-level failure (connect refused,
// reset, dial timeout) as distinct from a protocol-level refusal, so the
// failover loop knows the endpoint itself is gone.
type endpointDownError struct{ err error }

func (e *endpointDownError) Error() string { return e.err.Error() }
func (e *endpointDownError) Unwrap() error { return e.err }

// FailoverWorthy reports whether err should move a resolver-backed client
// to the next endpoint: the endpoint is down, or it answered as a replica
// (ErrNotLeader). Everything else — auth refusals, malformed documents,
// context cancellation — is the same answer on every endpoint and must
// surface, not retry.
func FailoverWorthy(err error) bool {
	if err == nil {
		return false
	}
	if errors.Is(err, ErrNotLeader) {
		return true
	}
	var down *endpointDownError
	return errors.As(err, &down)
}

// replicaState is the registry's replica-mode flag: non-nil on the
// Server.replica atomic means wire writes are refused with E_notLeader
// naming this leader. One pointer load on the write path keeps the
// leader's gated benchmarks untouched.
type replicaState struct {
	leader string
}

// SetReplicaOf flips the registry into replica mode (leader names the
// endpoint writes should be redirected to) or, with "", back into leader
// mode. Mode changes are the coordination layer's job
// (internal/core/replica); the registry only enforces the current mode.
func (s *Server) SetReplicaOf(leader string) {
	if leader == "" {
		s.replica.Store(nil)
		return
	}
	s.replica.Store(&replicaState{leader: leader})
}

// ReplicaOf returns the leader endpoint this registry mirrors, or "" when
// it is itself a leader.
func (s *Server) ReplicaOf() string {
	if rs := s.replica.Load(); rs != nil {
		return rs.leader
	}
	return ""
}

// Epoch returns the current replication epoch and the leader name it was
// stamped with.
func (s *Server) Epoch() (uint64, string) {
	s.jmu.Lock()
	defer s.jmu.Unlock()
	return s.epoch, s.epochLeader
}

// epochMark remembers where one regime ended: seq is the journal position
// this node was at when it adopted epoch. Cursors from any older epoch
// that point beyond seq crossed into history the regimes do not share.
type epochMark struct {
	epoch uint64
	seq   uint64
}

// maxEpochMarks bounds the boundary memory; older boundaries force a
// resync, which is the pre-epoch behavior.
const maxEpochMarks = 16

// epochBoundaryLocked returns the journal position shared between
// sinceEpoch and every later regime this node adopted in place — the seq
// of the earliest mark newer than sinceEpoch. ok is false when that bump
// predates this node's memory. Caller holds jmu.
func (s *Server) epochBoundaryLocked(sinceEpoch uint64) (seq uint64, ok bool) {
	for _, m := range s.epochMarks {
		if m.epoch > sinceEpoch {
			return m.seq, true
		}
	}
	return 0, false
}

// SetEpoch advances the replication epoch, persisting an epoch frame to
// the WAL so a restart remembers which regime it last acknowledged. An
// attempt to regress the epoch fails with ErrStaleEpoch — the fencing
// rule that stops a deposed leader's state from overwriting a newer
// regime. Re-asserting the current epoch (same number) is allowed so a
// node can adopt the regime's leader name it learned late.
func (s *Server) SetEpoch(epoch uint64, leader string) error {
	s.jmu.Lock()
	defer s.jmu.Unlock()
	if epoch < s.epoch {
		return fmt.Errorf("uddi: epoch %d behind current %d (leader %s): %w",
			epoch, s.epoch, s.epochLeader, ErrStaleEpoch)
	}
	if epoch == s.epoch && leader == s.epochLeader {
		return nil
	}
	if epoch > s.epoch {
		s.appendEpochMarkLocked(epoch)
	}
	s.epoch, s.epochLeader = epoch, leader
	s.walAppendEpochLocked(epoch, leader)
	return nil
}

// appendEpochMarkLocked records the current journal position as the end
// of the outgoing regime. The position is this node's own — for a lagging
// replica adopting a promotion that is below the true boundary, which is
// safe: a conservative boundary only replays more shared history, never
// skips divergent records. Caller holds jmu.
func (s *Server) appendEpochMarkLocked(epoch uint64) {
	s.epochMarks = append(s.epochMarks, epochMark{epoch: epoch, seq: s.seq})
	if len(s.epochMarks) > maxEpochMarks {
		s.epochMarks = s.epochMarks[len(s.epochMarks)-maxEpochMarks:]
	}
}

// walAppendEpochLocked frames an opWALEpoch record at the current journal
// position. Epoch changes are rare and are fencing state, so they are
// synced immediately under every policy except FsyncOff. Caller holds jmu.
func (s *Server) walAppendEpochLocked(epoch uint64, leader string) {
	w := s.wal
	if w == nil || w.f == nil {
		return
	}
	b := append(w.scratch[:0], 0, 0, 0, 0, 0, 0, 0, 0)
	b = append(b, recVersion, opWALEpoch)
	b = binary.AppendUvarint(b, s.seq)
	b = binary.AppendUvarint(b, epoch)
	b = appendWALString(b, leader)
	w.scratch = b[:0]
	payload := b[8:]
	binary.LittleEndian.PutUint32(b[0:4], uint32(len(payload)))
	binary.LittleEndian.PutUint32(b[4:8], crc32.ChecksumIEEE(payload))
	n, err := w.f.Write(b)
	w.off += int64(n)
	if err != nil {
		w.lastErr = "append: " + err.Error()
		return
	}
	w.appends++
	w.dirty = true
	if w.policy != FsyncOff {
		if err := w.f.Sync(); err != nil {
			w.lastErr = "fsync: " + err.Error()
		} else {
			w.fsyncs++
			w.dirty = false
		}
	}
}

// ApplyReplicated applies one change from the leader's feed, preserving
// the leader's sequence number — the invariant that keeps every watcher
// and importer cursor valid across failover. Duplicate redelivery (a
// sequence number at or below the local position) is a no-op; a gap in
// the numbering clears the in-memory journal ring, since Changes() relies
// on the ring being contiguous, and watchers behind the gap resync.
func (s *Server) ApplyReplicated(c Change) error {
	if c.Seq == 0 {
		return fmt.Errorf("uddi: replicated change without sequence number")
	}
	if c.Entry.Key == "" {
		return fmt.Errorf("uddi: replicated change %d without service key", c.Seq)
	}
	// The feed is applied by a single goroutine per replica, so reading
	// the position outside the shard lock is race-free here.
	if c.Seq <= s.Seq() {
		return nil
	}
	sh := s.shardFor(c.Entry.Key)
	sh.mu.Lock()
	switch c.Op {
	case OpAdd, OpUpdate:
		sh.entries[c.Entry.Key] = &record{entry: c.Entry.Clone(), expires: c.Expires}
	case OpDelete, OpExpire:
		delete(sh.entries, c.Entry.Key)
	default:
		sh.mu.Unlock()
		return fmt.Errorf("uddi: unknown replicated op %q", c.Op)
	}
	s.shardOps[shardIndex(c.Entry.Key)].Add(1)
	s.appendReplicated(c)
	sh.mu.Unlock()
	return nil
}

// appendReplicated is appendChange under an externally assigned sequence
// number. Caller holds the shard lock for the change's key.
func (s *Server) appendReplicated(c Change) {
	e := c.Entry
	if c.Op == OpDelete || c.Op == OpExpire {
		e = Entry{Key: e.Key, Name: e.Name}
	}
	s.jmu.Lock()
	if c.Seq != s.seq+1 {
		// Non-contiguous feed (the leader's journal outran us and we were
		// re-grounded mid-stream): the ring's slice math assumes contiguous
		// numbering, so it must restart at the new position.
		s.journal = s.journal[:0]
	}
	s.seq = c.Seq
	s.journal = append(s.journal, Change{Seq: c.Seq, Op: c.Op, Entry: e.Clone(), Expires: c.Expires})
	if len(s.journal) > s.jcap {
		s.journal = s.journal[len(s.journal)-s.jcap:]
	}
	s.walAppend(c.Op, e, c.Expires)
	close(s.wake)
	s.wake = make(chan struct{})
	s.jmu.Unlock()
}

// ApplyReplicatedState re-grounds the registry wholesale from a leader's
// state dump: the attach (and re-attach) path, used when a replica joins
// or when the leader's journal no longer covers the replica's cursor.
// Everything local is discarded — entries, journal ring, and the entire
// WAL history, which is reset to a fresh snapshot at the dump's sequence
// number so a later recovery cannot resurrect records from the regime
// this node just left. Fails with ErrStaleEpoch if the dump's epoch is
// behind this node's: a newer regime's state never yields to an older.
func (s *Server) ApplyReplicatedState(entries []Entry, deadlines []time.Time, seq, epoch uint64, leader string) error {
	if len(entries) != len(deadlines) {
		return fmt.Errorf("uddi: state dump with %d entries but %d deadlines", len(entries), len(deadlines))
	}
	if cur, curLeader := s.Epoch(); epoch < cur {
		return fmt.Errorf("uddi: state dump epoch %d behind current %d (leader %s): %w",
			epoch, cur, curLeader, ErrStaleEpoch)
	}
	// Wholesale swap: every shard locked in index order, then the journal
	// lock — the same shard → jmu order every mutator uses.
	for i := range s.shards {
		s.shards[i].mu.Lock()
	}
	for i := range s.shards {
		m := s.shards[i].entries
		for k := range m {
			delete(m, k)
		}
	}
	for i, e := range entries {
		sh := s.shardFor(e.Key)
		sh.entries[e.Key] = &record{entry: e.Clone(), expires: deadlines[i]}
	}
	s.jmu.Lock()
	s.seq = seq
	s.journal = s.journal[:0]
	// The re-ground breaks journal continuity with everything this node
	// served before, so its remembered epoch boundaries no longer describe
	// positions in a history it can replay — old-epoch cursors must resync.
	s.epochMarks = s.epochMarks[:0]
	if epoch >= s.epoch {
		s.epoch, s.epochLeader = epoch, leader
	}
	err := s.walResetLocked(entries, deadlines, seq, s.epoch, s.epochLeader)
	close(s.wake)
	s.wake = make(chan struct{})
	s.jmu.Unlock()
	for i := len(s.shards) - 1; i >= 0; i-- {
		s.shards[i].mu.Unlock()
	}
	return err
}

// walResetLocked discards the entire on-disk history and restarts it at
// seq: every segment and snapshot is removed, a fresh snapshot of the
// given state is written at seq, and a new segment opens at seq+1.
// Called under jmu (and, from ApplyReplicatedState, all shard locks).
func (s *Server) walResetLocked(entries []Entry, deadlines []time.Time, seq, epoch uint64, leader string) error {
	w := s.wal
	if w == nil {
		return nil
	}
	if w.f != nil {
		w.f.Close()
		w.f = nil
	}
	for _, sg := range w.segs {
		os.Remove(sg.path)
	}
	w.segs = w.segs[:0]
	for _, sp := range w.snaps {
		os.Remove(sp.path)
	}
	w.snaps = w.snaps[:0]

	es := append([]Entry(nil), entries...)
	ds := append([]time.Time(nil), deadlines...)
	sort.Sort(&snapOrder{es, ds})
	path := filepath.Join(w.dir, fmt.Sprintf("snap-%016x.snap", seq))
	if err := writeSnapshot(path, seq, es, ds, epoch, leader); err != nil {
		w.lastErr = "reset: " + err.Error()
		return err
	}
	w.snaps = append(w.snaps, walFile{seq: seq, path: path})
	w.snapSeq, w.haveSnap = seq, true
	w.sinceSnap = 0
	w.snapshots++
	if err := w.newSegment(seq + 1); err != nil {
		w.lastErr = "reset: " + err.Error()
		return err
	}
	return nil
}

// ReplState dumps the live registry for replica attach: entries with
// their lease deadlines (sorted by key for stable wire bytes), plus the
// journal position, epoch and leader. The position is read before the
// scan, so the dump may already contain later changes — replaying the
// feed from that position over it is idempotent, the same fuzziness
// contract snapshots have.
func (s *Server) ReplState() (entries []Entry, deadlines []time.Time, seq, epoch uint64, leader string) {
	s.jmu.Lock()
	seq, epoch, leader = s.seq, s.epoch, s.epochLeader
	s.jmu.Unlock()
	now := s.now()
	for i := range s.shards {
		sh := &s.shards[i]
		sh.mu.RLock()
		for _, rec := range sh.entries {
			if now.After(rec.expires) {
				// Lapsed but unswept: the expire record is still coming on
				// the feed, where it deletes an absent key — a no-op.
				continue
			}
			entries = append(entries, rec.entry.Clone())
			deadlines = append(deadlines, rec.expires)
		}
		sh.mu.RUnlock()
	}
	sort.Sort(&snapOrder{entries, deadlines})
	return entries, deadlines, seq, epoch, leader
}

// --- wire types ----------------------------------------------------------

// ReplStatus is a node's replication face: where it is in the journal and
// which regime it belongs to.
type ReplStatus struct {
	Seq    uint64
	Epoch  uint64
	Leader string // the epoch's leader name (endpoint URL)
	Role   string // "leader" or "replica"
	// ReplicaOf is the leader endpoint a replica currently follows;
	// empty on a leader.
	ReplicaOf string
}

// ReplState is a full registry dump for replica attach.
type ReplState struct {
	Seq       uint64
	Epoch     uint64
	Leader    string
	Entries   []Entry
	Deadlines []time.Time
}

// ReplChanges is one replication feed round: ordinary watch output plus
// lease deadlines and the feed's epoch for fencing.
type ReplChanges struct {
	Changes []Change
	Next    uint64
	Resync  bool
	Epoch   uint64
	Leader  string
}

func (s *Server) replStatusNow() ReplStatus {
	s.jmu.Lock()
	st := ReplStatus{Seq: s.seq, Epoch: s.epoch, Leader: s.epochLeader, Role: "leader"}
	s.jmu.Unlock()
	if of := s.ReplicaOf(); of != "" {
		st.Role, st.ReplicaOf = "replica", of
	}
	return st
}

// replWatchFence rejects a feed request from a node that has seen a newer
// epoch than this server: this server is the deposed leader, and must not
// feed anyone its dead regime.
func (s *Server) replWatchFence(reqEpoch uint64) (string, bool) {
	epoch, leader := s.Epoch()
	if reqEpoch > epoch {
		return fmt.Sprintf("feed is epoch %d (leader %s), requester has seen %d",
			epoch, leader, reqEpoch), false
	}
	return "", true
}

// --- XML wire face -------------------------------------------------------

func (s *Server) handleReplStatus(w http.ResponseWriter) {
	st := s.replStatusNow()
	xw := xmltree.NewWriter()
	xw.SelfClose("replStatus",
		"seq", strconv.FormatUint(st.Seq, 10),
		"epoch", strconv.FormatUint(st.Epoch, 10),
		"leader", st.Leader,
		"role", st.Role,
		"replicaOf", st.ReplicaOf,
	)
	writeXML(w, xw.Bytes())
}

func (s *Server) handleReplSync(w http.ResponseWriter) {
	entries, deadlines, seq, epoch, leader := s.ReplState()
	xw := xmltree.NewWriter()
	xw.Open("replState",
		"seq", strconv.FormatUint(seq, 10),
		"epoch", strconv.FormatUint(epoch, 10),
		"leader", leader,
	)
	for i, e := range entries {
		xw.Open("replEntry", "expiresms", strconv.FormatInt(deadlines[i].UnixMilli(), 10))
		entryToXML(xw, e)
		xw.Close()
	}
	writeXML(w, xw.Bytes())
}

func (s *Server) handleReplWatch(ctx context.Context, w http.ResponseWriter, root *xmltree.Element) {
	var since, reqEpoch uint64
	if t := root.ChildText("since"); t != "" {
		v, err := strconv.ParseUint(t, 10, 64)
		if err != nil {
			writeError(w, http.StatusBadRequest, "E_fatalError", "bad since "+t)
			return
		}
		since = v
	}
	if t := root.ChildText("epoch"); t != "" {
		v, err := strconv.ParseUint(t, 10, 64)
		if err != nil {
			writeError(w, http.StatusBadRequest, "E_fatalError", "bad epoch "+t)
			return
		}
		reqEpoch = v
	}
	if info, ok := s.replWatchFence(reqEpoch); !ok {
		writeError(w, http.StatusConflict, "E_staleEpoch", info)
		return
	}
	timeout, err := parseMillis(root, "timeoutms")
	if err != nil {
		writeError(w, http.StatusBadRequest, "E_fatalError", err.Error())
		return
	}
	if timeout > maxWatchTimeout {
		timeout = maxWatchTimeout
	}
	changes, next, _, resync, err := s.WatchChangesEpoch(ctx, since, reqEpoch, timeout, true)
	if err != nil {
		// Client went away mid-poll; nothing useful to write.
		return
	}
	epoch, leader := s.Epoch()
	xw := xmltree.NewWriter()
	xw.Open("replChangeList",
		"next", strconv.FormatUint(next, 10),
		"resync", strconv.FormatBool(resync),
		"epoch", strconv.FormatUint(epoch, 10),
		"leader", leader,
	)
	for _, c := range changes {
		switch c.Op {
		case OpAdd, OpUpdate:
			var expMS int64
			if !c.Expires.IsZero() {
				expMS = c.Expires.UnixMilli()
			}
			xw.Open("replChange",
				"seq", strconv.FormatUint(c.Seq, 10),
				"op", string(c.Op),
				"expiresms", strconv.FormatInt(expMS, 10),
			)
			entryToXML(xw, c.Entry)
			xw.Close()
		default:
			xw.SelfClose("replChange",
				"seq", strconv.FormatUint(c.Seq, 10),
				"op", string(c.Op),
				"serviceKey", c.Entry.Key,
				"name", c.Entry.Name,
			)
		}
	}
	writeXML(w, xw.Bytes())
}

// --- client side ---------------------------------------------------------

// ReplStatus asks an endpoint where it stands: journal position, epoch,
// role. The election probe.
func (c *Client) ReplStatus(ctx context.Context) (ReplStatus, error) {
	if body, ok, err := c.binExchange(ctx, encodeBinReplStatusReq()); err != nil {
		return ReplStatus{}, err
	} else if ok {
		return decodeBinReplStatus(body)
	}
	w := xmltree.NewWriter()
	w.Open("repl_status")
	root, err := c.roundTrip(ctx, w.Bytes())
	if err != nil {
		return ReplStatus{}, err
	}
	if root.Name.Local != "replStatus" {
		return ReplStatus{}, fmt.Errorf("uddi: repl_status response root %s", root.Name.Local)
	}
	var st ReplStatus
	if st.Seq, err = strconv.ParseUint(root.Attr("seq"), 10, 64); err != nil {
		return ReplStatus{}, fmt.Errorf("uddi: bad replStatus seq: %w", err)
	}
	if st.Epoch, err = strconv.ParseUint(root.Attr("epoch"), 10, 64); err != nil {
		return ReplStatus{}, fmt.Errorf("uddi: bad replStatus epoch: %w", err)
	}
	st.Leader = root.Attr("leader")
	st.Role = root.Attr("role")
	st.ReplicaOf = root.Attr("replicaOf")
	return st, nil
}

// ReplSync fetches the leader's full state dump — the attach path.
func (c *Client) ReplSync(ctx context.Context) (ReplState, error) {
	if body, ok, err := c.binExchange(ctx, encodeBinReplSyncReq()); err != nil {
		return ReplState{}, err
	} else if ok {
		return decodeBinReplState(body)
	}
	w := xmltree.NewWriter()
	w.Open("repl_sync")
	root, err := c.roundTrip(ctx, w.Bytes())
	if err != nil {
		return ReplState{}, err
	}
	if root.Name.Local != "replState" {
		return ReplState{}, fmt.Errorf("uddi: repl_sync response root %s", root.Name.Local)
	}
	var st ReplState
	if st.Seq, err = strconv.ParseUint(root.Attr("seq"), 10, 64); err != nil {
		return ReplState{}, fmt.Errorf("uddi: bad replState seq: %w", err)
	}
	if st.Epoch, err = strconv.ParseUint(root.Attr("epoch"), 10, 64); err != nil {
		return ReplState{}, fmt.Errorf("uddi: bad replState epoch: %w", err)
	}
	st.Leader = root.Attr("leader")
	for _, el := range root.All("replEntry") {
		expMS, err := strconv.ParseInt(el.Attr("expiresms"), 10, 64)
		if err != nil {
			return ReplState{}, fmt.Errorf("uddi: bad replEntry expiresms: %w", err)
		}
		svc := el.Child("service")
		if svc == nil {
			return ReplState{}, fmt.Errorf("uddi: replEntry without service")
		}
		e, err := entryFromXML(svc)
		if err != nil {
			return ReplState{}, err
		}
		st.Entries = append(st.Entries, e)
		st.Deadlines = append(st.Deadlines, time.UnixMilli(expMS))
	}
	return st, nil
}

// ReplWatch long-polls the leader's feed from since, announcing the
// highest epoch this replica has seen so a deposed leader fences itself.
func (c *Client) ReplWatch(ctx context.Context, since, epoch uint64, timeout time.Duration) (ReplChanges, error) {
	if body, ok, err := c.binExchange(ctx, encodeBinReplWatchReq(since, epoch, timeout)); err != nil {
		return ReplChanges{}, err
	} else if ok {
		return decodeBinReplChanges(body)
	}
	w := xmltree.NewWriter()
	w.Open("repl_watch")
	w.Leaf("since", strconv.FormatUint(since, 10))
	w.Leaf("epoch", strconv.FormatUint(epoch, 10))
	if timeout > 0 {
		w.Leaf("timeoutms", strconv.Itoa(int(timeout/time.Millisecond)))
	}
	root, err := c.roundTrip(ctx, w.Bytes())
	if err != nil {
		return ReplChanges{}, err
	}
	if root.Name.Local != "replChangeList" {
		return ReplChanges{}, fmt.Errorf("uddi: repl_watch response root %s", root.Name.Local)
	}
	var rc ReplChanges
	if rc.Next, err = strconv.ParseUint(root.Attr("next"), 10, 64); err != nil {
		return ReplChanges{}, fmt.Errorf("uddi: bad replChangeList next: %w", err)
	}
	rc.Resync = root.Attr("resync") == "true"
	if rc.Epoch, err = strconv.ParseUint(root.Attr("epoch"), 10, 64); err != nil {
		return ReplChanges{}, fmt.Errorf("uddi: bad replChangeList epoch: %w", err)
	}
	rc.Leader = root.Attr("leader")
	for _, el := range root.All("replChange") {
		seq, err := strconv.ParseUint(el.Attr("seq"), 10, 64)
		if err != nil {
			return ReplChanges{}, fmt.Errorf("uddi: bad replChange seq: %w", err)
		}
		ch := Change{Seq: seq, Op: ChangeOp(el.Attr("op"))}
		switch ch.Op {
		case OpAdd, OpUpdate:
			expMS, err := strconv.ParseInt(el.Attr("expiresms"), 10, 64)
			if err != nil {
				return ReplChanges{}, fmt.Errorf("uddi: bad replChange expiresms: %w", err)
			}
			if expMS != 0 {
				ch.Expires = time.UnixMilli(expMS)
			}
			svc := el.Child("service")
			if svc == nil {
				return ReplChanges{}, fmt.Errorf("uddi: %s replChange without service", ch.Op)
			}
			if ch.Entry, err = entryFromXML(svc); err != nil {
				return ReplChanges{}, err
			}
		case OpDelete, OpExpire:
			ch.Entry = Entry{Key: el.Attr("serviceKey"), Name: el.Attr("name")}
		default:
			return ReplChanges{}, fmt.Errorf("uddi: unknown replChange op %q", el.Attr("op"))
		}
		rc.Changes = append(rc.Changes, ch)
	}
	return rc, nil
}
