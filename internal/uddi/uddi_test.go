package uddi

import (
	"context"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"testing/quick"
	"time"
)

func lampEntry() Entry {
	return Entry{
		Name:        "jini:lamp-1",
		Description: "Living room lamp",
		AccessPoint: "http://10.0.0.1:8800/services/jini:lamp-1",
		TModel:      "Lamp",
		Categories:  map[string]string{"room": "living", "middleware": "jini"},
		WSDL:        "<definitions name=\"Lamp\"/>",
	}
}

func TestGlobMatch(t *testing.T) {
	tests := []struct {
		pattern, s string
		want       bool
	}{
		{"lamp", "lamp", true},
		{"lamp", "lamp-1", false},
		{"lamp%", "lamp-1", true},
		{"%lamp%", "a lamp here", true},
		{"%lamp", "floor lamp", true},
		{"%", "", true},
		{"%", "anything", true},
		{"a%b%c", "aXXbYYc", true},
		{"a%b%c", "acb", false},
		{"", "", true},
		{"", "x", false},
	}
	for _, tt := range tests {
		if got := globMatch(tt.pattern, tt.s); got != tt.want {
			t.Errorf("globMatch(%q, %q) = %v, want %v", tt.pattern, tt.s, got, tt.want)
		}
	}
}

func TestServerSaveFindDelete(t *testing.T) {
	s := NewServer()
	key := s.Save(lampEntry(), time.Minute)
	if key == "" || !strings.HasPrefix(key, "uuid:") {
		t.Fatalf("Save key = %q", key)
	}
	got := s.Find(Query{TModel: "Lamp"})
	if len(got) != 1 || got[0].Name != "jini:lamp-1" {
		t.Fatalf("Find = %+v", got)
	}
	if got[0].Categories["room"] != "living" {
		t.Errorf("categories lost: %+v", got[0].Categories)
	}
	// Query filters.
	if n := len(s.Find(Query{TModel: "VCR"})); n != 0 {
		t.Errorf("TModel filter failed: %d", n)
	}
	if n := len(s.Find(Query{Categories: map[string]string{"room": "kitchen"}})); n != 0 {
		t.Errorf("category filter failed: %d", n)
	}
	if n := len(s.Find(Query{Name: "jini:%"})); n != 1 {
		t.Errorf("name glob failed: %d", n)
	}
	s.Delete(key)
	if n := len(s.Find(Query{})); n != 0 {
		t.Errorf("entry survived delete: %d", n)
	}
}

func TestServerReplaceByKey(t *testing.T) {
	s := NewServer()
	e := lampEntry()
	key := s.Save(e, time.Minute)
	e.Key = key
	e.Description = "updated"
	key2 := s.Save(e, time.Minute)
	if key2 != key {
		t.Fatalf("replace produced new key %q != %q", key2, key)
	}
	got, ok := s.Get(key)
	if !ok || got.Description != "updated" {
		t.Errorf("Get after replace = %+v, %v", got, ok)
	}
	if s.Len() != 1 {
		t.Errorf("Len = %d, want 1", s.Len())
	}
}

func TestServerExpiry(t *testing.T) {
	s := NewServer()
	clk := newFakeClock(time.Unix(1000, 0))
	s.SetClock(clk.now)
	key := s.Save(lampEntry(), 10*time.Second)
	if _, ok := s.Get(key); !ok {
		t.Fatal("entry not found before expiry")
	}
	clk.advance(11 * time.Second)
	if _, ok := s.Get(key); ok {
		t.Error("entry found after expiry")
	}
	if n := len(s.Find(Query{})); n != 0 {
		t.Errorf("expired entry returned by Find: %d", n)
	}
	if s.Len() != 0 {
		t.Errorf("Len = %d after expiry", s.Len())
	}
	// Refreshing before expiry extends the lifetime.
	key2 := s.Save(lampEntry(), 10*time.Second)
	clk.advance(8 * time.Second)
	e, _ := s.Get(key2)
	e.Key = key2
	s.Save(e, 10*time.Second)
	clk.advance(8 * time.Second)
	if _, ok := s.Get(key2); !ok {
		t.Error("refreshed entry expired")
	}
}

func TestClientServerRoundTrip(t *testing.T) {
	s := NewServer()
	srv := httptest.NewServer(s.Handler())
	defer srv.Close()
	c := &Client{URL: srv.URL}
	ctx := context.Background()

	key, err := c.Save(ctx, lampEntry(), 30*time.Second)
	if err != nil {
		t.Fatalf("Save: %v", err)
	}
	got, found, err := c.Get(ctx, key)
	if err != nil || !found {
		t.Fatalf("Get: %v %v", found, err)
	}
	want := lampEntry()
	want.Key = key
	if got.Name != want.Name || got.AccessPoint != want.AccessPoint || got.TModel != want.TModel ||
		got.Description != want.Description || got.WSDL != want.WSDL {
		t.Errorf("Get = %+v, want %+v", got, want)
	}
	if got.Categories["middleware"] != "jini" {
		t.Errorf("categories = %+v", got.Categories)
	}

	list, err := c.Find(ctx, Query{Categories: map[string]string{"middleware": "jini"}})
	if err != nil || len(list) != 1 {
		t.Fatalf("Find = %+v, %v", list, err)
	}

	if err := c.Delete(ctx, key); err != nil {
		t.Fatalf("Delete: %v", err)
	}
	if _, found, _ := c.Get(ctx, key); found {
		t.Error("entry survived delete")
	}
}

func TestClientErrors(t *testing.T) {
	s := NewServer()
	srv := httptest.NewServer(s.Handler())
	defer srv.Close()
	c := &Client{URL: srv.URL}
	ctx := context.Background()

	// Nameless entry is rejected by the server.
	if _, err := c.Save(ctx, Entry{}, 0); err == nil {
		t.Error("nameless Save accepted")
	}
	// Unreachable server.
	dead := &Client{URL: "http://127.0.0.1:1/uddi"}
	if _, err := dead.Find(ctx, Query{}); err == nil {
		t.Error("dead server Find succeeded")
	}
}

func TestServerHandlerRejectsBadRequests(t *testing.T) {
	s := NewServer()
	srv := httptest.NewServer(s.Handler())
	defer srv.Close()
	c := &Client{URL: srv.URL}

	// Unknown root element.
	if _, err := c.roundTrip(context.Background(), []byte("<bogus_request/>")); err == nil {
		t.Error("bogus request accepted")
	}
	// Malformed XML.
	if _, err := c.roundTrip(context.Background(), []byte("<<<")); err == nil {
		t.Error("malformed request accepted")
	}
}

func TestConcurrentSaveFind(t *testing.T) {
	s := NewServer()
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func(n int) {
			defer wg.Done()
			for j := 0; j < 50; j++ {
				e := lampEntry()
				e.Name = "svc-" + string(rune('a'+n))
				s.Save(e, time.Minute)
				s.Find(Query{Name: "svc-%"})
			}
		}(i)
	}
	wg.Wait()
	if got := s.Len(); got != 8 {
		// Each goroutine saved under a fresh key every iteration, so 8*50
		// entries; Len counts live ones.
		if got != 8*50 {
			t.Errorf("Len = %d, want %d", got, 8*50)
		}
	}
	saves, finds := s.Stats()
	if saves != 400 || finds != 400 {
		t.Errorf("Stats = %d, %d, want 400, 400", saves, finds)
	}
}

// TestQuickFindConsistency: every saved, unexpired entry is findable by
// the empty query, by its exact name, and by its tModel.
func TestQuickFindConsistency(t *testing.T) {
	fn := func(names []string) bool {
		s := NewServer()
		saved := 0
		for i, n := range names {
			if n == "" || strings.ContainsAny(n, "%") {
				continue
			}
			s.Save(Entry{Name: n, TModel: "T" + string(rune('A'+i%3))}, time.Minute)
			saved++
		}
		if len(s.Find(Query{})) != saved {
			return false
		}
		for _, e := range s.Find(Query{}) {
			byName := s.Find(Query{Name: e.Name})
			found := false
			for _, g := range byName {
				if g.Key == e.Key {
					found = true
				}
			}
			if !found {
				return false
			}
		}
		return true
	}
	if err := quick.Check(fn, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}
