package uddi

import (
	"bytes"
	"context"
	"fmt"
	"io"
	"net/http"
	"sort"
	"strconv"
	"strings"
	"time"

	"homeconnect/internal/service"
	"homeconnect/internal/transport"
	"homeconnect/internal/xmltree"
)

// Client talks to a registry server over HTTP.
type Client struct {
	// HTTP is the underlying client; the shared keep-alive transport
	// (internal/transport) if nil.
	HTTP *http.Client
	// URL is the registry endpoint.
	URL string
}

func (c *Client) httpClient() *http.Client {
	if c.HTTP != nil {
		return c.HTTP
	}
	return transport.Client()
}

// roundTrip POSTs doc and returns the parsed response root.
func (c *Client) roundTrip(ctx context.Context, doc []byte) (*xmltree.Element, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, c.URL, bytes.NewReader(doc))
	if err != nil {
		return nil, fmt.Errorf("uddi: build request: %w", err)
	}
	req.Header.Set("Content-Type", `text/xml; charset="utf-8"`)
	resp, err := c.httpClient().Do(req)
	if err != nil {
		return nil, fmt.Errorf("uddi: %w", err)
	}
	defer resp.Body.Close()
	data, err := io.ReadAll(io.LimitReader(resp.Body, maxRequestBytes))
	if err != nil {
		return nil, fmt.Errorf("uddi: read response: %w", err)
	}
	root, err := xmltree.Parse(data)
	if err != nil {
		return nil, fmt.Errorf("uddi: parse response: %w", err)
	}
	if root.Name.Local == "dispositionReport" && root.Attr("result") == "error" {
		code, info := root.ChildText("errCode"), root.ChildText("errInfo")
		// Authentication refusals surface as typed sentinels so callers
		// (and peer-link status) can tell a locked door from a broken one.
		// The sentinel rides Unwrap rather than %w because the server's
		// message already spells it out.
		switch code {
		case "E_authTokenRequired":
			return nil, &authError{msg: fmt.Sprintf("uddi: %s: %s", code, info), kind: service.ErrUnauthenticated}
		case "E_userMismatch":
			return nil, &authError{msg: fmt.Sprintf("uddi: %s: %s", code, info), kind: service.ErrForbidden}
		}
		return nil, fmt.Errorf("uddi: %s: %s", code, info)
	}
	if resp.StatusCode != http.StatusOK {
		return nil, fmt.Errorf("uddi: http status %s", resp.Status)
	}
	return root, nil
}

// authError is a registry auth refusal: the server's message verbatim,
// unwrapping to the matching service sentinel for errors.Is.
type authError struct {
	msg  string
	kind error
}

func (e *authError) Error() string { return e.msg }

func (e *authError) Unwrap() error { return e.kind }

// Save publishes the entry with the given TTL and returns the assigned
// service key.
func (c *Client) Save(ctx context.Context, e Entry, ttl time.Duration) (string, error) {
	w := xmltree.NewWriter()
	w.Open("save_service")
	entryToXML(w, e)
	if ttl > 0 {
		w.Leaf("ttlms", strconv.Itoa(int(ttl/time.Millisecond)))
	}
	root, err := c.roundTrip(ctx, w.Bytes())
	if err != nil {
		return "", err
	}
	key := root.ChildText("serviceKey")
	if key == "" {
		return "", fmt.Errorf("uddi: save_service response missing serviceKey")
	}
	return key, nil
}

// SaveAll publishes every entry under one TTL in a single round trip and
// returns the assigned keys in order — the batched refresh gateways use
// so N exports cost one request, not N.
func (c *Client) SaveAll(ctx context.Context, entries []Entry, ttl time.Duration) ([]string, error) {
	if len(entries) == 0 {
		return nil, nil
	}
	w := xmltree.NewWriter()
	w.Open("save_services")
	if ttl > 0 {
		w.Leaf("ttlms", strconv.Itoa(int(ttl/time.Millisecond)))
	}
	for _, e := range entries {
		entryToXML(w, e)
	}
	root, err := c.roundTrip(ctx, w.Bytes())
	if err != nil {
		return nil, err
	}
	var keys []string
	for _, el := range root.All("serviceKey") {
		keys = append(keys, strings.TrimSpace(el.Text))
	}
	if len(keys) != len(entries) {
		return nil, fmt.Errorf("uddi: save_services returned %d keys for %d entries", len(keys), len(entries))
	}
	return keys, nil
}

// Watch long-polls the registry's change journal: it blocks up to timeout
// for changes with sequence numbers greater than since, returning them in
// order plus the cursor to resume from. resync reports that the journal
// no longer covers since (watcher too far behind, or registry restarted):
// the caller must drop everything it cached and resume from next. A zero
// timeout returns immediately, which doubles as a liveness probe.
func (c *Client) Watch(ctx context.Context, since uint64, timeout time.Duration) (changes []Change, next uint64, resync bool, err error) {
	w := xmltree.NewWriter()
	w.Open("watch")
	w.Leaf("since", strconv.FormatUint(since, 10))
	if timeout > 0 {
		w.Leaf("timeoutms", strconv.Itoa(int(timeout/time.Millisecond)))
	}
	root, err := c.roundTrip(ctx, w.Bytes())
	if err != nil {
		return nil, 0, false, err
	}
	return decodeChangeList(root)
}

// Delete removes the registration with the given key.
func (c *Client) Delete(ctx context.Context, key string) error {
	w := xmltree.NewWriter()
	w.Open("delete_service")
	w.Leaf("serviceKey", key)
	_, err := c.roundTrip(ctx, w.Bytes())
	return err
}

// Find runs an inquiry and returns matching entries sorted by name.
func (c *Client) Find(ctx context.Context, q Query) ([]Entry, error) {
	entries, _, err := c.FindSeq(ctx, q)
	return entries, err
}

// FindSeq is Find plus the registry's journal sequence number observed at
// read time. A cache filled from the result is current through that
// sequence: if a watch later reports a change with a higher number for an
// entry, the cached copy is stale; a concurrent change with a lower or
// equal number was already reflected in the inquiry.
func (c *Client) FindSeq(ctx context.Context, q Query) ([]Entry, uint64, error) {
	w := xmltree.NewWriter()
	w.Open("find_service")
	if q.Name != "" {
		w.Leaf("name", q.Name)
	}
	if q.TModel != "" {
		w.Leaf("tModel", q.TModel)
	}
	keys := make([]string, 0, len(q.Categories))
	for k := range q.Categories {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, k := range keys {
		w.SelfClose("category", "keyName", k, "keyValue", q.Categories[k])
	}
	root, err := c.roundTrip(ctx, w.Bytes())
	if err != nil {
		return nil, 0, err
	}
	// Older registries omit the attribute; zero means "no fence".
	seq, _ := strconv.ParseUint(root.Attr("seq"), 10, 64)
	var out []Entry
	for _, svc := range root.All("service") {
		e, err := entryFromXML(svc)
		if err != nil {
			return nil, 0, err
		}
		out = append(out, e)
	}
	return out, seq, nil
}

// Get fetches one entry by key; found is false for unknown or expired
// keys.
func (c *Client) Get(ctx context.Context, key string) (Entry, bool, error) {
	w := xmltree.NewWriter()
	w.Open("get_serviceDetail")
	w.Leaf("serviceKey", key)
	root, err := c.roundTrip(ctx, w.Bytes())
	if err != nil {
		return Entry{}, false, err
	}
	svc := root.Child("service")
	if svc == nil {
		return Entry{}, false, nil
	}
	e, err := entryFromXML(svc)
	if err != nil {
		return Entry{}, false, err
	}
	return e, true, nil
}
