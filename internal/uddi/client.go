package uddi

import (
	"bytes"
	"context"
	"fmt"
	"io"
	"net/http"
	"sort"
	"strconv"
	"time"

	"homeconnect/internal/xmltree"
)

// Client talks to a registry server over HTTP.
type Client struct {
	// HTTP is the underlying client; http.DefaultClient if nil.
	HTTP *http.Client
	// URL is the registry endpoint.
	URL string
}

func (c *Client) httpClient() *http.Client {
	if c.HTTP != nil {
		return c.HTTP
	}
	return http.DefaultClient
}

// roundTrip POSTs doc and returns the parsed response root.
func (c *Client) roundTrip(ctx context.Context, doc []byte) (*xmltree.Element, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, c.URL, bytes.NewReader(doc))
	if err != nil {
		return nil, fmt.Errorf("uddi: build request: %w", err)
	}
	req.Header.Set("Content-Type", `text/xml; charset="utf-8"`)
	resp, err := c.httpClient().Do(req)
	if err != nil {
		return nil, fmt.Errorf("uddi: %w", err)
	}
	defer resp.Body.Close()
	data, err := io.ReadAll(io.LimitReader(resp.Body, maxRequestBytes))
	if err != nil {
		return nil, fmt.Errorf("uddi: read response: %w", err)
	}
	root, err := xmltree.Parse(data)
	if err != nil {
		return nil, fmt.Errorf("uddi: parse response: %w", err)
	}
	if root.Name.Local == "dispositionReport" && root.Attr("result") == "error" {
		return nil, fmt.Errorf("uddi: %s: %s", root.ChildText("errCode"), root.ChildText("errInfo"))
	}
	if resp.StatusCode != http.StatusOK {
		return nil, fmt.Errorf("uddi: http status %s", resp.Status)
	}
	return root, nil
}

// Save publishes the entry with the given TTL and returns the assigned
// service key.
func (c *Client) Save(ctx context.Context, e Entry, ttl time.Duration) (string, error) {
	w := xmltree.NewWriter()
	w.Open("save_service")
	entryToXML(w, e)
	if ttl > 0 {
		w.Leaf("ttlms", strconv.Itoa(int(ttl/time.Millisecond)))
	}
	root, err := c.roundTrip(ctx, w.Bytes())
	if err != nil {
		return "", err
	}
	key := root.ChildText("serviceKey")
	if key == "" {
		return "", fmt.Errorf("uddi: save_service response missing serviceKey")
	}
	return key, nil
}

// Delete removes the registration with the given key.
func (c *Client) Delete(ctx context.Context, key string) error {
	w := xmltree.NewWriter()
	w.Open("delete_service")
	w.Leaf("serviceKey", key)
	_, err := c.roundTrip(ctx, w.Bytes())
	return err
}

// Find runs an inquiry and returns matching entries sorted by name.
func (c *Client) Find(ctx context.Context, q Query) ([]Entry, error) {
	w := xmltree.NewWriter()
	w.Open("find_service")
	if q.Name != "" {
		w.Leaf("name", q.Name)
	}
	if q.TModel != "" {
		w.Leaf("tModel", q.TModel)
	}
	keys := make([]string, 0, len(q.Categories))
	for k := range q.Categories {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, k := range keys {
		w.SelfClose("category", "keyName", k, "keyValue", q.Categories[k])
	}
	root, err := c.roundTrip(ctx, w.Bytes())
	if err != nil {
		return nil, err
	}
	var out []Entry
	for _, svc := range root.All("service") {
		e, err := entryFromXML(svc)
		if err != nil {
			return nil, err
		}
		out = append(out, e)
	}
	return out, nil
}

// Get fetches one entry by key; found is false for unknown or expired
// keys.
func (c *Client) Get(ctx context.Context, key string) (Entry, bool, error) {
	w := xmltree.NewWriter()
	w.Open("get_serviceDetail")
	w.Leaf("serviceKey", key)
	root, err := c.roundTrip(ctx, w.Bytes())
	if err != nil {
		return Entry{}, false, err
	}
	svc := root.Child("service")
	if svc == nil {
		return Entry{}, false, nil
	}
	e, err := entryFromXML(svc)
	if err != nil {
		return Entry{}, false, err
	}
	return e, true, nil
}
