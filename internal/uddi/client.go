package uddi

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"io"
	"net/http"
	"sort"
	"strconv"
	"strings"
	"time"

	"homeconnect/internal/transport"
	"homeconnect/internal/xmltree"
)

// Client talks to a registry server over HTTP — or, when a Dialer is
// set and the server's authority has negotiated it, over the binary
// fast path, with the identical UDDI document tunneled in a binary
// frame instead of an HTTP POST.
type Client struct {
	// HTTP is the underlying client; the Dialer's HTTP side when a
	// Dialer is set, else the shared keep-alive transport.
	HTTP *http.Client
	// Dialer, when set, owns protocol negotiation for this registry.
	Dialer *transport.Dialer
	// URL is the registry endpoint; ignored when Resolver is set.
	URL string
	// Resolver, when set, replaces URL with a replica-set endpoint list:
	// every operation goes to Resolver.Current(), and an endpoint that is
	// down or answers ErrNotLeader moves the client to the next one (or
	// straight to the leader the replica named) before the error surfaces.
	Resolver *transport.Resolver
}

// endpoint is the registry URL the next attempt should use.
func (c *Client) endpoint() string {
	if c.Resolver != nil {
		return c.Resolver.Current()
	}
	return c.URL
}

func (c *Client) httpClient() *http.Client {
	if c.HTTP != nil {
		return c.HTTP
	}
	if c.Dialer != nil {
		return c.Dialer.HTTPClient()
	}
	return transport.Client()
}

// roundTrip POSTs doc and returns the parsed response root. With a
// Dialer, the binary fast path is tried first; because the whole
// request — watch cursors included — is the document body, a downgrade
// to SOAP/HTTP simply re-sends the same bytes and loses nothing. With a
// Resolver, failover-worthy errors (endpoint down, ErrNotLeader) move
// to the next endpoint before surfacing.
func (c *Client) roundTrip(ctx context.Context, doc []byte) (*xmltree.Element, error) {
	attempts := 1
	if c.Resolver != nil {
		// One extra attempt over the set size, so a not-leader redirect to
		// a pinned leader still has a try left after a full rotation.
		attempts = c.Resolver.Len() + 1
	}
	var root *xmltree.Element
	var err error
	for i := 0; i < attempts; i++ {
		url := c.endpoint()
		root, err = c.roundTripAt(ctx, url, doc)
		if err == nil || c.Resolver == nil || ctx.Err() != nil || !FailoverWorthy(err) {
			return root, err
		}
		if h := LeaderHint(err); h != "" && c.Resolver.Pin(h) {
			continue
		}
		c.Resolver.Fail(url)
	}
	return root, err
}

// roundTripAt is one roundTrip attempt against one endpoint.
func (c *Client) roundTripAt(ctx context.Context, url string, doc []byte) (*xmltree.Element, error) {
	var data []byte
	var status int
	var statusText string
	if c.Dialer != nil {
		res, err := c.Dialer.Exchange(ctx, url, `text/xml; charset="utf-8"`, "", doc)
		switch {
		case err == nil:
			data, status = res.Body, res.Status
			statusText = fmt.Sprintf("%d %s", status, http.StatusText(status))
			if len(data) > maxRequestBytes {
				data = data[:maxRequestBytes]
			}
		case errors.Is(err, transport.ErrBinaryUnavailable):
			// fall through to HTTP
		default:
			return nil, fmt.Errorf("uddi: %w", &endpointDownError{err})
		}
	}
	if data == nil {
		req, err := http.NewRequestWithContext(ctx, http.MethodPost, url, bytes.NewReader(doc))
		if err != nil {
			return nil, fmt.Errorf("uddi: build request: %w", err)
		}
		req.Header.Set("Content-Type", `text/xml; charset="utf-8"`)
		resp, err := c.httpClient().Do(req)
		if err != nil {
			return nil, fmt.Errorf("uddi: %w", &endpointDownError{err})
		}
		defer resp.Body.Close()
		data, err = io.ReadAll(io.LimitReader(resp.Body, maxRequestBytes))
		if err != nil {
			return nil, fmt.Errorf("uddi: read response: %w", err)
		}
		status, statusText = resp.StatusCode, resp.Status
	}
	root, err := xmltree.Parse(data)
	if err != nil {
		return nil, fmt.Errorf("uddi: parse response: %w", err)
	}
	if root.Name.Local == "dispositionReport" && root.Attr("result") == "error" {
		// Refusals surface as typed sentinels — auth errors so callers can
		// tell a locked door from a broken one, replication errors so the
		// failover loop can tell a replica from a dead endpoint. The same
		// mapping serves the binary path (binErrorOf).
		return nil, binErrorOf(root.ChildText("errCode"), root.ChildText("errInfo"))
	}
	if status != http.StatusOK {
		return nil, fmt.Errorf("uddi: http status %s", statusText)
	}
	return root, nil
}

// binExchange sends a binary-native registry record over the fast path.
// ok=false means the fast path is not available (no dialer, negotiation
// refused, or a server that only speaks XML answered) and the caller
// must re-send the operation as an XML document; err is a hard failure
// — including a decoded registry refusal, which must NOT downgrade:
// a locked door answers the same on every wire. Failover-worthy errors
// rotate through the Resolver exactly as on the XML path.
func (c *Client) binExchange(ctx context.Context, req []byte) (body []byte, ok bool, err error) {
	if c.Dialer == nil {
		return nil, false, nil
	}
	attempts := 1
	if c.Resolver != nil {
		attempts = c.Resolver.Len() + 1
	}
	for i := 0; i < attempts; i++ {
		url := c.endpoint()
		body, ok, err = c.binExchangeAt(ctx, url, req)
		if err == nil || c.Resolver == nil || ctx.Err() != nil || !FailoverWorthy(err) {
			return body, ok, err
		}
		if h := LeaderHint(err); h != "" && c.Resolver.Pin(h) {
			continue
		}
		c.Resolver.Fail(url)
	}
	return body, ok, err
}

// binExchangeAt is one binExchange attempt against one endpoint.
func (c *Client) binExchangeAt(ctx context.Context, url string, req []byte) (body []byte, ok bool, err error) {
	res, err := c.Dialer.Exchange(ctx, url, BinContentType, "", req)
	if err != nil {
		if errors.Is(err, transport.ErrBinaryUnavailable) {
			return nil, false, nil
		}
		return nil, false, fmt.Errorf("uddi: %w", &endpointDownError{err})
	}
	if len(res.Body) > 0 && res.Body[0] == binUDDIVersion {
		// Pre-decode redirect refusals here: by the time the caller decodes
		// the record the endpoint choice is already spent, so a replica's
		// E_notLeader must become an error now for the failover loop to act.
		if len(res.Body) >= 2 && res.Body[1] == binUDDIError {
			r := &walReader{b: res.Body, off: 2}
			code, info := r.str(), r.str()
			if r.err == nil && (code == "E_notLeader" || code == "E_staleEpoch") {
				return nil, false, binErrorOf(code, info)
			}
		}
		return res.Body, true, nil
	}
	// The frame went through but the answer is not a binary record: a
	// registry that predates the native encoding tunneled it to its XML
	// handler, which could not parse it. Re-send as XML.
	return nil, false, nil
}

// authError is a registry auth refusal: the server's message verbatim,
// unwrapping to the matching service sentinel for errors.Is.
type authError struct {
	msg  string
	kind error
}

func (e *authError) Error() string { return e.msg }

func (e *authError) Unwrap() error { return e.kind }

// Save publishes the entry with the given TTL and returns the assigned
// service key.
func (c *Client) Save(ctx context.Context, e Entry, ttl time.Duration) (string, error) {
	if body, ok, err := c.binExchange(ctx, encodeBinSaveAll([]Entry{e}, ttl)); err != nil {
		return "", err
	} else if ok {
		keys, err := decodeBinKeys(body)
		if err != nil {
			return "", err
		}
		if len(keys) != 1 {
			return "", fmt.Errorf("uddi: save_service returned %d keys", len(keys))
		}
		return keys[0], nil
	}
	w := xmltree.NewWriter()
	w.Open("save_service")
	entryToXML(w, e)
	if ttl > 0 {
		w.Leaf("ttlms", strconv.Itoa(int(ttl/time.Millisecond)))
	}
	root, err := c.roundTrip(ctx, w.Bytes())
	if err != nil {
		return "", err
	}
	key := root.ChildText("serviceKey")
	if key == "" {
		return "", fmt.Errorf("uddi: save_service response missing serviceKey")
	}
	return key, nil
}

// SaveAll publishes every entry under one TTL in a single round trip and
// returns the assigned keys in order — the batched refresh gateways use
// so N exports cost one request, not N.
func (c *Client) SaveAll(ctx context.Context, entries []Entry, ttl time.Duration) ([]string, error) {
	if len(entries) == 0 {
		return nil, nil
	}
	if body, ok, err := c.binExchange(ctx, encodeBinSaveAll(entries, ttl)); err != nil {
		return nil, err
	} else if ok {
		keys, err := decodeBinKeys(body)
		if err != nil {
			return nil, err
		}
		if len(keys) != len(entries) {
			return nil, fmt.Errorf("uddi: save_services returned %d keys for %d entries", len(keys), len(entries))
		}
		return keys, nil
	}
	w := xmltree.NewWriter()
	w.Open("save_services")
	if ttl > 0 {
		w.Leaf("ttlms", strconv.Itoa(int(ttl/time.Millisecond)))
	}
	for _, e := range entries {
		entryToXML(w, e)
	}
	root, err := c.roundTrip(ctx, w.Bytes())
	if err != nil {
		return nil, err
	}
	var keys []string
	for _, el := range root.All("serviceKey") {
		keys = append(keys, strings.TrimSpace(el.Text))
	}
	if len(keys) != len(entries) {
		return nil, fmt.Errorf("uddi: save_services returned %d keys for %d entries", len(keys), len(entries))
	}
	return keys, nil
}

// Watch long-polls the registry's change journal: it blocks up to timeout
// for changes with sequence numbers greater than since, returning them in
// order plus the cursor to resume from. resync reports that the journal
// no longer covers since (watcher too far behind, or registry restarted):
// the caller must drop everything it cached and resume from next. A zero
// timeout returns immediately, which doubles as a liveness probe.
func (c *Client) Watch(ctx context.Context, since uint64, timeout time.Duration) (changes []Change, next uint64, resync bool, err error) {
	changes, next, _, resync, err = c.WatchEpoch(ctx, since, 0, timeout)
	return changes, next, resync, err
}

// WatchEpoch is Watch carrying the replication epoch the cursor was
// handed out under (0 = unknown), and returning the server's current
// epoch alongside the next cursor. Across a leader failover the promoted
// server uses the stated epoch to replay shared history for an old-regime
// cursor instead of forcing a resync; a watcher that wants that behavior
// must resume with the returned epoch — adopting next even when it is
// below its old cursor, because a lower next under a newer epoch is the
// replay point, not a stale answer.
func (c *Client) WatchEpoch(ctx context.Context, since, sinceEpoch uint64, timeout time.Duration) (changes []Change, next, nextEpoch uint64, resync bool, err error) {
	if body, ok, err := c.binExchange(ctx, encodeBinWatch(since, sinceEpoch, timeout)); err != nil {
		return nil, 0, 0, false, err
	} else if ok {
		return decodeBinChanges(body)
	}
	w := xmltree.NewWriter()
	w.Open("watch")
	w.Leaf("since", strconv.FormatUint(since, 10))
	if timeout > 0 {
		w.Leaf("timeoutms", strconv.Itoa(int(timeout/time.Millisecond)))
	}
	if sinceEpoch > 0 {
		w.Leaf("epoch", strconv.FormatUint(sinceEpoch, 10))
	}
	root, err := c.roundTrip(ctx, w.Bytes())
	if err != nil {
		return nil, 0, 0, false, err
	}
	return decodeChangeList(root)
}

// Delete removes the registration with the given key.
func (c *Client) Delete(ctx context.Context, key string) error {
	if body, ok, err := c.binExchange(ctx, encodeBinDelete(key)); err != nil {
		return err
	} else if ok {
		_, err := decodeBinKeys(body)
		return err
	}
	w := xmltree.NewWriter()
	w.Open("delete_service")
	w.Leaf("serviceKey", key)
	_, err := c.roundTrip(ctx, w.Bytes())
	return err
}

// Find runs an inquiry and returns matching entries sorted by name.
func (c *Client) Find(ctx context.Context, q Query) ([]Entry, error) {
	entries, _, err := c.FindSeq(ctx, q)
	return entries, err
}

// FindSeq is Find plus the registry's journal sequence number observed at
// read time. A cache filled from the result is current through that
// sequence: if a watch later reports a change with a higher number for an
// entry, the cached copy is stale; a concurrent change with a lower or
// equal number was already reflected in the inquiry.
func (c *Client) FindSeq(ctx context.Context, q Query) ([]Entry, uint64, error) {
	if body, ok, err := c.binExchange(ctx, encodeBinFind(q)); err != nil {
		return nil, 0, err
	} else if ok {
		entries, seq, err := decodeBinEntries(body)
		return entries, seq, err
	}
	w := xmltree.NewWriter()
	w.Open("find_service")
	if q.Name != "" {
		w.Leaf("name", q.Name)
	}
	if q.TModel != "" {
		w.Leaf("tModel", q.TModel)
	}
	keys := make([]string, 0, len(q.Categories))
	for k := range q.Categories {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, k := range keys {
		w.SelfClose("category", "keyName", k, "keyValue", q.Categories[k])
	}
	root, err := c.roundTrip(ctx, w.Bytes())
	if err != nil {
		return nil, 0, err
	}
	// Older registries omit the attribute; zero means "no fence".
	seq, _ := strconv.ParseUint(root.Attr("seq"), 10, 64)
	var out []Entry
	for _, svc := range root.All("service") {
		e, err := entryFromXML(svc)
		if err != nil {
			return nil, 0, err
		}
		out = append(out, e)
	}
	return out, seq, nil
}

// Get fetches one entry by key; found is false for unknown or expired
// keys.
func (c *Client) Get(ctx context.Context, key string) (Entry, bool, error) {
	if body, ok, err := c.binExchange(ctx, encodeBinGet(key)); err != nil {
		return Entry{}, false, err
	} else if ok {
		entries, _, err := decodeBinEntries(body)
		if err != nil || len(entries) == 0 {
			return Entry{}, false, err
		}
		return entries[0], true, nil
	}
	w := xmltree.NewWriter()
	w.Open("get_serviceDetail")
	w.Leaf("serviceKey", key)
	root, err := c.roundTrip(ctx, w.Bytes())
	if err != nil {
		return Entry{}, false, err
	}
	svc := root.Child("service")
	if svc == nil {
		return Entry{}, false, nil
	}
	e, err := entryFromXML(svc)
	if err != nil {
		return Entry{}, false, err
	}
	return e, true, nil
}
