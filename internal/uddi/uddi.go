// Package uddi implements the service repository protocol behind the
// paper's Virtual Service Repository: "Currently VSR has been implemented
// by WSDL ... and Universal Description, Discovery and Integration (UDDI)"
// (§4.1). It provides a registry server storing service entries (name,
// access point, interface tModel, inline WSDL, category bag) and a client
// speaking a compact XML-over-HTTP protocol modelled on the UDDI v2
// inquiry/publication API: save_service, delete_service, find_service,
// get_serviceDetail.
//
// Entries carry a time-to-live; publishers refresh periodically and the
// registry expires stale services, giving the federation the liveness that
// Jini gets from leases. Batched publication (save_services) renews a
// gateway's whole export set in one round trip.
//
// Beyond the UDDI v2 API, the registry is an active component: every
// mutation (add, update, delete, expire) is assigned a monotonically
// increasing sequence number and recorded in a bounded change journal, and
// a long-poll watch operation streams those changes to clients — the
// push-based repository the paper's passive §3.3 database lacks, after
// Dearle et al.'s argument that a registry should notify rather than be
// polled.
package uddi

import (
	"crypto/rand"
	"encoding/hex"
	"fmt"
	"strings"
	"time"
)

// Entry is one registered service.
type Entry struct {
	// Key uniquely identifies the registration; assigned by the registry
	// on first save if empty.
	Key string
	// Name is the human-readable service name, searchable with % globs.
	Name string
	// Description is free-form text.
	Description string
	// AccessPoint is the service endpoint URL (the VSG SOAP endpoint).
	AccessPoint string
	// TModel names the abstract interface the service implements.
	TModel string
	// WSDL is the inline interface description document.
	WSDL string
	// Categories is the category bag: free-form attribute pairs
	// (the paper's "service contexts").
	Categories map[string]string
}

// Clone returns a deep copy of the entry.
func (e Entry) Clone() Entry {
	cp := e
	if e.Categories != nil {
		cp.Categories = make(map[string]string, len(e.Categories))
		for k, v := range e.Categories {
			cp.Categories[k] = v
		}
	}
	return cp
}

// Query selects entries. Zero-value fields match everything.
type Query struct {
	// Name matches the entry name; '%' is a multi-character wildcard, as
	// in UDDI find qualifiers.
	Name string
	// TModel, if set, must equal the entry's TModel exactly.
	TModel string
	// Categories must all be present with equal values in the entry's
	// category bag.
	Categories map[string]string
}

// Matches reports whether the entry satisfies the query.
func (q Query) Matches(e Entry) bool {
	if q.Name != "" && !globMatch(q.Name, e.Name) {
		return false
	}
	if q.TModel != "" && q.TModel != e.TModel {
		return false
	}
	for k, v := range q.Categories {
		if e.Categories[k] != v {
			return false
		}
	}
	return true
}

// globMatch implements UDDI-style '%' wildcards (match any run, including
// empty). Matching is case-sensitive, like UDDI's exactNameMatch qualifier
// combined with wildcards.
func globMatch(pattern, s string) bool {
	parts := strings.Split(pattern, "%")
	if len(parts) == 1 {
		return pattern == s
	}
	if !strings.HasPrefix(s, parts[0]) {
		return false
	}
	s = s[len(parts[0]):]
	for i := 1; i < len(parts)-1; i++ {
		idx := strings.Index(s, parts[i])
		if idx < 0 {
			return false
		}
		s = s[idx+len(parts[i]):]
	}
	return strings.HasSuffix(s, parts[len(parts)-1])
}

// NewKey returns a fresh random service key ("uuid:" + 32 hex digits).
func NewKey() string {
	var b [16]byte
	if _, err := rand.Read(b[:]); err != nil {
		// crypto/rand failure is unrecoverable; fall back to a time-based
		// key rather than panicking inside library code.
		return fmt.Sprintf("uuid:time-%d", time.Now().UnixNano())
	}
	return "uuid:" + hex.EncodeToString(b[:])
}

// DefaultTTL is the registration lifetime used when a save request does
// not specify one.
const DefaultTTL = 60 * time.Second

// ChangeOp classifies one registry mutation in the change journal.
type ChangeOp string

// Journal operations. Adds and updates carry the full entry; deletes and
// expiries carry only the key and name (enough to invalidate a cache).
const (
	OpAdd    ChangeOp = "add"
	OpUpdate ChangeOp = "update"
	OpDelete ChangeOp = "delete"
	OpExpire ChangeOp = "expire"
)

// Change is one journal record: a registry mutation stamped with its
// global sequence number. Watchers resume from a sequence number and
// receive every change after it, in order.
type Change struct {
	Seq   uint64
	Op    ChangeOp
	Entry Entry
	// Expires is the registration deadline for adds and updates — what the
	// replication feed (repl_watch) ships so a replica re-arms each lease
	// with the leader's remaining lifetime instead of a fresh TTL. Zero for
	// deletes and expiries, and omitted from the ordinary watch encodings.
	Expires time.Time
}
