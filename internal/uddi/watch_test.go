package uddi

import (
	"context"
	"net/http/httptest"
	"sync"
	"testing"
	"time"
)

// fakeClock is a mutex-guarded test clock: the janitor goroutine reads it
// concurrently with the test advancing it.
type fakeClock struct {
	mu sync.Mutex
	t  time.Time
}

func newFakeClock(t time.Time) *fakeClock { return &fakeClock{t: t} }

func (c *fakeClock) now() time.Time {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.t
}

func (c *fakeClock) advance(d time.Duration) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.t = c.t.Add(d)
}

// TestJournalOrderingAndOps: every mutation appears in the journal in
// sequence order with the right operation.
func TestJournalOrderingAndOps(t *testing.T) {
	s := NewServer()
	defer s.Close()

	e := lampEntry()
	key := s.Save(e, time.Minute) // add
	e.Key = key
	e.Description = "updated"
	s.Save(e, time.Minute) // update
	s.Delete(key)          // delete
	key2 := s.Save(lampEntry(), time.Minute)

	changes, next, resync := s.Changes(0)
	if resync {
		t.Fatal("fresh watcher told to resync")
	}
	if next != 4 {
		t.Errorf("next = %d, want 4", next)
	}
	wantOps := []ChangeOp{OpAdd, OpUpdate, OpDelete, OpAdd}
	if len(changes) != len(wantOps) {
		t.Fatalf("changes = %d, want %d: %+v", len(changes), len(wantOps), changes)
	}
	for i, c := range changes {
		if c.Seq != uint64(i+1) {
			t.Errorf("change %d seq = %d, want %d", i, c.Seq, i+1)
		}
		if c.Op != wantOps[i] {
			t.Errorf("change %d op = %s, want %s", i, c.Op, wantOps[i])
		}
	}
	// Adds and updates carry the payload; deletes only identity.
	if changes[1].Entry.Description != "updated" {
		t.Errorf("update change entry = %+v", changes[1].Entry)
	}
	if changes[2].Entry.Key != key || changes[2].Entry.Name != "jini:lamp-1" {
		t.Errorf("delete change identity = %+v", changes[2].Entry)
	}
	if changes[2].Entry.WSDL != "" || changes[2].Entry.AccessPoint != "" {
		t.Errorf("delete change carries payload: %+v", changes[2].Entry)
	}
	if changes[3].Entry.Key != key2 {
		t.Errorf("re-add change key = %q, want %q", changes[3].Entry.Key, key2)
	}
}

// TestJournalResumeFromSince: a watcher resuming mid-stream sees only
// later changes.
func TestJournalResumeFromSince(t *testing.T) {
	s := NewServer()
	defer s.Close()
	for i := 0; i < 5; i++ {
		e := lampEntry()
		e.Name = "svc-" + string(rune('a'+i))
		s.Save(e, time.Minute)
	}
	changes, next, resync := s.Changes(3)
	if resync {
		t.Fatal("in-window resume told to resync")
	}
	if next != 5 || len(changes) != 2 {
		t.Fatalf("resume from 3: %d changes, next %d", len(changes), next)
	}
	if changes[0].Seq != 4 || changes[1].Seq != 5 {
		t.Errorf("resumed seqs = %d, %d", changes[0].Seq, changes[1].Seq)
	}
	// Resume exactly at the head: nothing new, no resync.
	if chs, _, rs := s.Changes(5); rs || len(chs) != 0 {
		t.Errorf("head resume = %d changes, resync %v", len(chs), rs)
	}
}

// TestJournalResync: watchers behind the journal window, or ahead of a
// restarted registry, are told to resync rather than silently missing
// changes.
func TestJournalResync(t *testing.T) {
	s := NewServer()
	defer s.Close()
	s.SetJournalCapacity(3)
	for i := 0; i < 6; i++ {
		e := lampEntry()
		e.Name = "svc-" + string(rune('a'+i))
		s.Save(e, time.Minute)
	}
	// Journal holds (3, 6]; since=1 fell out of the window.
	if _, next, resync := s.Changes(1); !resync || next != 6 {
		t.Errorf("behind-window watcher: resync=%v next=%d", resync, next)
	}
	// since=3 is exactly the window edge: still serviceable.
	if chs, _, resync := s.Changes(3); resync || len(chs) != 3 {
		t.Errorf("window-edge watcher: resync=%v changes=%d", resync, len(chs))
	}
	// A cursor from a previous registry incarnation (ahead of seq).
	if _, next, resync := s.Changes(99); !resync || next != 6 {
		t.Errorf("ahead watcher: resync=%v next=%d", resync, next)
	}
}

// TestWatchLongPollWakes: a parked watcher returns as soon as a change is
// journaled, not after its timeout.
func TestWatchLongPollWakes(t *testing.T) {
	s := NewServer()
	defer s.Close()
	type result struct {
		changes []Change
		err     error
	}
	done := make(chan result, 1)
	go func() {
		chs, _, _, err := s.WatchChanges(context.Background(), 0, 10*time.Second)
		done <- result{chs, err}
	}()
	time.Sleep(50 * time.Millisecond) // let the poller park
	start := time.Now()
	s.Save(lampEntry(), time.Minute)
	select {
	case r := <-done:
		if r.err != nil || len(r.changes) != 1 {
			t.Fatalf("woken poll = %+v", r)
		}
		if elapsed := time.Since(start); elapsed > 2*time.Second {
			t.Errorf("wake took %v", elapsed)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("long poll never woke")
	}
}

// TestWatchZeroTimeout: an immediate probe returns the current cursor
// without blocking — the liveness check watchers open with.
func TestWatchZeroTimeout(t *testing.T) {
	s := NewServer()
	defer s.Close()
	s.Save(lampEntry(), time.Minute)
	start := time.Now()
	chs, next, resync, err := s.WatchChanges(context.Background(), 1, 0)
	if err != nil || resync || len(chs) != 0 || next != 1 {
		t.Errorf("probe = %d changes, next %d, resync %v, err %v", len(chs), next, resync, err)
	}
	if time.Since(start) > time.Second {
		t.Error("zero-timeout probe blocked")
	}
}

// TestExpiryJournaled: the janitor turns TTL lapses into journal records,
// so watchers learn about silently dead services.
func TestExpiryJournaled(t *testing.T) {
	s := NewServer()
	defer s.Close()
	clk := newFakeClock(time.Unix(1000, 0))
	s.SetClock(clk.now)
	s.Save(lampEntry(), 10*time.Second)
	clk.advance(11 * time.Second)
	deadline := time.Now().Add(5 * time.Second)
	for {
		changes, _, _ := s.Changes(1) // skip the add
		if len(changes) == 1 && changes[0].Op == OpExpire {
			if changes[0].Entry.Name != "jini:lamp-1" {
				t.Errorf("expire change = %+v", changes[0].Entry)
			}
			return
		}
		if time.Now().After(deadline) {
			t.Fatalf("expiry never journaled; changes = %+v", changes)
		}
		time.Sleep(20 * time.Millisecond)
	}
}

// TestClientWatchRoundTrip: the watch long-poll over HTTP, including
// resume and payload fidelity.
func TestClientWatchRoundTrip(t *testing.T) {
	s := NewServer()
	defer s.Close()
	srv := httptest.NewServer(s.Handler())
	defer srv.Close()
	c := &Client{URL: srv.URL}
	ctx := context.Background()

	key, err := c.Save(ctx, lampEntry(), 30*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	changes, next, resync, err := c.Watch(ctx, 0, 0)
	if err != nil || resync {
		t.Fatalf("watch: %v resync=%v", err, resync)
	}
	if len(changes) != 1 || changes[0].Op != OpAdd || changes[0].Entry.Key != key {
		t.Fatalf("watch changes = %+v", changes)
	}
	if changes[0].Entry.WSDL != lampEntry().WSDL || changes[0].Entry.Categories["room"] != "living" {
		t.Errorf("change payload lost: %+v", changes[0].Entry)
	}

	// A parked HTTP poll wakes on the next change.
	type result struct {
		changes []Change
		err     error
	}
	done := make(chan result, 1)
	go func() {
		chs, _, _, err := c.Watch(ctx, next, 10*time.Second)
		done <- result{chs, err}
	}()
	time.Sleep(50 * time.Millisecond)
	if err := c.Delete(ctx, key); err != nil {
		t.Fatal(err)
	}
	select {
	case r := <-done:
		if r.err != nil || len(r.changes) != 1 || r.changes[0].Op != OpDelete {
			t.Fatalf("woken watch = %+v", r)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("HTTP long poll never woke")
	}
}

// TestClientSaveAll: one round trip registers many entries, keys come
// back in order, and the journal records each.
func TestClientSaveAll(t *testing.T) {
	s := NewServer()
	defer s.Close()
	srv := httptest.NewServer(s.Handler())
	defer srv.Close()
	c := &Client{URL: srv.URL}
	ctx := context.Background()

	var entries []Entry
	for i := 0; i < 4; i++ {
		e := lampEntry()
		e.Name = "svc-" + string(rune('a'+i))
		e.Key = "uuid:svc-" + e.Name
		entries = append(entries, e)
	}
	keys, err := c.SaveAll(ctx, entries, 30*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	if len(keys) != 4 {
		t.Fatalf("keys = %v", keys)
	}
	for i, k := range keys {
		if k != entries[i].Key {
			t.Errorf("key %d = %q, want %q", i, k, entries[i].Key)
		}
	}
	if s.Len() != 4 {
		t.Errorf("Len = %d, want 4", s.Len())
	}
	changes, _, _ := s.Changes(0)
	if len(changes) != 4 {
		t.Errorf("journal has %d changes, want 4", len(changes))
	}
	// Empty batch is a no-op, not a request.
	if keys, err := c.SaveAll(ctx, nil, 0); err != nil || keys != nil {
		t.Errorf("empty SaveAll = %v, %v", keys, err)
	}
}
