package havi

import (
	"encoding/binary"
	"fmt"
	"math"
)

// Value is a dynamically typed HAVi message argument: string, int64,
// float64, bool or []byte. HAVi defines its own compact marshaling for
// message payloads; this is the simulation's equivalent.
type Value = any

// Marshal value kind tags.
const (
	tagString byte = 1
	tagInt    byte = 2
	tagFloat  byte = 3
	tagBool   byte = 4
	tagBytes  byte = 5
)

// MarshalValues encodes arguments into the compact HAVi payload form:
// a count byte followed by tagged values.
func MarshalValues(vals []Value) ([]byte, error) {
	if len(vals) > 255 {
		return nil, fmt.Errorf("havi: too many values: %d", len(vals))
	}
	out := []byte{byte(len(vals))}
	for i, v := range vals {
		switch t := v.(type) {
		case string:
			out = append(out, tagString)
			out = appendLenBytes(out, []byte(t))
		case int64:
			out = append(out, tagInt)
			out = binary.BigEndian.AppendUint64(out, uint64(t))
		case int:
			out = append(out, tagInt)
			out = binary.BigEndian.AppendUint64(out, uint64(int64(t)))
		case float64:
			out = append(out, tagFloat)
			out = binary.BigEndian.AppendUint64(out, math.Float64bits(t))
		case bool:
			out = append(out, tagBool)
			if t {
				out = append(out, 1)
			} else {
				out = append(out, 0)
			}
		case []byte:
			out = append(out, tagBytes)
			out = appendLenBytes(out, t)
		default:
			return nil, fmt.Errorf("havi: cannot marshal value %d of type %T", i, v)
		}
	}
	return out, nil
}

// UnmarshalValues decodes a payload produced by MarshalValues, returning
// the values and the number of bytes consumed.
func UnmarshalValues(data []byte) ([]Value, int, error) {
	if len(data) < 1 {
		return nil, 0, fmt.Errorf("havi: empty payload")
	}
	count := int(data[0])
	pos := 1
	vals := make([]Value, 0, count)
	for i := 0; i < count; i++ {
		if pos >= len(data) {
			return nil, 0, fmt.Errorf("havi: truncated payload at value %d", i)
		}
		tag := data[pos]
		pos++
		switch tag {
		case tagString:
			raw, n, err := readLenBytes(data[pos:])
			if err != nil {
				return nil, 0, fmt.Errorf("havi: value %d: %w", i, err)
			}
			pos += n
			vals = append(vals, string(raw))
		case tagInt:
			if pos+8 > len(data) {
				return nil, 0, fmt.Errorf("havi: truncated int at value %d", i)
			}
			vals = append(vals, int64(binary.BigEndian.Uint64(data[pos:])))
			pos += 8
		case tagFloat:
			if pos+8 > len(data) {
				return nil, 0, fmt.Errorf("havi: truncated float at value %d", i)
			}
			vals = append(vals, math.Float64frombits(binary.BigEndian.Uint64(data[pos:])))
			pos += 8
		case tagBool:
			if pos >= len(data) {
				return nil, 0, fmt.Errorf("havi: truncated bool at value %d", i)
			}
			vals = append(vals, data[pos] != 0)
			pos++
		case tagBytes:
			raw, n, err := readLenBytes(data[pos:])
			if err != nil {
				return nil, 0, fmt.Errorf("havi: value %d: %w", i, err)
			}
			pos += n
			cp := make([]byte, len(raw))
			copy(cp, raw)
			vals = append(vals, cp)
		default:
			return nil, 0, fmt.Errorf("havi: unknown value tag %d", tag)
		}
	}
	return vals, pos, nil
}

func appendLenBytes(out, b []byte) []byte {
	out = binary.BigEndian.AppendUint32(out, uint32(len(b)))
	return append(out, b...)
}

func readLenBytes(data []byte) ([]byte, int, error) {
	if len(data) < 4 {
		return nil, 0, fmt.Errorf("truncated length")
	}
	n := int(binary.BigEndian.Uint32(data))
	if 4+n > len(data) {
		return nil, 0, fmt.Errorf("truncated bytes: want %d, have %d", n, len(data)-4)
	}
	return data[4 : 4+n], 4 + n, nil
}

// String, Int, Float, Bool and Bytes extract typed arguments with
// positional error reporting, for use in FCM handlers.

// ArgString returns args[i] as a string.
func ArgString(args []Value, i int) (string, error) {
	if i >= len(args) {
		return "", fmt.Errorf("havi: missing argument %d", i)
	}
	s, ok := args[i].(string)
	if !ok {
		return "", fmt.Errorf("havi: argument %d is %T, want string", i, args[i])
	}
	return s, nil
}

// ArgInt returns args[i] as an int64.
func ArgInt(args []Value, i int) (int64, error) {
	if i >= len(args) {
		return 0, fmt.Errorf("havi: missing argument %d", i)
	}
	n, ok := args[i].(int64)
	if !ok {
		return 0, fmt.Errorf("havi: argument %d is %T, want int", i, args[i])
	}
	return n, nil
}

// ArgBool returns args[i] as a bool.
func ArgBool(args []Value, i int) (bool, error) {
	if i >= len(args) {
		return false, fmt.Errorf("havi: missing argument %d", i)
	}
	b, ok := args[i].(bool)
	if !ok {
		return false, fmt.Errorf("havi: argument %d is %T, want bool", i, args[i])
	}
	return b, nil
}
