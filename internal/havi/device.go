package havi

import (
	"context"
	"fmt"
	"sort"
	"sync"

	"homeconnect/internal/ieee1394"
)

// Element is one software element hosted by a device: FCMs, DCMs and
// applications implement it. Handlers run on the calling node's goroutine
// and must be safe for concurrent use.
type Element interface {
	// Attributes returns the element's registry attributes.
	Attributes() map[string]string
	// HandleMessage serves one control message.
	HandleMessage(src SEID, opcode uint16, args []Value) ([]Value, error)
}

// ElementFunc adapts a function (with fixed attributes) to Element.
type ElementFunc struct {
	Attrs  map[string]string
	Handle func(src SEID, opcode uint16, args []Value) ([]Value, error)
}

// Attributes implements Element.
func (e ElementFunc) Attributes() map[string]string { return e.Attrs }

// HandleMessage implements Element.
func (e ElementFunc) HandleMessage(src SEID, opcode uint16, args []Value) ([]Value, error) {
	return e.Handle(src, opcode, args)
}

var _ Element = ElementFunc{}

// Device is one HAVi device: a 1394 node running the messaging system,
// registry, event manager, stream manager and a set of software elements.
type Device struct {
	name string
	bus  *ieee1394.Bus
	node *ieee1394.Node

	mu       sync.Mutex
	elements map[uint16]Element
	nextFCM  uint16
	subs     map[int]subscription
	nextSub  int
	closed   bool

	// resetHooks run after every bus reset (used by PCMs to rescan).
	resetHooks []func()
}

type subscription struct {
	eventType uint16
	fn        func(src SEID, eventType uint16, args []Value)
}

// NewDevice attaches a HAVi device with the given GUID to the bus.
func NewDevice(bus *ieee1394.Bus, guid ieee1394.GUID, name string) *Device {
	d := &Device{
		name:     name,
		bus:      bus,
		elements: make(map[uint16]Element),
		nextFCM:  SwFirstFCM,
		subs:     make(map[int]subscription),
	}
	// The DCM represents the device itself in the registry.
	d.elements[SwDCM] = ElementFunc{
		Attrs: map[string]string{
			AttrSEType:  "DCM",
			AttrDevName: name,
			AttrHUID:    fmt.Sprintf("huid-%s-dcm", name),
		},
		Handle: func(src SEID, opcode uint16, args []Value) ([]Value, error) {
			return nil, fmt.Errorf("%w: DCM has no opcode %#x", ErrUnknownOpcode, opcode)
		},
	}
	d.node = bus.Attach(guid, d.handleBus, d.handleReset)
	return d
}

// Name returns the device name.
func (d *Device) Name() string { return d.name }

// GUID returns the device's bus identity.
func (d *Device) GUID() ieee1394.GUID { return d.node.GUID() }

// Bus returns the underlying 1394 bus.
func (d *Device) Bus() *ieee1394.Bus { return d.bus }

// Close detaches the device from the bus.
func (d *Device) Close() {
	d.mu.Lock()
	if d.closed {
		d.mu.Unlock()
		return
	}
	d.closed = true
	d.mu.Unlock()
	d.bus.Detach(d.node)
}

// OnBusReset registers fn to run after every bus reset.
func (d *Device) OnBusReset(fn func()) {
	d.mu.Lock()
	defer d.mu.Unlock()
	d.resetHooks = append(d.resetHooks, fn)
}

func (d *Device) handleReset(gen uint64, ids []ieee1394.GUID) {
	d.mu.Lock()
	hooks := append([]func(){}, d.resetHooks...)
	d.mu.Unlock()
	for _, fn := range hooks {
		fn()
	}
}

// Register installs el under an explicit software element ID.
func (d *Device) Register(swID uint16, el Element) SEID {
	d.mu.Lock()
	defer d.mu.Unlock()
	d.elements[swID] = el
	return SEID{GUID: d.node.GUID(), SwID: swID}
}

// Unregister removes a software element.
func (d *Device) Unregister(swID uint16) {
	d.mu.Lock()
	defer d.mu.Unlock()
	delete(d.elements, swID)
}

// RegisterFCM installs el under the next free FCM ID. init, when
// non-nil, runs with the allocated SEID before el is installed, so an
// element never becomes visible to bus traffic (registry queries,
// messages) half-initialized.
func (d *Device) RegisterFCM(el Element, init func(SEID)) SEID {
	d.mu.Lock()
	var id uint16
	for {
		id = d.nextFCM
		d.nextFCM++
		if _, used := d.elements[id]; !used {
			break
		}
	}
	d.mu.Unlock()
	seid := SEID{GUID: d.node.GUID(), SwID: id}
	if init != nil {
		init(seid)
	}
	d.mu.Lock()
	d.elements[id] = el
	d.mu.Unlock()
	return seid
}

// handleBus serves one incoming bus payload.
func (d *Device) handleBus(src ieee1394.GUID, data []byte) ([]byte, error) {
	m, err := decodeMessage(data)
	if err != nil {
		return encodeReply(statusBadMessage, nil)
	}
	srcSEID := SEID{GUID: src, SwID: m.SrcSwID}
	switch m.DstSwID {
	case SwRegistry:
		if m.Opcode == opRegistryQuery {
			return d.handleRegistryQuery(m.Args)
		}
	case SwEventManager:
		if m.Opcode == opEventPost {
			d.dispatchEvent(srcSEID, m.Args)
			return encodeReply(statusOK, nil)
		}
	}
	d.mu.Lock()
	el, ok := d.elements[m.DstSwID]
	d.mu.Unlock()
	if !ok {
		return encodeReply(statusUnknownElement, nil)
	}
	vals, err := el.HandleMessage(srcSEID, m.Opcode, m.Args)
	status, errVals := statusFromErr(err)
	if status != statusOK {
		return encodeReply(status, errVals)
	}
	return encodeReply(statusOK, vals)
}

// handleRegistryQuery answers with the flattened local element table:
// for each element, [swID int, attrCount int, k, v, k, v, ...].
func (d *Device) handleRegistryQuery(args []Value) ([]byte, error) {
	want := make(map[string]string)
	// Query arguments arrive as alternating key/value strings.
	for i := 0; i+1 < len(args); i += 2 {
		k, err1 := ArgString(args, i)
		v, err2 := ArgString(args, i+1)
		if err1 != nil || err2 != nil {
			return encodeReply(statusBadMessage, nil)
		}
		want[k] = v
	}
	d.mu.Lock()
	ids := make([]uint16, 0, len(d.elements))
	for id := range d.elements {
		ids = append(ids, id)
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	var out []Value
	for _, id := range ids {
		attrs := d.elements[id].Attributes()
		if !MatchAttrs(want, attrs) {
			continue
		}
		keys := make([]string, 0, len(attrs))
		for k := range attrs {
			keys = append(keys, k)
		}
		sort.Strings(keys)
		out = append(out, int64(id), int64(len(keys)))
		for _, k := range keys {
			out = append(out, k, attrs[k])
		}
	}
	d.mu.Unlock()
	return encodeReply(statusOK, out)
}

// dispatchEvent delivers a posted event to local subscribers. Event
// payloads carry the event type as their first argument.
func (d *Device) dispatchEvent(src SEID, args []Value) {
	if len(args) < 1 {
		return
	}
	et, ok := args[0].(int64)
	if !ok {
		return
	}
	d.mu.Lock()
	var targets []subscription
	for _, s := range d.subs {
		if s.eventType == 0 || s.eventType == uint16(et) {
			targets = append(targets, s)
		}
	}
	d.mu.Unlock()
	for _, s := range targets {
		s.fn(src, uint16(et), args[1:])
	}
}

// Send delivers a control message to dst and returns its reply values.
// srcSwID identifies the sending element (0 for anonymous clients).
func (d *Device) Send(ctx context.Context, srcSwID uint16, dst SEID, opcode uint16, args []Value) ([]Value, error) {
	payload, err := encodeMessage(message{DstSwID: dst.SwID, SrcSwID: srcSwID, Opcode: opcode, Args: args})
	if err != nil {
		return nil, err
	}
	if dst.GUID == d.node.GUID() {
		// Local delivery without touching the bus, as HAVi messaging does.
		reply, err := d.handleBus(d.node.GUID(), payload)
		if err != nil {
			return nil, err
		}
		return decodeReply(reply)
	}
	reply, err := d.node.SendAsync(ctx, dst.GUID, payload)
	if err != nil {
		return nil, err
	}
	return decodeReply(reply)
}

// Subscribe registers fn for events of the given type (0 subscribes to
// all). The returned function unsubscribes.
func (d *Device) Subscribe(eventType uint16, fn func(src SEID, eventType uint16, args []Value)) (stop func()) {
	d.mu.Lock()
	defer d.mu.Unlock()
	id := d.nextSub
	d.nextSub++
	d.subs[id] = subscription{eventType: eventType, fn: fn}
	return func() {
		d.mu.Lock()
		defer d.mu.Unlock()
		delete(d.subs, id)
	}
}

// PostEvent broadcasts an event bus-wide and delivers it locally.
func (d *Device) PostEvent(ctx context.Context, srcSwID uint16, eventType uint16, args []Value) error {
	full := append([]Value{int64(eventType)}, args...)
	payload, err := encodeMessage(message{
		DstSwID: SwEventManager,
		SrcSwID: srcSwID,
		Opcode:  opEventPost,
		Args:    full,
	})
	if err != nil {
		return err
	}
	src := SEID{GUID: d.node.GUID(), SwID: srcSwID}
	d.dispatchEvent(src, full)
	return d.node.Broadcast(ctx, payload)
}

// Query runs a registry query across every device on the bus (local
// registry plus each peer) and merges the results, as HAVi's distributed
// registry queries do. want filters by attribute equality (nil matches
// everything).
func (d *Device) Query(ctx context.Context, want map[string]string) ([]ElementInfo, error) {
	var args []Value
	keys := make([]string, 0, len(want))
	for k := range want {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, k := range keys {
		args = append(args, k, want[k])
	}

	var out []ElementInfo
	// Local registry.
	localReply, err := d.handleRegistryQuery(args)
	if err != nil {
		return nil, err
	}
	vals, err := decodeReply(localReply)
	if err != nil {
		return nil, err
	}
	infos, err := parseRegistryReply(d.node.GUID(), vals)
	if err != nil {
		return nil, err
	}
	out = append(out, infos...)

	// Remote registries.
	payload, err := encodeMessage(message{DstSwID: SwRegistry, Opcode: opRegistryQuery, Args: args})
	if err != nil {
		return nil, err
	}
	for _, peer := range d.node.Peers() {
		reply, err := d.node.SendAsync(ctx, peer, payload)
		if err != nil {
			// A peer that vanished mid-query is skipped; the next bus
			// reset will reconcile, as in real HAVi.
			continue
		}
		vals, err := decodeReply(reply)
		if err != nil {
			continue
		}
		infos, err := parseRegistryReply(peer, vals)
		if err != nil {
			continue
		}
		out = append(out, infos...)
	}
	return out, nil
}

// parseRegistryReply decodes the flattened element table.
func parseRegistryReply(guid ieee1394.GUID, vals []Value) ([]ElementInfo, error) {
	var out []ElementInfo
	i := 0
	for i < len(vals) {
		id, err := ArgInt(vals, i)
		if err != nil {
			return nil, fmt.Errorf("%w: %v", ErrBadMessage, err)
		}
		count, err := ArgInt(vals, i+1)
		if err != nil {
			return nil, fmt.Errorf("%w: %v", ErrBadMessage, err)
		}
		i += 2
		attrs := make(map[string]string, count)
		for j := int64(0); j < count; j++ {
			k, err1 := ArgString(vals, i)
			v, err2 := ArgString(vals, i+1)
			if err1 != nil || err2 != nil {
				return nil, fmt.Errorf("%w: truncated attributes", ErrBadMessage)
			}
			attrs[k] = v
			i += 2
		}
		out = append(out, ElementInfo{SEID: SEID{GUID: guid, SwID: uint16(id)}, Attrs: attrs})
	}
	return out, nil
}
