package havi

import (
	"context"
	"fmt"
	"sync"
)

// FCM opcodes, modelled on the HAVi 1.1 FCM APIs. Each FCM type answers
// a subset.
const (
	// Transport control (VCR, Camera).
	OpPlay      uint16 = 0x0101
	OpStop      uint16 = 0x0102
	OpRecord    uint16 = 0x0103
	OpRewind    uint16 = 0x0104
	OpState     uint16 = 0x0105 // → string
	OpPosition  uint16 = 0x0106 // → int (tape counter / frames captured)
	OpZoom      uint16 = 0x0110 // Camera: (level int)
	OpZoomLevel uint16 = 0x0111 // Camera: → int

	// Tuner.
	OpSetChannel uint16 = 0x0201 // (channel int)
	OpChannel    uint16 = 0x0202 // → int

	// Display.
	OpShowMessage uint16 = 0x0301 // (text string)
	OpSetInput    uint16 = 0x0302 // (input string)
	OpInput       uint16 = 0x0303 // → string
	OpFrames      uint16 = 0x0304 // → int (frames rendered)

	// Amplifier.
	OpSetVolume uint16 = 0x0401 // (volume int 0-100)
	OpVolume    uint16 = 0x0402 // → int

	// Streaming (sources and sinks).
	OpStreamTo   uint16 = 0x0501 // (isoChannel int): start sourcing
	OpSinkFrom   uint16 = 0x0502 // (isoChannel int): start sinking
	OpStreamHalt uint16 = 0x0503 // stop sourcing/sinking
)

// Transport states reported by OpState.
const (
	StateStopped   = "stopped"
	StatePlaying   = "playing"
	StateRecording = "recording"
	StateCapturing = "capturing"
)

// FCM is the common base for functional component modules: attributes,
// the hosting device, and stream plumbing. Concrete FCMs embed it.
type FCM struct {
	mu     sync.Mutex
	dev    *Device
	seid   SEID
	attrs  map[string]string
	stream *streamState
}

type streamState struct {
	stop func()
}

// fcmInit wires the base after registration.
func (f *FCM) fcmInit(dev *Device, seid SEID, fcmType, name string) {
	f.dev = dev
	f.seid = seid
	f.attrs = map[string]string{
		AttrSEType:  "FCM",
		AttrFCMType: fcmType,
		AttrDevName: dev.Name(),
		AttrHUID:    fmt.Sprintf("huid-%s-%s", dev.Name(), name),
	}
}

// Attributes implements Element.
func (f *FCM) Attributes() map[string]string {
	f.mu.Lock()
	defer f.mu.Unlock()
	out := make(map[string]string, len(f.attrs))
	for k, v := range f.attrs {
		out[k] = v
	}
	return out
}

// SEID returns the FCM's address.
func (f *FCM) SEID() SEID { return f.seid }

// Device returns the hosting device.
func (f *FCM) Device() *Device { return f.dev }

// postTransport publishes a transport state change event.
func (f *FCM) postTransport(state string) {
	_ = f.dev.PostEvent(context.Background(), f.seid.SwID, EventTransport, []Value{state})
}

// haltStream stops any active stream. Caller holds f.mu.
func (f *FCM) haltStreamLocked() {
	if f.stream != nil {
		f.stream.stop()
		f.stream = nil
	}
}

// VCR is the video cassette recorder FCM of the paper's motivating
// scenario (automatic recording of TV programs).
type VCR struct {
	FCM
	state    string
	position int64
	channel  int64 // input channel being recorded
}

// NewVCR registers a VCR FCM on dev.
func NewVCR(dev *Device, name string) *VCR {
	v := &VCR{state: StateStopped}
	dev.RegisterFCM(v, func(seid SEID) { v.fcmInit(dev, seid, "VCR", name) })
	return v
}

// State returns the transport state.
func (v *VCR) State() string {
	v.mu.Lock()
	defer v.mu.Unlock()
	return v.state
}

// Position returns the tape counter.
func (v *VCR) Position() int64 {
	v.mu.Lock()
	defer v.mu.Unlock()
	return v.position
}

// HandleMessage implements Element.
func (v *VCR) HandleMessage(src SEID, opcode uint16, args []Value) ([]Value, error) {
	v.mu.Lock()
	switch opcode {
	case OpPlay:
		v.state = StatePlaying
		v.mu.Unlock()
		v.postTransport(StatePlaying)
		return nil, nil
	case OpStop:
		v.state = StateStopped
		v.haltStreamLocked()
		v.mu.Unlock()
		v.postTransport(StateStopped)
		return nil, nil
	case OpRecord:
		v.state = StateRecording
		v.position++
		v.mu.Unlock()
		v.postTransport(StateRecording)
		return nil, nil
	case OpRewind:
		v.position = 0
		v.mu.Unlock()
		return nil, nil
	case OpState:
		defer v.mu.Unlock()
		return []Value{v.state}, nil
	case OpPosition:
		defer v.mu.Unlock()
		return []Value{v.position}, nil
	case OpSetChannel:
		defer v.mu.Unlock()
		ch, err := ArgInt(args, 0)
		if err != nil {
			return nil, err
		}
		v.channel = ch
		return nil, nil
	case OpChannel:
		defer v.mu.Unlock()
		return []Value{v.channel}, nil
	case OpStreamTo:
		defer v.mu.Unlock()
		return v.startStreamLocked(args)
	case OpStreamHalt:
		v.haltStreamLocked()
		v.state = StateStopped
		v.mu.Unlock()
		return nil, nil
	default:
		v.mu.Unlock()
		return nil, fmt.Errorf("%w: VCR %#x", ErrUnknownOpcode, opcode)
	}
}

// startStreamLocked begins sourcing frames onto the given iso channel.
func (v *VCR) startStreamLocked(args []Value) ([]Value, error) {
	chNum, err := ArgInt(args, 0)
	if err != nil {
		return nil, err
	}
	ch, ok := v.dev.Bus().Channel(int(chNum))
	if !ok {
		return nil, fmt.Errorf("%w: iso channel %d not allocated", ErrRemote, chNum)
	}
	v.haltStreamLocked()
	stopc := make(chan struct{})
	var once sync.Once
	v.stream = &streamState{stop: func() { once.Do(func() { close(stopc) }) }}
	v.state = StatePlaying
	go func() {
		seq := 0
		for {
			select {
			case <-stopc:
				return
			default:
			}
			ch.Send([]byte(fmt.Sprintf("dv-frame-%d", seq)))
			seq++
			if seq >= 16 { // one tape "segment" per StreamTo request
				return
			}
		}
	}()
	return nil, nil
}

// Camera is the DV camera FCM controlled in the paper's Figure 5 demo.
type Camera struct {
	FCM
	state  string
	zoom   int64
	frames int64
}

// NewCamera registers a camera FCM on dev.
func NewCamera(dev *Device, name string) *Camera {
	c := &Camera{state: StateStopped}
	dev.RegisterFCM(c, func(seid SEID) { c.fcmInit(dev, seid, "Camera", name) })
	return c
}

// State returns the capture state.
func (c *Camera) State() string {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.state
}

// Zoom returns the zoom level.
func (c *Camera) Zoom() int64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.zoom
}

// HandleMessage implements Element.
func (c *Camera) HandleMessage(src SEID, opcode uint16, args []Value) ([]Value, error) {
	c.mu.Lock()
	switch opcode {
	case OpPlay: // start capture
		c.state = StateCapturing
		c.mu.Unlock()
		c.postTransport(StateCapturing)
		return nil, nil
	case OpStop:
		c.state = StateStopped
		c.haltStreamLocked()
		c.mu.Unlock()
		c.postTransport(StateStopped)
		return nil, nil
	case OpZoom:
		defer c.mu.Unlock()
		z, err := ArgInt(args, 0)
		if err != nil {
			return nil, err
		}
		if z < 0 || z > 10 {
			return nil, fmt.Errorf("%w: zoom %d out of range 0-10", ErrRemote, z)
		}
		c.zoom = z
		return nil, nil
	case OpZoomLevel:
		defer c.mu.Unlock()
		return []Value{c.zoom}, nil
	case OpState:
		defer c.mu.Unlock()
		return []Value{c.state}, nil
	case OpPosition:
		defer c.mu.Unlock()
		return []Value{c.frames}, nil
	case OpStreamTo:
		defer c.mu.Unlock()
		return c.startStreamLocked(args)
	case OpStreamHalt:
		c.haltStreamLocked()
		c.state = StateStopped
		c.mu.Unlock()
		return nil, nil
	default:
		c.mu.Unlock()
		return nil, fmt.Errorf("%w: Camera %#x", ErrUnknownOpcode, opcode)
	}
}

func (c *Camera) startStreamLocked(args []Value) ([]Value, error) {
	chNum, err := ArgInt(args, 0)
	if err != nil {
		return nil, err
	}
	ch, ok := c.dev.Bus().Channel(int(chNum))
	if !ok {
		return nil, fmt.Errorf("%w: iso channel %d not allocated", ErrRemote, chNum)
	}
	c.haltStreamLocked()
	stopc := make(chan struct{})
	var once sync.Once
	c.stream = &streamState{stop: func() { once.Do(func() { close(stopc) }) }}
	c.state = StateCapturing
	go func() {
		seq := 0
		for {
			select {
			case <-stopc:
				return
			default:
			}
			ch.Send([]byte(fmt.Sprintf("cam-frame-%d", seq)))
			c.mu.Lock()
			c.frames++
			c.mu.Unlock()
			seq++
			if seq >= 16 {
				return
			}
		}
	}()
	return nil, nil
}

// Tuner selects broadcast channels.
type Tuner struct {
	FCM
	channel int64
}

// NewTuner registers a tuner FCM on dev.
func NewTuner(dev *Device, name string) *Tuner {
	t := &Tuner{channel: 1}
	dev.RegisterFCM(t, func(seid SEID) { t.fcmInit(dev, seid, "Tuner", name) })
	return t
}

// Channel returns the tuned channel.
func (t *Tuner) Channel() int64 {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.channel
}

// HandleMessage implements Element.
func (t *Tuner) HandleMessage(src SEID, opcode uint16, args []Value) ([]Value, error) {
	t.mu.Lock()
	defer t.mu.Unlock()
	switch opcode {
	case OpSetChannel:
		ch, err := ArgInt(args, 0)
		if err != nil {
			return nil, err
		}
		if ch < 1 || ch > 999 {
			return nil, fmt.Errorf("%w: channel %d out of range", ErrRemote, ch)
		}
		t.channel = ch
		return nil, nil
	case OpChannel:
		return []Value{t.channel}, nil
	default:
		return nil, fmt.Errorf("%w: Tuner %#x", ErrUnknownOpcode, opcode)
	}
}

// Display renders messages and sinks video streams (the digital TV GUI
// of the paper's scenario).
type Display struct {
	FCM
	input    string
	messages []string
	frames   int64
}

// NewDisplay registers a display FCM on dev.
func NewDisplay(dev *Device, name string) *Display {
	d := &Display{input: "tuner"}
	dev.RegisterFCM(d, func(seid SEID) { d.fcmInit(dev, seid, "Display", name) })
	return d
}

// Messages returns the messages shown so far.
func (d *Display) Messages() []string {
	d.mu.Lock()
	defer d.mu.Unlock()
	return append([]string(nil), d.messages...)
}

// Frames returns the number of video frames rendered.
func (d *Display) Frames() int64 {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.frames
}

// Input returns the selected input.
func (d *Display) Input() string {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.input
}

// HandleMessage implements Element.
func (d *Display) HandleMessage(src SEID, opcode uint16, args []Value) ([]Value, error) {
	d.mu.Lock()
	switch opcode {
	case OpShowMessage:
		defer d.mu.Unlock()
		text, err := ArgString(args, 0)
		if err != nil {
			return nil, err
		}
		d.messages = append(d.messages, text)
		return nil, nil
	case OpSetInput:
		defer d.mu.Unlock()
		input, err := ArgString(args, 0)
		if err != nil {
			return nil, err
		}
		d.input = input
		return nil, nil
	case OpInput:
		defer d.mu.Unlock()
		return []Value{d.input}, nil
	case OpFrames:
		defer d.mu.Unlock()
		return []Value{d.frames}, nil
	case OpSinkFrom:
		defer d.mu.Unlock()
		chNum, err := ArgInt(args, 0)
		if err != nil {
			return nil, err
		}
		ch, ok := d.dev.Bus().Channel(int(chNum))
		if !ok {
			return nil, fmt.Errorf("%w: iso channel %d not allocated", ErrRemote, chNum)
		}
		d.haltStreamLocked()
		stop := ch.Listen(func(packet []byte) {
			d.mu.Lock()
			d.frames++
			d.mu.Unlock()
		})
		d.stream = &streamState{stop: stop}
		return nil, nil
	case OpStreamHalt:
		d.haltStreamLocked()
		d.mu.Unlock()
		return nil, nil
	default:
		d.mu.Unlock()
		return nil, fmt.Errorf("%w: Display %#x", ErrUnknownOpcode, opcode)
	}
}

// Amplifier controls audio volume.
type Amplifier struct {
	FCM
	volume int64
}

// NewAmplifier registers an amplifier FCM on dev.
func NewAmplifier(dev *Device, name string) *Amplifier {
	a := &Amplifier{volume: 50}
	dev.RegisterFCM(a, func(seid SEID) { a.fcmInit(dev, seid, "Amplifier", name) })
	return a
}

// Volume returns the volume (0-100).
func (a *Amplifier) Volume() int64 {
	a.mu.Lock()
	defer a.mu.Unlock()
	return a.volume
}

// HandleMessage implements Element.
func (a *Amplifier) HandleMessage(src SEID, opcode uint16, args []Value) ([]Value, error) {
	a.mu.Lock()
	defer a.mu.Unlock()
	switch opcode {
	case OpSetVolume:
		v, err := ArgInt(args, 0)
		if err != nil {
			return nil, err
		}
		if v < 0 || v > 100 {
			return nil, fmt.Errorf("%w: volume %d out of range 0-100", ErrRemote, v)
		}
		a.volume = v
		return nil, nil
	case OpVolume:
		return []Value{a.volume}, nil
	default:
		return nil, fmt.Errorf("%w: Amplifier %#x", ErrUnknownOpcode, opcode)
	}
}

var (
	_ Element = (*VCR)(nil)
	_ Element = (*Camera)(nil)
	_ Element = (*Tuner)(nil)
	_ Element = (*Display)(nil)
	_ Element = (*Amplifier)(nil)
)
