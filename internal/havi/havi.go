// Package havi simulates the HAVi (Home Audio/Video interoperability)
// middleware that the paper bridges for digital AV appliances — the third
// middleware of its prototype (§4.1). It is layered on the
// internal/ieee1394 bus exactly as real HAVi sits on FireWire:
//
//   - a Messaging System per device routes request/response messages
//     between software elements addressed by SEID (GUID + software
//     element ID);
//   - a Registry per device stores software element attributes; queries
//     fan out to every device on the bus and merge, as HAVi registry
//     queries do;
//   - an Event Manager broadcasts typed events to subscribers bus-wide;
//   - Device Control Modules (DCMs) host Functional Component Modules
//     (FCMs) — VCR, Camera, Tuner, Display, Amplifier — each with an
//     opcode table modelled on the HAVi FCM APIs;
//   - a Stream Manager establishes isochronous connections between
//     source and sink FCMs with real bandwidth allocation.
//
// The HAVi PCM consumes this package's registry and messaging APIs to
// generate proxies, exactly as the paper's PCM consumed the HAVi stack.
package havi

import (
	"encoding/binary"
	"errors"
	"fmt"

	"homeconnect/internal/ieee1394"
)

// Well-known software element IDs within a device, mirroring HAVi's
// reserved SEID range.
const (
	// SwRegistry answers registry queries.
	SwRegistry uint16 = 0x0001
	// SwEventManager receives event broadcasts.
	SwEventManager uint16 = 0x0002
	// SwStreamManager negotiates isochronous connections.
	SwStreamManager uint16 = 0x0003
	// SwDCM is the device control module.
	SwDCM uint16 = 0x0010
	// SwFirstFCM is the first ID assigned to FCMs.
	SwFirstFCM uint16 = 0x0020
)

// Errors returned by the HAVi layer.
var (
	// ErrUnknownElement reports a message to an SEID with no registered
	// software element.
	ErrUnknownElement = errors.New("havi: unknown software element")
	// ErrUnknownOpcode reports an opcode outside the element's table.
	ErrUnknownOpcode = errors.New("havi: unknown opcode")
	// ErrBadMessage reports an undecodable bus payload.
	ErrBadMessage = errors.New("havi: bad message")
	// ErrRemote wraps failures raised by a remote software element.
	ErrRemote = errors.New("havi: remote error")
)

// SEID addresses one software element on the bus.
type SEID struct {
	GUID ieee1394.GUID
	SwID uint16
}

// String renders the SEID as guid/swid.
func (s SEID) String() string { return fmt.Sprintf("%s/%04x", s.GUID, s.SwID) }

// Message wire status codes.
const (
	statusOK byte = iota
	statusUnknownElement
	statusUnknownOpcode
	statusBadMessage
	statusError
)

// message is the decoded wire form of one HAVi message.
type message struct {
	DstSwID uint16
	SrcSwID uint16
	Opcode  uint16
	Args    []Value
}

// encodeMessage builds the bus payload for a message.
func encodeMessage(m message) ([]byte, error) {
	head := make([]byte, 6)
	binary.BigEndian.PutUint16(head[0:], m.DstSwID)
	binary.BigEndian.PutUint16(head[2:], m.SrcSwID)
	binary.BigEndian.PutUint16(head[4:], m.Opcode)
	body, err := MarshalValues(m.Args)
	if err != nil {
		return nil, err
	}
	return append(head, body...), nil
}

// decodeMessage inverts encodeMessage.
func decodeMessage(data []byte) (message, error) {
	if len(data) < 7 {
		return message{}, fmt.Errorf("%w: %d bytes", ErrBadMessage, len(data))
	}
	m := message{
		DstSwID: binary.BigEndian.Uint16(data[0:]),
		SrcSwID: binary.BigEndian.Uint16(data[2:]),
		Opcode:  binary.BigEndian.Uint16(data[4:]),
	}
	vals, _, err := UnmarshalValues(data[6:])
	if err != nil {
		return message{}, fmt.Errorf("%w: %v", ErrBadMessage, err)
	}
	m.Args = vals
	return m, nil
}

// encodeReply builds a response payload: status byte plus values.
func encodeReply(status byte, vals []Value) ([]byte, error) {
	body, err := MarshalValues(vals)
	if err != nil {
		return nil, err
	}
	return append([]byte{status}, body...), nil
}

// decodeReply inverts encodeReply, mapping non-OK statuses to errors.
func decodeReply(data []byte) ([]Value, error) {
	if len(data) < 1 {
		return nil, fmt.Errorf("%w: empty reply", ErrBadMessage)
	}
	status := data[0]
	vals, _, err := UnmarshalValues(data[1:])
	if err != nil {
		return nil, fmt.Errorf("%w: %v", ErrBadMessage, err)
	}
	switch status {
	case statusOK:
		return vals, nil
	case statusUnknownElement:
		return nil, ErrUnknownElement
	case statusUnknownOpcode:
		return nil, ErrUnknownOpcode
	case statusBadMessage:
		return nil, ErrBadMessage
	default:
		msg := ""
		if len(vals) > 0 {
			if s, ok := vals[0].(string); ok {
				msg = s
			}
		}
		return nil, fmt.Errorf("%w: %s", ErrRemote, msg)
	}
}

// statusFromErr classifies an element error for the wire.
func statusFromErr(err error) (byte, []Value) {
	switch {
	case err == nil:
		return statusOK, nil
	case errors.Is(err, ErrUnknownElement):
		return statusUnknownElement, nil
	case errors.Is(err, ErrUnknownOpcode):
		return statusUnknownOpcode, nil
	case errors.Is(err, ErrBadMessage):
		return statusBadMessage, nil
	default:
		return statusError, []Value{err.Error()}
	}
}

// Registry attribute names, mirroring HAVi's ATT_* attribute set.
const (
	AttrSEType   = "SE_TYPE"   // "DCM", "FCM", "APPLICATION"
	AttrFCMType  = "FCM_TYPE"  // "VCR", "Camera", ...
	AttrHUID     = "HUID"      // globally unique element identity
	AttrDevName  = "DEV_NAME"  // human-readable device name
	AttrDevManuf = "DEV_MANUF" // manufacturer
)

// Event types carried by the Event Manager.
const (
	// EventElementsChanged announces registry membership changes
	// (HAVi's NewSoftwareElement/GoneSoftwareElement events).
	EventElementsChanged uint16 = 0x0001
	// EventTransport announces FCM transport state changes
	// (play/stop/record), used by the multimedia application.
	EventTransport uint16 = 0x0100
	// EventUser is the first free application event type.
	EventUser uint16 = 0x1000
)

// Registry query opcode (sent to SwRegistry) and event post opcode (sent
// to SwEventManager).
const (
	opRegistryQuery uint16 = 0x0001
	opEventPost     uint16 = 0x0002
	opStreamStart   uint16 = 0x0003
	opStreamStop    uint16 = 0x0004
)

// ElementInfo is one registry query result.
type ElementInfo struct {
	SEID  SEID
	Attrs map[string]string
}

// MatchAttrs reports whether have satisfies every requirement in want.
func MatchAttrs(want, have map[string]string) bool {
	for k, v := range want {
		if have[k] != v {
			return false
		}
	}
	return true
}
