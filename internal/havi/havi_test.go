package havi

import (
	"errors"
	"math"
	"testing"
	"testing/quick"
)

func TestMarshalValuesRoundTrip(t *testing.T) {
	in := []Value{"hello", int64(-42), 3.25, true, []byte{0, 1, 255}, false, ""}
	data, err := MarshalValues(in)
	if err != nil {
		t.Fatalf("Marshal: %v", err)
	}
	out, n, err := UnmarshalValues(data)
	if err != nil {
		t.Fatalf("Unmarshal: %v", err)
	}
	if n != len(data) {
		t.Errorf("consumed %d of %d bytes", n, len(data))
	}
	if len(out) != len(in) {
		t.Fatalf("got %d values, want %d", len(out), len(in))
	}
	for i := range in {
		switch want := in[i].(type) {
		case []byte:
			got, ok := out[i].([]byte)
			if !ok || string(got) != string(want) {
				t.Errorf("value %d: %v != %v", i, out[i], want)
			}
		default:
			if out[i] != in[i] {
				t.Errorf("value %d: %v != %v", i, out[i], in[i])
			}
		}
	}
}

func TestMarshalIntWidths(t *testing.T) {
	// Plain int is accepted and surfaces as int64.
	data, err := MarshalValues([]Value{7})
	if err != nil {
		t.Fatal(err)
	}
	out, _, err := UnmarshalValues(data)
	if err != nil || out[0].(int64) != 7 {
		t.Errorf("int round trip = %v, %v", out, err)
	}
}

func TestMarshalRejectsUnknownTypes(t *testing.T) {
	if _, err := MarshalValues([]Value{struct{}{}}); err == nil {
		t.Error("struct value accepted")
	}
	if _, err := MarshalValues(make([]Value, 256)); err == nil {
		t.Error("256 values accepted")
	}
}

func TestUnmarshalRejectsTruncated(t *testing.T) {
	data, _ := MarshalValues([]Value{"abcdef", int64(1)})
	for cut := 1; cut < len(data); cut++ {
		if _, _, err := UnmarshalValues(data[:cut]); err == nil {
			t.Errorf("truncation at %d accepted", cut)
		}
	}
	if _, _, err := UnmarshalValues(nil); err == nil {
		t.Error("empty payload accepted")
	}
	if _, _, err := UnmarshalValues([]byte{1, 99}); err == nil {
		t.Error("unknown tag accepted")
	}
}

func TestQuickMarshalRoundTrip(t *testing.T) {
	fn := func(s string, n int64, f float64, b bool, raw []byte) bool {
		if math.IsNaN(f) {
			f = 0
		}
		in := []Value{s, n, f, b, raw}
		data, err := MarshalValues(in)
		if err != nil {
			return false
		}
		out, _, err := UnmarshalValues(data)
		if err != nil || len(out) != 5 {
			return false
		}
		return out[0] == s && out[1] == n && out[2] == f && out[3] == b &&
			string(out[4].([]byte)) == string(raw)
	}
	if err := quick.Check(fn, nil); err != nil {
		t.Error(err)
	}
}

func TestMessageCodecRoundTrip(t *testing.T) {
	m := message{DstSwID: 0x20, SrcSwID: 0x01, Opcode: OpSetChannel, Args: []Value{int64(9)}}
	data, err := encodeMessage(m)
	if err != nil {
		t.Fatal(err)
	}
	got, err := decodeMessage(data)
	if err != nil {
		t.Fatal(err)
	}
	if got.DstSwID != m.DstSwID || got.SrcSwID != m.SrcSwID || got.Opcode != m.Opcode {
		t.Errorf("header mismatch: %+v", got)
	}
	if got.Args[0].(int64) != 9 {
		t.Errorf("args = %v", got.Args)
	}
	if _, err := decodeMessage([]byte{1, 2, 3}); !errors.Is(err, ErrBadMessage) {
		t.Errorf("short message: %v", err)
	}
}

func TestReplyCodec(t *testing.T) {
	data, err := encodeReply(statusOK, []Value{"fine"})
	if err != nil {
		t.Fatal(err)
	}
	vals, err := decodeReply(data)
	if err != nil || vals[0] != "fine" {
		t.Fatalf("decodeReply = %v, %v", vals, err)
	}
	for _, tt := range []struct {
		status byte
		want   error
	}{
		{statusUnknownElement, ErrUnknownElement},
		{statusUnknownOpcode, ErrUnknownOpcode},
		{statusBadMessage, ErrBadMessage},
	} {
		data, _ := encodeReply(tt.status, nil)
		if _, err := decodeReply(data); !errors.Is(err, tt.want) {
			t.Errorf("status %d: got %v, want %v", tt.status, err, tt.want)
		}
	}
	data, _ = encodeReply(statusError, []Value{"kaboom"})
	_, err = decodeReply(data)
	if !errors.Is(err, ErrRemote) {
		t.Errorf("statusError: %v", err)
	}
}

func TestMatchAttrs(t *testing.T) {
	have := map[string]string{"a": "1", "b": "2"}
	if !MatchAttrs(nil, have) {
		t.Error("nil want should match")
	}
	if !MatchAttrs(map[string]string{"a": "1"}, have) {
		t.Error("subset should match")
	}
	if MatchAttrs(map[string]string{"a": "2"}, have) {
		t.Error("wrong value matched")
	}
	if MatchAttrs(map[string]string{"c": "3"}, have) {
		t.Error("missing key matched")
	}
}
