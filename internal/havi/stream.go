package havi

import (
	"context"
	"fmt"
	"sync"

	"homeconnect/internal/ieee1394"
)

// Connection is an established isochronous AV connection between a source
// FCM and a sink FCM, managed by the Stream Manager: the channel and
// bandwidth stay reserved until Close.
type Connection struct {
	dev *Device
	src SEID
	dst SEID
	ch  *ieee1394.IsoChannel

	mu     sync.Mutex
	closed bool
}

// DefaultStreamBandwidth approximates a DV stream's bandwidth share.
const DefaultStreamBandwidth = 800

// ConnectStream establishes src → dst over a freshly allocated
// isochronous channel: the sink is armed first, then the source starts
// streaming, as the HAVi Stream Manager sequences it.
func (d *Device) ConnectStream(ctx context.Context, src, dst SEID, bandwidth int) (*Connection, error) {
	if bandwidth <= 0 {
		bandwidth = DefaultStreamBandwidth
	}
	ch, err := d.bus.AllocateIso(bandwidth)
	if err != nil {
		return nil, fmt.Errorf("havi: stream manager: %w", err)
	}
	chArg := []Value{int64(ch.Number())}
	if _, err := d.Send(ctx, SwStreamManager, dst, OpSinkFrom, chArg); err != nil {
		ch.Release()
		return nil, fmt.Errorf("havi: arm sink %s: %w", dst, err)
	}
	if _, err := d.Send(ctx, SwStreamManager, src, OpStreamTo, chArg); err != nil {
		_, _ = d.Send(ctx, SwStreamManager, dst, OpStreamHalt, nil)
		ch.Release()
		return nil, fmt.Errorf("havi: start source %s: %w", src, err)
	}
	return &Connection{dev: d, src: src, dst: dst, ch: ch}, nil
}

// Channel returns the underlying isochronous channel.
func (c *Connection) Channel() *ieee1394.IsoChannel { return c.ch }

// Close halts both endpoints and releases the channel.
func (c *Connection) Close(ctx context.Context) error {
	c.mu.Lock()
	if c.closed {
		c.mu.Unlock()
		return nil
	}
	c.closed = true
	c.mu.Unlock()
	var firstErr error
	if _, err := c.dev.Send(ctx, SwStreamManager, c.src, OpStreamHalt, nil); err != nil && firstErr == nil {
		firstErr = err
	}
	if _, err := c.dev.Send(ctx, SwStreamManager, c.dst, OpStreamHalt, nil); err != nil && firstErr == nil {
		firstErr = err
	}
	c.ch.Release()
	return firstErr
}
