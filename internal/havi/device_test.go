package havi

import (
	"context"
	"errors"
	"sync"
	"testing"
	"time"

	"homeconnect/internal/ieee1394"
)

// newAVNetwork builds the paper's AV network: a DV camera device, a VCR
// device, and a TV (display + tuner) device on one 1394 bus.
func newAVNetwork(t *testing.T) (bus *ieee1394.Bus, camDev, vcrDev, tvDev *Device, cam *Camera, vcr *VCR, disp *Display, tuner *Tuner) {
	t.Helper()
	bus = ieee1394.NewBus()
	camDev = NewDevice(bus, 0xCA0001, "dvcam")
	vcrDev = NewDevice(bus, 0xB00002, "vcr")
	tvDev = NewDevice(bus, 0x770003, "tv")
	cam = NewCamera(camDev, "cam1")
	vcr = NewVCR(vcrDev, "vcr1")
	disp = NewDisplay(tvDev, "screen")
	tuner = NewTuner(tvDev, "tuner")
	t.Cleanup(func() {
		camDev.Close()
		vcrDev.Close()
		tvDev.Close()
	})
	return
}

func TestRegistryQueryAcrossBus(t *testing.T) {
	_, camDev, _, _, _, vcr, _, _ := newAVNetwork(t)
	ctx := context.Background()

	// All FCMs bus-wide.
	infos, err := camDev.Query(ctx, map[string]string{AttrSEType: "FCM"})
	if err != nil {
		t.Fatalf("Query: %v", err)
	}
	if len(infos) != 4 {
		t.Fatalf("found %d FCMs, want 4: %+v", len(infos), infos)
	}

	// Filter by FCM type.
	vcrs, err := camDev.Query(ctx, map[string]string{AttrSEType: "FCM", AttrFCMType: "VCR"})
	if err != nil || len(vcrs) != 1 {
		t.Fatalf("VCR query = %+v, %v", vcrs, err)
	}
	if vcrs[0].SEID != vcr.SEID() {
		t.Errorf("VCR SEID = %v, want %v", vcrs[0].SEID, vcr.SEID())
	}
	if vcrs[0].Attrs[AttrDevName] != "vcr" {
		t.Errorf("attrs = %v", vcrs[0].Attrs)
	}

	// DCMs: one per device.
	dcms, err := camDev.Query(ctx, map[string]string{AttrSEType: "DCM"})
	if err != nil || len(dcms) != 3 {
		t.Fatalf("DCM query = %d, %v", len(dcms), err)
	}
}

func TestCrossDeviceControlMessages(t *testing.T) {
	_, camDev, _, _, _, vcr, _, tuner := newAVNetwork(t)
	ctx := context.Background()

	// Control the remote VCR from the camera device.
	if _, err := camDev.Send(ctx, 0, vcr.SEID(), OpRecord, nil); err != nil {
		t.Fatalf("OpRecord: %v", err)
	}
	if vcr.State() != StateRecording {
		t.Errorf("vcr state = %s", vcr.State())
	}
	vals, err := camDev.Send(ctx, 0, vcr.SEID(), OpState, nil)
	if err != nil || vals[0].(string) != StateRecording {
		t.Errorf("OpState = %v, %v", vals, err)
	}

	// Tune the remote tuner.
	if _, err := camDev.Send(ctx, 0, tuner.SEID(), OpSetChannel, []Value{int64(12)}); err != nil {
		t.Fatalf("OpSetChannel: %v", err)
	}
	if tuner.Channel() != 12 {
		t.Errorf("channel = %d", tuner.Channel())
	}
}

func TestLocalDelivery(t *testing.T) {
	bus := ieee1394.NewBus()
	dev := NewDevice(bus, 1, "solo")
	defer dev.Close()
	amp := NewAmplifier(dev, "amp")
	ctx := context.Background()
	if _, err := dev.Send(ctx, 0, amp.SEID(), OpSetVolume, []Value{int64(80)}); err != nil {
		t.Fatalf("local send: %v", err)
	}
	if amp.Volume() != 80 {
		t.Errorf("volume = %d", amp.Volume())
	}
}

func TestMessageErrors(t *testing.T) {
	_, camDev, _, _, cam, vcr, _, _ := newAVNetwork(t)
	ctx := context.Background()

	// Unknown element.
	bogus := SEID{GUID: vcr.SEID().GUID, SwID: 0x7777}
	if _, err := camDev.Send(ctx, 0, bogus, OpPlay, nil); !errors.Is(err, ErrUnknownElement) {
		t.Errorf("unknown element: %v", err)
	}
	// Unknown opcode.
	if _, err := camDev.Send(ctx, 0, vcr.SEID(), OpSetVolume, nil); !errors.Is(err, ErrUnknownOpcode) {
		t.Errorf("unknown opcode: %v", err)
	}
	// Application error crosses the bus.
	if _, err := camDev.Send(ctx, 0, cam.SEID(), OpZoom, []Value{int64(99)}); !errors.Is(err, ErrRemote) {
		t.Errorf("range error: %v", err)
	}
	// Missing argument.
	if _, err := camDev.Send(ctx, 0, cam.SEID(), OpZoom, nil); err == nil {
		t.Error("missing arg accepted")
	}
}

func TestEventsBusWide(t *testing.T) {
	_, camDev, vcrDev, tvDev, _, vcr, _, _ := newAVNetwork(t)
	ctx := context.Background()

	var mu sync.Mutex
	events := make(map[string][]string) // device → states seen
	sub := func(name string, dev *Device) {
		dev.Subscribe(EventTransport, func(src SEID, et uint16, args []Value) {
			mu.Lock()
			defer mu.Unlock()
			state, _ := ArgString(args, 0)
			events[name] = append(events[name], state)
		})
	}
	sub("cam", camDev)
	sub("tv", tvDev)

	// A state change on the VCR is announced to every device.
	if _, err := vcrDev.Send(ctx, 0, vcr.SEID(), OpPlay, nil); err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(2 * time.Second)
	for {
		mu.Lock()
		got := len(events["cam"]) == 1 && len(events["tv"]) == 1
		mu.Unlock()
		if got {
			break
		}
		if time.Now().After(deadline) {
			mu.Lock()
			t.Fatalf("events = %v", events)
		}
		time.Sleep(5 * time.Millisecond)
	}
	mu.Lock()
	defer mu.Unlock()
	if events["cam"][0] != StatePlaying {
		t.Errorf("cam saw %v", events["cam"])
	}
}

func TestSubscribeFilterAndUnsubscribe(t *testing.T) {
	bus := ieee1394.NewBus()
	dev := NewDevice(bus, 1, "solo")
	defer dev.Close()
	ctx := context.Background()

	var transport, all int
	var mu sync.Mutex
	stopT := dev.Subscribe(EventTransport, func(SEID, uint16, []Value) {
		mu.Lock()
		transport++
		mu.Unlock()
	})
	dev.Subscribe(0, func(SEID, uint16, []Value) {
		mu.Lock()
		all++
		mu.Unlock()
	})

	_ = dev.PostEvent(ctx, 0, EventTransport, []Value{StatePlaying})
	_ = dev.PostEvent(ctx, 0, EventUser, []Value{"x"})
	mu.Lock()
	if transport != 1 || all != 2 {
		t.Errorf("transport=%d all=%d", transport, all)
	}
	mu.Unlock()

	stopT()
	_ = dev.PostEvent(ctx, 0, EventTransport, []Value{StateStopped})
	mu.Lock()
	if transport != 1 {
		t.Error("unsubscribed handler still called")
	}
	mu.Unlock()
}

func TestHotplugAndBusResetHook(t *testing.T) {
	bus := ieee1394.NewBus()
	dev := NewDevice(bus, 1, "tv")
	defer dev.Close()
	ctx := context.Background()

	var resets int
	var mu sync.Mutex
	dev.OnBusReset(func() { mu.Lock(); resets++; mu.Unlock() })

	// A camera appears on the bus.
	camDev := NewDevice(bus, 2, "dvcam")
	cam := NewCamera(camDev, "cam1")
	mu.Lock()
	if resets != 1 {
		t.Errorf("resets = %d after attach", resets)
	}
	mu.Unlock()

	infos, err := dev.Query(ctx, map[string]string{AttrFCMType: "Camera"})
	if err != nil || len(infos) != 1 {
		t.Fatalf("camera not discovered: %v, %v", infos, err)
	}
	if infos[0].SEID != cam.SEID() {
		t.Error("SEID mismatch")
	}

	// And disappears.
	camDev.Close()
	mu.Lock()
	if resets != 2 {
		t.Errorf("resets = %d after detach", resets)
	}
	mu.Unlock()
	infos, _ = dev.Query(ctx, map[string]string{AttrFCMType: "Camera"})
	if len(infos) != 0 {
		t.Errorf("ghost camera after detach: %v", infos)
	}
}

func TestVCRTransportCycle(t *testing.T) {
	bus := ieee1394.NewBus()
	dev := NewDevice(bus, 1, "vcr")
	defer dev.Close()
	vcr := NewVCR(dev, "vcr1")
	ctx := context.Background()

	steps := []struct {
		op   uint16
		want string
	}{
		{OpPlay, StatePlaying},
		{OpRecord, StateRecording},
		{OpStop, StateStopped},
	}
	for _, s := range steps {
		if _, err := dev.Send(ctx, 0, vcr.SEID(), s.op, nil); err != nil {
			t.Fatalf("op %#x: %v", s.op, err)
		}
		if vcr.State() != s.want {
			t.Errorf("state = %s, want %s", vcr.State(), s.want)
		}
	}
	if vcr.Position() != 1 {
		t.Errorf("position = %d after one record", vcr.Position())
	}
	if _, err := dev.Send(ctx, 0, vcr.SEID(), OpRewind, nil); err != nil {
		t.Fatal(err)
	}
	if vcr.Position() != 0 {
		t.Errorf("position = %d after rewind", vcr.Position())
	}
}

func TestStreamConnection(t *testing.T) {
	bus := ieee1394.NewBus()
	camDev := NewDevice(bus, 1, "dvcam")
	tvDev := NewDevice(bus, 2, "tv")
	defer camDev.Close()
	defer tvDev.Close()
	cam := NewCamera(camDev, "cam1")
	disp := NewDisplay(tvDev, "screen")
	ctx := context.Background()

	before := bus.AvailableIsoBandwidth()
	conn, err := tvDev.ConnectStream(ctx, cam.SEID(), disp.SEID(), 0)
	if err != nil {
		t.Fatalf("ConnectStream: %v", err)
	}
	if bus.AvailableIsoBandwidth() >= before {
		t.Error("no bandwidth reserved")
	}

	// The camera sources a burst of frames; wait for the display to
	// render them.
	deadline := time.Now().Add(2 * time.Second)
	for disp.Frames() < 16 {
		if time.Now().After(deadline) {
			t.Fatalf("display rendered %d frames", disp.Frames())
		}
		time.Sleep(5 * time.Millisecond)
	}

	if err := conn.Close(ctx); err != nil {
		t.Fatalf("Close: %v", err)
	}
	if bus.AvailableIsoBandwidth() != before {
		t.Error("bandwidth not released")
	}
	if cam.State() != StateStopped {
		t.Errorf("camera state after close = %s", cam.State())
	}
}

func TestStreamConnectionBandwidthExhaustion(t *testing.T) {
	bus := ieee1394.NewBus()
	dev := NewDevice(bus, 1, "tv")
	defer dev.Close()
	cam := NewCamera(dev, "cam")
	disp := NewDisplay(dev, "screen")
	ctx := context.Background()

	if _, err := dev.ConnectStream(ctx, cam.SEID(), disp.SEID(), ieee1394.TotalIsoBandwidth+1); !errors.Is(err, ieee1394.ErrNoBandwidth) {
		t.Errorf("over-budget connect: %v", err)
	}
}
