// Command homesim runs the full simulated smart home of the paper's
// prototype — Jini, X10, HAVi and mail networks (plus the UPnP extension)
// connected by the framework — and keeps it running so homectl can be
// pointed at it. With -demo it additionally replays the Figure 5
// Universal Remote Controller sequence and exits.
//
//	homesim            # run until interrupted, print the VSR URL
//	homesim -demo      # run the universal remote demo and exit
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"os"
	"os/signal"
	"time"

	"homeconnect/internal/sim"
	"homeconnect/internal/x10"
)

func main() {
	demo := flag.Bool("demo", false, "replay the Figure 5 universal remote sequence and exit")
	upnp := flag.Bool("upnp", true, "include the UPnP network")
	flag.Parse()

	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Minute)
	defer cancel()

	cfg := sim.Prototype()
	cfg.UPnP = *upnp
	want := 7
	if cfg.UPnP {
		want++
	}

	fmt.Println("homesim: building the simulated home...")
	home, err := sim.NewHome(ctx, cfg)
	if err != nil {
		log.Fatal(err)
	}
	defer home.Close()
	if err := home.WaitForServices(ctx, want); err != nil {
		log.Fatal(err)
	}

	fmt.Printf("homesim: repository at %s\n", home.Fed.VSRURL())
	ids, err := home.ServiceIDs(ctx)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("homesim: services:")
	for _, id := range ids {
		fmt.Printf("  %s\n", id)
	}

	if *demo {
		runDemo(home)
		return
	}

	fmt.Println("homesim: running — point homectl at the repository URL above; Ctrl-C to stop")
	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt)
	<-sig
	fmt.Println("homesim: shutting down")
}

func runDemo(home *sim.Home) {
	fmt.Println("\nhomesim: --- universal remote demo (Figure 5) ---")
	steps := []struct {
		unit x10.UnitCode
		fn   x10.Function
		what string
		cond func() bool
	}{
		{sim.RemoteLaserdiscUnit, x10.On, "laserdisc playing", func() bool { return home.Laserdisc.State() == "playing" }},
		{sim.RemoteCameraUnit, x10.On, "camera capturing", func() bool { return home.Camera.State() == "capturing" }},
		{sim.RemoteCameraUnit, x10.Off, "camera stopped", func() bool { return home.Camera.State() == "stopped" }},
		{sim.RemoteLaserdiscUnit, x10.Off, "laserdisc stopped", func() bool { return home.Laserdisc.State() == "stopped" }},
	}
	for _, s := range steps {
		fmt.Printf("homesim: remote key %d %v → ", s.unit, s.fn)
		if err := home.Remote.Press(s.unit, s.fn); err != nil {
			log.Fatal(err)
		}
		deadline := time.Now().Add(10 * time.Second)
		for !s.cond() {
			if time.Now().After(deadline) {
				log.Fatalf("timed out waiting for %s", s.what)
			}
			time.Sleep(20 * time.Millisecond)
		}
		fmt.Println(s.what)
	}
	fmt.Println("homesim: demo complete")
}
