// Command homesim runs the full simulated smart home of the paper's
// prototype — Jini, X10, HAVi and mail networks (plus the UPnP extension)
// connected by the framework — and keeps it running so homectl can be
// pointed at it. With -demo it additionally replays the Figure 5
// Universal Remote Controller sequence and exits. With -homes N it runs
// N such homes peered into one multi-home federation: every home's
// services appear in every other home's repository under home-scoped IDs
// ("home-1/havi:dvcam-cam1").
//
// With -auth every home gets a generated identity and the neighborhood
// trusts itself mutually; -untrusted N additionally leaves the last N
// homes out of everyone's trust store, so their peer links are refused
// and their repositories never see the neighborhood's services — the
// secure-federation scenario docs/security.md walks through. With -auth
// the homes also negotiate the session-keyed binary fast path among
// themselves; -soap-only N keeps the last N homes off it, so links
// toward them demonstrably fall back to SOAP (proto= in the link lines).
//
//	homesim            # run until interrupted, print the VSR URL
//	homesim -demo      # run the universal remote demo and exit
//	homesim -homes 2   # two peered homes, run until interrupted
//	homesim -homes 3 -auth -untrusted 1   # 2 trusting homes + 1 outsider
//
// On SIGINT or SIGTERM every home is closed before exit — gateways
// withdraw their registrations and long-poll watchers are released —
// rather than the process dying with connections half-open.
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"os"
	"os/signal"
	"path/filepath"
	"syscall"
	"time"

	"homeconnect/internal/sim"
	"homeconnect/internal/x10"
)

func main() {
	demo := flag.Bool("demo", false, "replay the Figure 5 universal remote sequence and exit")
	upnp := flag.Bool("upnp", true, "include the UPnP network")
	homes := flag.Int("homes", 1, "number of peered homes to run")
	auth := flag.Bool("auth", false, "give every home an identity; the neighborhood trusts itself mutually")
	untrusted := flag.Int("untrusted", 0, "with -auth: leave the last N homes out of everyone's trust store")
	soapOnly := flag.Int("soap-only", 0, "run the last N homes without the binary fast path; their links fall back to SOAP (mixed-mode interop)")
	auditOn := flag.Bool("audit", false, "enable each home's audit log and its /health and /audit faces")
	flag.Parse()

	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Minute)
	defer cancel()

	cfg := sim.Prototype()
	cfg.UPnP = *upnp
	cfg.Audit = *auditOn
	perHome := 7
	if cfg.UPnP {
		perHome++
	}
	if *homes < 1 {
		log.Fatalf("homesim: -homes %d", *homes)
	}
	if *demo && *homes != 1 {
		log.Fatal("homesim: -demo runs a single home")
	}
	if *untrusted > 0 && !*auth {
		log.Fatal("homesim: -untrusted requires -auth")
	}
	if *auth && *homes < 2 {
		log.Fatal("homesim: -auth needs -homes 2 or more")
	}
	if *untrusted >= *homes {
		log.Fatalf("homesim: -untrusted %d must leave at least one trusted home", *untrusted)
	}
	if *soapOnly < 0 || *soapOnly > *homes {
		log.Fatalf("homesim: -soap-only %d must name between 0 and %d homes", *soapOnly, *homes)
	}
	cfg.SOAPOnlyLast = *soapOnly

	// Close on every exit path — normal return, demo completion and
	// log.Fatal cannot be relied on together, so closing is also wired to
	// the signal path below.
	var neighborhood []*sim.Home
	closeAll := func() {
		for _, h := range neighborhood {
			h.Close()
		}
	}
	defer closeAll()

	if *homes == 1 {
		fmt.Println("homesim: building the simulated home...")
		home, err := sim.NewHome(ctx, cfg)
		if err != nil {
			log.Fatal(err)
		}
		neighborhood = []*sim.Home{home}
		if err := home.WaitForServices(ctx, perHome); err != nil {
			closeAll()
			log.Fatal(err)
		}
	} else if *auth {
		fmt.Printf("homesim: building %d peered homes (%d untrusted, authentication enforced)...\n", *homes, *untrusted)
		var err error
		neighborhood, err = sim.NewSecureNeighborhood(ctx, *homes, *untrusted, cfg)
		if err != nil {
			log.Fatal(err)
		}
		// Trusted homes replicate only among themselves; an untrusted home
		// sees nothing but its own services.
		trustedTotal := perHome * (*homes - *untrusted)
		for i, h := range neighborhood {
			want := trustedTotal
			if i >= *homes-*untrusted {
				want = perHome
			}
			if err := h.WaitForServices(ctx, want); err != nil {
				closeAll()
				log.Fatal(err)
			}
		}
	} else {
		fmt.Printf("homesim: building %d peered homes...\n", *homes)
		var err error
		neighborhood, err = sim.NewNeighborhood(ctx, *homes, cfg)
		if err != nil {
			log.Fatal(err)
		}
		// Every home must see its own services plus every peer's imports.
		if err := sim.WaitForFederation(ctx, neighborhood, perHome**homes); err != nil {
			closeAll()
			log.Fatal(err)
		}
	}

	for _, home := range neighborhood {
		name := home.Fed.Home()
		if name == "" {
			name = "home"
		}
		fmt.Printf("homesim: %s repository at %s\n", name, home.Fed.VSRURL())
		if *auditOn {
			fmt.Printf("homesim: %s audit plane on — homectl -vsr %s health|peers|audit\n", name, home.Fed.VSRURL())
		}
		if *homes > 1 {
			fmt.Printf("homesim: %s peering endpoint at %s\n", name, home.Fed.PeerURL())
		}
		ids, err := home.ServiceIDs(ctx)
		if err != nil {
			closeAll()
			log.Fatal(err)
		}
		fmt.Printf("homesim: %s services:\n", name)
		for _, id := range ids {
			fmt.Printf("  %s\n", id)
		}
		if *auth {
			if id := home.Fed.Auth().Identity(); id != nil {
				fmt.Printf("homesim: %s public key %s\n", name, id.PublicKey())
				// Drop the identity to disk so an operator can reach the
				// home's private faces: homectl -identity <file> signs as
				// the home itself, which the /uddi, /health and /audit
				// faces require.
				idPath := filepath.Join(os.TempDir(), "homesim-"+name+".id")
				if err := id.Save(idPath); err != nil {
					closeAll()
					log.Fatal(err)
				}
				fmt.Printf("homesim: %s identity file at %s (pass to homectl -identity)\n", name, idPath)
			}
			for url, st := range home.Fed.PeerStatus() {
				proto := st.Proto
				if proto == "" {
					proto = "-"
				}
				fmt.Printf("homesim: %s link %s connected=%v authenticated=%v proto=%s imported=%d err=%q\n",
					name, url, st.Connected, st.Authenticated, proto, st.Imported, st.LastError)
			}
		}
	}

	if *demo {
		runDemo(neighborhood[0])
		return
	}

	fmt.Println("homesim: running — point homectl at a repository URL above; Ctrl-C to stop")
	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	awaitShutdown(sig, closeAll)
}

// awaitShutdown blocks until a signal arrives, then closes every home
// before returning. Keeping the close on the signal path (not just a
// defer) guarantees gateways withdraw their registrations and long-poll
// watchers are released even when later exit paths would skip defers.
func awaitShutdown(sig <-chan os.Signal, closeAll func()) {
	s := <-sig
	fmt.Printf("homesim: %v — shutting down\n", s)
	closeAll()
}

func runDemo(home *sim.Home) {
	fmt.Println("\nhomesim: --- universal remote demo (Figure 5) ---")
	steps := []struct {
		unit x10.UnitCode
		fn   x10.Function
		what string
		cond func() bool
	}{
		{sim.RemoteLaserdiscUnit, x10.On, "laserdisc playing", func() bool { return home.Laserdisc.State() == "playing" }},
		{sim.RemoteCameraUnit, x10.On, "camera capturing", func() bool { return home.Camera.State() == "capturing" }},
		{sim.RemoteCameraUnit, x10.Off, "camera stopped", func() bool { return home.Camera.State() == "stopped" }},
		{sim.RemoteLaserdiscUnit, x10.Off, "laserdisc stopped", func() bool { return home.Laserdisc.State() == "stopped" }},
	}
	for _, s := range steps {
		fmt.Printf("homesim: remote key %d %v → ", s.unit, s.fn)
		if err := home.Remote.Press(s.unit, s.fn); err != nil {
			log.Fatal(err)
		}
		deadline := time.Now().Add(10 * time.Second)
		for !s.cond() {
			if time.Now().After(deadline) {
				log.Fatalf("timed out waiting for %s", s.what)
			}
			time.Sleep(20 * time.Millisecond)
		}
		fmt.Println(s.what)
	}
	fmt.Println("homesim: demo complete")
}
