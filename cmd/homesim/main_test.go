// Tests for homesim's signal-driven shutdown: SIGTERM (not just
// interrupt) must close every home before the process exits, so gateway
// registrations are withdrawn and long-poll watchers released instead of
// dying into connection-refused noise.
package main

import (
	"context"
	"os"
	"syscall"
	"testing"
	"time"

	"homeconnect/internal/sim"
)

func TestAwaitShutdownClosesHomesOnSIGTERM(t *testing.T) {
	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancel()
	// A small home keeps the test quick; shutdown ordering is identical.
	home, err := sim.NewHome(ctx, sim.Config{Jini: true, Home: "home-1"})
	if err != nil {
		t.Fatal(err)
	}
	if err := home.WaitForServices(ctx, 1); err != nil {
		t.Fatal(err)
	}

	closed := make(chan struct{})
	sig := make(chan os.Signal, 1)
	done := make(chan struct{})
	go func() {
		awaitShutdown(sig, func() {
			home.Close()
			close(closed)
		})
		close(done)
	}()

	sig <- syscall.SIGTERM
	select {
	case <-done:
	case <-time.After(30 * time.Second):
		t.Fatal("awaitShutdown never returned after SIGTERM")
	}
	select {
	case <-closed:
	case <-time.After(time.Second):
		t.Fatal("close hook not invoked on signal")
	}
	// The close must be clean and complete: the federation is gone, so
	// repository inquiries fail rather than hang, and a second Close is a
	// no-op.
	qctx, qcancel := context.WithTimeout(context.Background(), 2*time.Second)
	defer qcancel()
	if _, err := home.Fed.Services(qctx); err == nil {
		t.Error("federation still serving after signal-driven close")
	}
	home.Close()
}
