// Tests for the documentation checker: link resolution and quickstart
// block extraction/wrapping.
package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func TestCheckLinks(t *testing.T) {
	dir := t.TempDir()
	if err := os.WriteFile(filepath.Join(dir, "exists.md"), []byte("x"), 0o644); err != nil {
		t.Fatal(err)
	}
	md := filepath.Join(dir, "doc.md")
	content := strings.Join([]string{
		"[ok](exists.md)",
		"[ok anchored](exists.md#section)",
		"[external](https://example.com/page)",
		"[anchor only](#local)",
		"[broken](missing.md)",
	}, "\n")
	if err := os.WriteFile(md, []byte(content), 0o644); err != nil {
		t.Fatal(err)
	}
	problems := checkLinks(md)
	if len(problems) != 1 || !strings.Contains(problems[0], "missing.md") {
		t.Errorf("checkLinks = %v, want exactly the missing.md complaint", problems)
	}
}

func TestExtractGoBlocks(t *testing.T) {
	dir := t.TempDir()
	md := filepath.Join(dir, "doc.md")
	content := "pre\n```go\na := 1\n_ = a\n```\nmid\n```sh\nnot go\n```\n```go\nb := 2\n_ = b\n```\n"
	if err := os.WriteFile(md, []byte(content), 0o644); err != nil {
		t.Fatal(err)
	}
	blocks, err := extractGoBlocks(md)
	if err != nil {
		t.Fatal(err)
	}
	if len(blocks) != 2 || !strings.Contains(blocks[0], "a := 1") || !strings.Contains(blocks[1], "b := 2") {
		t.Errorf("extractGoBlocks = %q, want the two go blocks", blocks)
	}
}

func TestWrapBlockInfersImportsAndCtx(t *testing.T) {
	src := wrapBlock(1, "fed, _ := homeconnect.New()\nfed.Call(ctx, \"x10:lamp-1\", \"On\")")
	for _, want := range []string{`"homeconnect"`, `"context"`, "var ctx = context.Background()", "func quickstartBlock1()"} {
		if !strings.Contains(src, want) {
			t.Errorf("wrapped block missing %q:\n%s", want, src)
		}
	}
	// A block that declares its own ctx must not get a second one.
	src = wrapBlock(2, "ctx := context.Background()\n_ = ctx")
	if strings.Contains(src, "var ctx") {
		t.Errorf("wrapper shadows the block's own ctx:\n%s", src)
	}
}
