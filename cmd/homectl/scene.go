// Scene subcommands: homectl runs declarative compositions from outside
// the federation process, resolving services through the repository,
// calling them over SOAP, and long-polling every gateway's event hub for
// triggers.
package main

import (
	"context"
	"fmt"
	"log"
	"net/url"
	"os"
	"sort"
	"strings"
	"time"

	"homeconnect/internal/core/events"
	"homeconnect/internal/core/scene"
	"homeconnect/internal/core/vsg"
	"homeconnect/internal/core/vsr"
	"homeconnect/internal/service"
	"homeconnect/internal/soap"
)

func sceneUsage() {
	fmt.Fprintf(os.Stderr, `usage: homectl [-vsr URL] scene <command>

commands:
  load <file>                    validate a scene file, print canonical XML
  list <file>                    list the scenes in a file
  run <file> <scene> [k=v ...]   fire one scene now; k=v become trigger payload
  status <file> [duration]       arm every scene's triggers for the duration
                                 (default 30s), then print run statistics
`)
	os.Exit(2)
}

func sceneCmd(ctx context.Context, repo *vsr.VSR, args []string) {
	if len(args) < 2 {
		sceneUsage()
	}
	switch args[0] {
	case "load":
		sceneLoad(args[1])
	case "list":
		sceneList(args[1])
	case "run":
		if len(args) < 3 {
			sceneUsage()
		}
		sceneRun(ctx, repo, args[1], args[2], args[3:])
	case "status":
		d := 30 * time.Second
		if len(args) >= 3 {
			var err error
			if d, err = time.ParseDuration(args[2]); err != nil {
				log.Fatalf("bad duration %q: %v", args[2], err)
			}
		}
		sceneStatus(ctx, repo, args[1], d)
	default:
		sceneUsage()
	}
}

func readScenes(path string) []*scene.Scene {
	data, err := os.ReadFile(path)
	if err != nil {
		log.Fatal(err)
	}
	scs, err := scene.Decode(data)
	if err != nil {
		log.Fatal(err)
	}
	return scs
}

func sceneLoad(path string) {
	scs := readScenes(path)
	os.Stdout.Write(scene.Encode(scs))
	fmt.Fprintf(os.Stderr, "%d scene(s) valid\n", len(scs))
}

func sceneList(path string) {
	scs := readScenes(path)
	fmt.Printf("%-20s %-9s %-6s %s\n", "SCENE", "TRIGGERS", "STEPS", "DOC")
	for _, s := range scs {
		fmt.Printf("%-20s %-9d %-6d %s\n", s.Name, len(s.Triggers), len(s.Steps), s.Doc)
	}
}

// soapCaller resolves scene calls through the repository and invokes them
// over SOAP — the same path as `homectl call`.
type soapCaller struct{ repo *vsr.VSR }

func (c soapCaller) Call(ctx context.Context, id, op string, args []service.Value) (service.Value, error) {
	r, err := c.repo.Lookup(ctx, id)
	if err != nil {
		return service.Value{}, err
	}
	opSpec, ok := r.Desc.Interface.Operation(op)
	if !ok {
		return service.Value{}, fmt.Errorf("%s.%s: %w", id, op, service.ErrNoSuchOperation)
	}
	if err := service.ValidateArgs(opSpec, args); err != nil {
		return service.Value{}, err
	}
	call := soap.Call{Namespace: vsg.Namespace(id), Operation: op}
	for i, p := range opSpec.Inputs {
		call.Args = append(call.Args, soap.Arg{Name: p.Name, Value: args[i]})
	}
	client := &soap.Client{URL: r.Endpoint, HTTP: authHTTP}
	return client.Call(ctx, vsg.Namespace(id)+"#"+op, call)
}

// attachSources long-polls each registered network's gateway hub so event
// triggers and publish steps work from outside the federation process.
// Networks are discovered from the repository's service registrations.
func attachSources(ctx context.Context, repo *vsr.VSR, eng *scene.Engine) []*scene.PollSource {
	remotes, err := repo.Find(ctx, vsr.Query{})
	if err != nil {
		log.Fatalf("discover networks: %v", err)
	}
	var sources []*scene.PollSource
	seen := make(map[string]bool)
	for _, r := range remotes {
		network := r.Desc.Context[service.CtxNetwork]
		if network == "" || seen[network] {
			continue
		}
		u, err := url.Parse(r.Endpoint)
		if err != nil {
			continue
		}
		seen[network] = true
		src := scene.NewPollSource(&events.Client{BaseURL: u.Scheme + "://" + u.Host + "/events", HTTP: authHTTP})
		eng.AddSource(network, src)
		sources = append(sources, src)
	}
	return sources
}

func sceneRun(ctx context.Context, repo *vsr.VSR, path, name string, kvs []string) {
	eng := scene.NewEngine(soapCaller{repo: repo})
	defer eng.Close()
	sources := attachSources(ctx, repo, eng)
	defer func() {
		for _, s := range sources {
			s.Close()
		}
	}()
	for _, sc := range readScenes(path) {
		if err := eng.Load(sc); err != nil {
			log.Fatal(err)
		}
	}
	trigger := service.Event{Source: "homectl", Topic: "manual", Payload: make(map[string]service.Value)}
	for _, kv := range kvs {
		k, v, ok := strings.Cut(kv, "=")
		if !ok {
			log.Fatalf("bad payload argument %q (want k=v)", kv)
		}
		trigger.Payload[k] = service.StringValue(v)
	}
	rec, err := eng.Run(ctx, name, trigger)
	if err != nil {
		log.Fatal(err)
	}
	for _, sr := range rec.Steps {
		out := sr.Result.Text()
		if sr.Result.IsVoid() {
			out = "ok"
		}
		if sr.Err != nil {
			out = "error: " + sr.Err.Error()
		}
		fmt.Printf("  step %-16s %-8s attempts=%d %s\n", sr.Name, sr.Kind, sr.Attempts, out)
	}
	fmt.Printf("scene %s: %s in %v\n", rec.Scene, rec.Outcome, rec.Latency.Round(time.Millisecond))
	if rec.Err != nil {
		log.Fatal(rec.Err)
	}
}

func sceneStatus(ctx context.Context, repo *vsr.VSR, path string, d time.Duration) {
	eng := scene.NewEngine(soapCaller{repo: repo})
	defer eng.Close()
	sources := attachSources(ctx, repo, eng)
	defer func() {
		for _, s := range sources {
			s.Close()
		}
	}()
	for _, sc := range readScenes(path) {
		if err := eng.Load(sc); err != nil {
			log.Fatal(err)
		}
	}
	if err := eng.StartAll(); err != nil {
		log.Fatal(err)
	}
	fmt.Fprintf(os.Stderr, "scenes armed for %v...\n", d)
	time.Sleep(d)
	statuses := eng.List()
	sort.Slice(statuses, func(i, j int) bool { return statuses[i].Name < statuses[j].Name })
	fmt.Printf("%-20s %-8s %-6s %-10s %-8s %-10s %s\n",
		"SCENE", "RUNS", "OK", "GUARDED", "FAILED", "MEAN", "LAST")
	for _, st := range statuses {
		mean := time.Duration(0)
		if st.Stats.Runs > 0 {
			mean = st.Stats.TotalLatency / time.Duration(st.Stats.Runs)
		}
		last := st.Stats.LastOutcome
		if last == "" {
			last = "-"
		}
		if st.Stats.LastError != "" {
			last += " (" + st.Stats.LastError + ")"
		}
		fmt.Printf("%-20s %-8d %-6d %-10d %-8d %-10v %s\n",
			st.Name, st.Stats.Runs, st.Stats.Completed, st.Stats.Guarded,
			st.Stats.Failed, mean.Round(time.Millisecond), last)
	}
}
