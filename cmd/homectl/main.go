// Command homectl is the federation's command-line client: it lists
// services from the Virtual Service Repository, shows their interfaces,
// and invokes operations directly over SOAP — the "control everything
// from a PC" scenario of the paper's introduction.
//
// Against a home that enforces authentication (vsrd -identity), give
// homectl the same identity file with -identity: its repository and SOAP
// requests are then signed as that home. To call into a *different*
// home's gateways (cross-home IDs), also -trust that home's public key
// so its response signatures verify.
//
//	homectl -vsr http://127.0.0.1:8600/uddi list
//	homectl -vsr ... describe x10:lamp-1
//	homectl -vsr ... call x10:lamp-1 SetLevel 60
//	homectl -vsr ... -identity cottage.id call x10:lamp-1 SetLevel 60
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"
	"strings"
	"time"

	"homeconnect/internal/cli"
	"homeconnect/internal/core/identity"
	"homeconnect/internal/core/vsg"
	"homeconnect/internal/core/vsr"
	"homeconnect/internal/service"
	"homeconnect/internal/soap"
	"homeconnect/internal/transport"
)

// authHTTP signs every homectl request when -identity is given; nil in
// open mode (protocol clients then fall back to the shared transport).
var authHTTP *http.Client

func main() {
	vsrURL := flag.String("vsr", "http://127.0.0.1:8600/uddi", "Virtual Service Repository URL (comma-separate replica-set members for failover)")
	timeout := flag.Duration("timeout", 15*time.Second, "operation timeout")
	idFile := flag.String("identity", "", "home identity file to sign requests with")
	auditN := flag.Int("n", 20, "audit: number of tail records to show")
	var trust cli.Multi
	flag.Var(&trust, "trust", "trusted home, 'name=hex-public-key' (repeatable; requires -identity)")
	flag.Parse()
	args := flag.Args()
	if len(args) == 0 {
		usage()
	}
	if *idFile != "" {
		id, err := identity.Load(*idFile)
		if err != nil {
			log.Fatal(err)
		}
		auth := identity.NewAuth(id.Home())
		if err := auth.SetIdentity(id); err != nil {
			log.Fatal(err)
		}
		if err := identity.Configure(auth, trust, nil, nil); err != nil {
			log.Fatal(err)
		}
		authHTTP = transport.NewAuthClient(auth)
	} else if len(trust) > 0 {
		log.Fatal("homectl: -trust requires -identity")
	}
	ctx, cancel := context.WithTimeout(context.Background(), *timeout)
	defer cancel()
	// A comma-separated -vsr is a replica set: repository traffic walks
	// the members with error-driven failover, so the same flag value
	// keeps working while the set changes leaders underneath it. The
	// operability faces (/health, /audit) are per-member by design and
	// read the first endpoint.
	endpoints := strings.Split(*vsrURL, ",")
	for i := range endpoints {
		endpoints[i] = strings.TrimSpace(endpoints[i])
	}
	opsURL := endpoints[0]
	repo := vsr.NewSet(endpoints...)
	if authHTTP != nil {
		repo.SetHTTPClient(authHTTP)
	}

	switch args[0] {
	case "list":
		list(ctx, repo)
	case "describe":
		if len(args) != 2 {
			usage()
		}
		describe(ctx, repo, args[1])
	case "call":
		if len(args) < 3 {
			usage()
		}
		call(ctx, repo, args[1], args[2], args[3:])
	case "scene":
		sceneCmd(ctx, repo, args[1:])
	case "health":
		health(ctx, opsURL)
	case "peers":
		peers(ctx, opsURL)
	case "audit":
		verify := false
		switch {
		case len(args) == 2 && args[1] == "verify":
			verify = true
		case len(args) > 1:
			usage()
		}
		auditCmd(ctx, opsURL, *auditN, verify)
	default:
		usage()
	}
}

func usage() {
	fmt.Fprintf(os.Stderr, `usage: homectl [-vsr URL] <command>

commands:
  list                          list every federation service
  describe <service-id>         show a service's interface
  call <service-id> <op> [arg]  invoke an operation (text-form args)
  scene <subcommand>            run declarative compositions (scene -h)
  health                        repository health snapshot (/health face)
  peers                         peering link status per remote home
  audit [verify]                audit-log tail; verify recomputes the chain
`)
	os.Exit(2)
}

func list(ctx context.Context, repo *vsr.VSR) {
	remotes, err := repo.Find(ctx, vsr.Query{})
	if err != nil {
		log.Fatal(err)
	}
	if len(remotes) == 0 {
		fmt.Println("no services registered")
		return
	}
	fmt.Printf("%-28s %-8s %-14s %s\n", "SERVICE", "MWARE", "INTERFACE", "ENDPOINT")
	for _, r := range remotes {
		fmt.Printf("%-28s %-8s %-14s %s\n", r.Desc.ID, r.Desc.Middleware, r.Desc.Interface.Name, r.Endpoint)
	}
}

func describe(ctx context.Context, repo *vsr.VSR, id string) {
	r, err := repo.Lookup(ctx, id)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("service   %s (%s)\n", r.Desc.ID, r.Desc.Name)
	fmt.Printf("middleware %s\n", r.Desc.Middleware)
	fmt.Printf("endpoint  %s\n", r.Endpoint)
	fmt.Printf("interface %s\n", r.Desc.Interface.Name)
	for _, op := range r.Desc.Interface.Operations {
		fmt.Printf("  %s\n", op.Signature())
		if op.Doc != "" {
			fmt.Printf("      %s\n", op.Doc)
		}
	}
	if len(r.Desc.Context) > 0 {
		fmt.Println("context")
		for k, v := range r.Desc.Context {
			fmt.Printf("  %s = %s\n", k, v)
		}
	}
}

func call(ctx context.Context, repo *vsr.VSR, id, op string, textArgs []string) {
	r, err := repo.Lookup(ctx, id)
	if err != nil {
		log.Fatal(err)
	}
	opSpec, ok := r.Desc.Interface.Operation(op)
	if !ok {
		log.Fatalf("service %s has no operation %s", id, op)
	}
	args, err := service.CoerceArgs(opSpec, textArgs)
	if err != nil {
		log.Fatal(err)
	}
	callDoc := soap.Call{Namespace: vsg.Namespace(id), Operation: op}
	for i, p := range opSpec.Inputs {
		callDoc.Args = append(callDoc.Args, soap.Arg{Name: p.Name, Value: args[i]})
	}
	client := &soap.Client{URL: r.Endpoint, HTTP: authHTTP}
	result, err := client.Call(ctx, vsg.Namespace(id)+"#"+op, callDoc)
	if err != nil {
		log.Fatal(err)
	}
	if result.IsVoid() {
		fmt.Println("ok")
		return
	}
	fmt.Println(result.Text())
}
