// Operability subcommands for homectl: render the home's /health and
// /audit faces (served by vsrd, vsgd and homesim beside their existing
// endpoints) for an operator terminal. In an authenticated home these
// faces are private to the home's own identity, so pass the same
// -identity file the daemons run with.
package main

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"log"
	"net/http"
	"net/url"
	"os"
	"sort"
	"strconv"
	"strings"

	"homeconnect/internal/core/audit"
	"homeconnect/internal/core/ops"
	"homeconnect/internal/core/peer"
)

// opsBase derives the face root from the -vsr URL: /health and /audit
// are mounted beside /uddi on the same listener.
func opsBase(vsrURL string) string {
	return strings.TrimSuffix(strings.TrimRight(vsrURL, "/"), "/uddi")
}

// opsGet fetches one face, signing the request when -identity is set.
func opsGet(ctx context.Context, faceURL string) ([]byte, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, faceURL, nil)
	if err != nil {
		return nil, err
	}
	client := authHTTP
	if client == nil {
		client = http.DefaultClient
	}
	resp, err := client.Do(req)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		return nil, err
	}
	if resp.StatusCode != http.StatusOK {
		return nil, fmt.Errorf("GET %s: %s: %s", faceURL, resp.Status, strings.TrimSpace(string(body)))
	}
	return body, nil
}

// health prints the /health snapshot as served: it is already indented
// JSON, and each deployment shape (vsrd, homesim federation, vsgd)
// reports its own layout. An audit persistence failure is surfaced as a
// loud warning on stderr so it cannot hide inside the JSON.
func health(ctx context.Context, vsrURL string) {
	body, err := opsGet(ctx, opsBase(vsrURL)+"/health")
	if err != nil {
		log.Fatal(err)
	}
	os.Stdout.Write(body)
	var report struct {
		Audit audit.Stats `json:"audit"`
	}
	if json.Unmarshal(body, &report) == nil && report.Audit.WriteError != "" {
		fmt.Fprintf(os.Stderr, "\nhomectl: AUDIT WRITE ERROR — the log keeps recording in memory but %s is incomplete: %s\n",
			dash(report.Audit.Path), report.Audit.WriteError)
	}
	warnReplicationLag(body)
}

// replicationReport is the slice of /health the replication widgets
// read: the node's role block plus the durable registry's snapshot
// interval (the lag-warning yardstick).
type replicationReport struct {
	Replication *struct {
		Role      string `json:"role"`
		Epoch     uint64 `json:"epoch"`
		Leader    string `json:"leader"`
		Seq       uint64 `json:"seq"`
		Lag       uint64 `json:"lag"`
		Attached  bool   `json:"attached"`
		LastError string `json:"last_error"`
	} `json:"replication"`
	Durability *struct {
		SnapshotEvery int `json:"snapshot_every"`
	} `json:"durability"`
}

// warnReplicationLag shouts on stderr when a replica has fallen further
// behind its leader than one snapshot interval: past that point a feed
// interruption risks a full resync instead of a journal catch-up.
func warnReplicationLag(body []byte) {
	var r replicationReport
	if json.Unmarshal(body, &r) != nil || r.Replication == nil || r.Replication.Role != "replica" {
		return
	}
	interval := uint64(1024) // registry default snapshot interval
	if r.Durability != nil && r.Durability.SnapshotEvery > 0 {
		interval = uint64(r.Durability.SnapshotEvery)
	}
	if r.Replication.Lag > interval {
		fmt.Fprintf(os.Stderr, "\nhomectl: REPLICATION LAG — replica is %d changes behind %s (snapshot interval %d); a feed interruption now forces a full resync\n",
			r.Replication.Lag, dash(r.Replication.Leader), interval)
	}
}

// peers renders the peering section of /health as a table, one row per
// replication link.
func peers(ctx context.Context, vsrURL string) {
	body, err := opsGet(ctx, opsBase(vsrURL)+"/health")
	if err != nil {
		log.Fatal(err)
	}
	var report struct {
		Peers map[string]peer.Status `json:"peers"`
	}
	if err := json.Unmarshal(body, &report); err != nil {
		log.Fatal(err)
	}
	printReplication(body)
	if len(report.Peers) == 0 {
		fmt.Println("no peer links")
		return
	}
	names := make([]string, 0, len(report.Peers))
	for name := range report.Peers {
		names = append(names, name)
	}
	sort.Strings(names)
	// PROTO sits after RESYNCS: scripts address the earlier columns by
	// position (the soak job's awk does), so new columns append.
	fmt.Printf("%-12s %-6s %-5s %-8s %-7s %-7s %-7s %-6s %s\n", "PEER", "STATE", "AUTH", "IMPORTED", "APPLIED", "CURSOR", "RESYNCS", "PROTO", "DETAIL")
	for _, name := range names {
		st := report.Peers[name]
		state, auth := "down", "-"
		if st.Connected {
			state = "up"
		}
		if st.Authenticated {
			auth = "yes"
		}
		detail := st.URL
		if st.LastError != "" {
			detail = st.LastError
		}
		label := st.RemoteHome
		if label == "" {
			label = name
		}
		fmt.Printf("%-12s %-6s %-5s %-8d %-7d %-7d %-7d %-6s %s\n", label, state, auth, st.Imported, st.Applied, st.Cursor, st.Resyncs, dash(st.Proto), detail)
	}
}

// auditCmd renders the /audit face: log stats, the verification verdict
// when asked for, and the newest records oldest-first.
func auditCmd(ctx context.Context, vsrURL string, n int, verify bool) {
	q := url.Values{}
	q.Set("n", strconv.Itoa(n))
	if verify {
		q.Set("verify", "1")
	}
	body, err := opsGet(ctx, opsBase(vsrURL)+"/audit?"+q.Encode())
	if err != nil {
		log.Fatal(err)
	}
	var snap ops.AuditSnapshot
	if err := json.Unmarshal(body, &snap); err != nil {
		log.Fatal(err)
	}
	if !snap.Enabled {
		fmt.Println("auditing is off (start the daemon with -audit or -audit-log)")
		return
	}
	where := "in memory"
	if snap.Stats.Path != "" {
		where = snap.Stats.Path
	}
	fmt.Printf("audit: %d records, %d sealed batches of %d (%s)\n",
		snap.Stats.Seq, snap.Stats.Batches, snap.Stats.BatchSize, where)
	if snap.Stats.LastRoot != "" {
		fmt.Printf("last root: %s\n", snap.Stats.LastRoot)
	}
	if snap.Stats.WriteError != "" {
		fmt.Printf("WRITE ERROR: %s\n", snap.Stats.WriteError)
	}
	if verify {
		if snap.Verify == nil {
			log.Fatal("homectl: face did not return a verification result")
		}
		if !snap.Verify.OK {
			fmt.Printf("verify: FAILED — %s\n", snap.Verify.Error)
			os.Exit(1)
		}
		fmt.Printf("verify: OK — chain covers %d records, %d sealed roots recomputed, %d unsealed\n",
			snap.Verify.Records, snap.Verify.Batches, snap.Verify.Unsealed)
	}
	if len(snap.Tail) == 0 {
		return
	}
	fmt.Printf("%5s %-12s %-14s %-10s %-12s %-24s %s\n", "SEQ", "TIME", "TYPE", "FACE", "CALLER", "SERVICE", "DETAIL")
	for _, rec := range snap.Tail {
		fmt.Printf("%5d %-12s %-14s %-10s %-12s %-24s %s\n",
			rec.Seq, rec.Time().Format("15:04:05.000"), rec.Type, rec.Face,
			dash(rec.Caller), dash(rec.Service), auditDetail(rec))
	}
}

// printReplication renders the repository's replica-set role above the
// peer table when /health carries a replication block: the peer links
// below all ride whichever member this is, so the role frames the table.
func printReplication(body []byte) {
	var r replicationReport
	if json.Unmarshal(body, &r) != nil || r.Replication == nil {
		return
	}
	st := r.Replication
	fmt.Printf("%-8s %-6s %-5s %s\n", "ROLE", "EPOCH", "LAG", "LEADER")
	detail := st.Leader
	if st.Role == "replica" && !st.Attached {
		detail += " (attaching)"
	}
	if st.LastError != "" {
		detail += " — " + st.LastError
	}
	fmt.Printf("%-8s %-6d %-5d %s\n\n", st.Role, st.Epoch, st.Lag, dash(detail))
	warnReplicationLag(body)
}

func dash(s string) string {
	if s == "" {
		return "-"
	}
	return s
}

// auditDetail folds the operation and matched pattern into the free-form
// detail column so deny records show what rule fired.
func auditDetail(rec audit.Record) string {
	var parts []string
	if rec.Op != "" {
		parts = append(parts, "op "+rec.Op)
	}
	if rec.Pattern != "" {
		parts = append(parts, "rule "+rec.Pattern)
	}
	if rec.Detail != "" {
		parts = append(parts, rec.Detail)
	}
	return strings.Join(parts, "; ")
}
