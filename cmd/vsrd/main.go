// Command vsrd runs a standalone Virtual Service Repository: the
// WSDL/UDDI registry every gateway publishes to, resolves from, and
// watches for change notifications. -journal sizes the change journal;
// watchers further behind than it are told to resync.
//
// With -home the repository also serves a peering endpoint (/peer):
// other homes replicate this registry's exports from it, and -peer
// imports theirs in return, filing each remote service under its home
// scope ("home-a/jini:laserdisc-1"). -export-allow/-export-deny set the
// export policy (service-ID patterns, deny wins, "havi:*" style
// wildcards).
//
// With -replica-set (same ordered list on every member) the repository
// joins a leader/replica set: one member serves writes, the others feed
// from its watch stream and serve reads, and when the leader dies the
// survivors elect the most-caught-up member deterministically. -replica-of
// forces the initial role; see docs/operations.md "Replication &
// failover".
//
// With -identity the home takes a durable cryptographic identity (the
// file is created on first use; the public key is printed so other
// homes can -trust it) and every face starts enforcing the home
// boundary: /uddi is private to this home's own components, /peer and
// gateway calls are open only to homes named by -trust, and
// -acl-allow/-acl-deny refine per-service access per caller home
// ("guest-*=havi:*" patterns, deny wins). See docs/security.md for the
// trust model and a full walkthrough, docs/operations.md for the flag
// reference.
//
//	vsrd -addr 127.0.0.1:8600
//	vsrd -addr 127.0.0.1:8600 -journal 8192
//	vsrd -addr 127.0.0.1:8600 -home cottage \
//	     -peer http://apartment.example:8600/peer -export-deny 'x10:*'
//	vsrd -addr 127.0.0.1:8600 -home cottage -identity cottage.id \
//	     -trust 'apartment=2b7e...' -acl-deny '*=x10:*'
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"os/signal"
	"syscall"

	"homeconnect/internal/cli"
)

func main() {
	addr := flag.String("addr", "127.0.0.1:8600", "listen address")
	journal := flag.Int("journal", 0, "change-journal capacity (0 = default)")
	home := flag.String("home", "", "home name for inter-home federation (enables /peer)")
	idFile := flag.String("identity", "", "home identity file (created on first use; requires -home)")
	auditOn := flag.Bool("audit", false, "enable the in-memory audit log (see -audit-log to persist)")
	auditLog := flag.String("audit-log", "", "persist the audit log to this file (implies -audit)")
	auditBatch := flag.Int("audit-batch", 0, "audit Merkle batch size (0 = default 64)")
	dataDir := flag.String("data-dir", "", "durable registry directory (WAL + snapshots; recovered on restart)")
	fsync := flag.String("fsync", "", "WAL fsync policy: always, interval or off (default interval; requires -data-dir)")
	snapshotEvery := flag.Int("snapshot-every", 0, "snapshot after this many WAL records (0 = default 1024, negative disables; requires -data-dir)")
	binary := flag.Bool("binary", true, "offer the session-keyed binary fast path to peers (effective with -identity; SOAP/HTTP stays available)")
	replicaOf := flag.String("replica-of", "", "boot as a replica feeding from this leader repository (host:port or URL)")
	var peers, allow, deny, trust, aclAllow, aclDeny, replicaSet cli.Multi
	flag.Var(&replicaSet, "replica-set", "replica-set member (repeatable, ordered — give every member the same list; enables failover elections)")
	flag.Var(&peers, "peer", "peer endpoint to import from (repeatable; requires -home)")
	flag.Var(&allow, "export-allow", "export-policy allow pattern (repeatable)")
	flag.Var(&deny, "export-deny", "export-policy deny pattern (repeatable)")
	flag.Var(&trust, "trust", "trusted home, 'name=hex-public-key' (repeatable; requires -identity)")
	flag.Var(&aclAllow, "acl-allow", "service-ACL allow rule, 'caller-pattern=service-pattern' (repeatable)")
	flag.Var(&aclDeny, "acl-deny", "service-ACL deny rule, 'caller-pattern=service-pattern' (repeatable)")
	flag.Parse()

	srv, err := startServer(config{
		addr:          *addr,
		journal:       *journal,
		home:          *home,
		peers:         peers,
		allow:         allow,
		deny:          deny,
		idFile:        *idFile,
		trust:         trust,
		aclAllow:      aclAllow,
		aclDeny:       aclDeny,
		audit:         *auditOn,
		auditPath:     *auditLog,
		auditBatch:    *auditBatch,
		binary:        *binary,
		dataDir:       *dataDir,
		fsync:         *fsync,
		snapshotEvery: *snapshotEvery,
		replicaOf:     *replicaOf,
		replicaSet:    replicaSet,
	})
	if err != nil {
		log.Fatal(err)
	}
	defer srv.Close()
	fmt.Printf("vsrd: repository at %s (gateways may watch for changes here)\n", srv.URL())
	if d := srv.Registry().Durability(); d.Enabled {
		rec := d.Recovery
		state := "recovered after unclean shutdown"
		switch {
		case rec.CleanShutdown:
			state = "clean shutdown"
		case rec.Seq == 0 && rec.Replayed == 0 && rec.SnapshotSeq == 0:
			// Nothing on disk to recover: a brand-new data directory, not
			// a crash.
			state = "fresh data directory"
		}
		fmt.Printf("vsrd: durable registry in %s (%s): %d entries, seq %d, %d WAL records replayed; fsync %s\n",
			d.Dir, state, rec.Entries, rec.Seq, rec.Replayed, d.Fsync)
	}
	if srv.node != nil {
		st := srv.node.Status()
		if st.Role == "leader" {
			fmt.Printf("vsrd: replication: leader of epoch %d at seq %d\n", st.Epoch, st.Seq)
		} else {
			fmt.Printf("vsrd: replication: replica of %s (epoch %d, seq %d, attached %v)\n",
				st.Leader, st.Epoch, st.Seq, st.Attached)
		}
		if srv.replicationWarn != nil {
			fmt.Printf("vsrd: replication: first attach failed (%v); retrying in the background\n", srv.replicationWarn)
		}
	}
	if *home != "" {
		fmt.Printf("vsrd: home %q peering endpoint at %s\n", *home, srv.PeerURL())
	}
	if srv.identity != nil {
		state := "loaded"
		if srv.identityGenerated {
			state = "generated"
		}
		fmt.Printf("vsrd: identity %s — public key %s\n", state, srv.identity.PublicKey())
		fmt.Printf("vsrd: authentication enforced; trusted homes: %v\n", srv.Auth().TrustedHomes())
	}
	for _, p := range peers {
		fmt.Printf("vsrd: importing from peer %s\n", p)
	}
	if srv.audit != nil {
		where := "in memory"
		if *auditLog != "" {
			where = *auditLog
		}
		fmt.Printf("vsrd: audit plane on (%s); /health and /audit faces live\n", where)
	}

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	<-sig
	fmt.Println("vsrd: shutting down")
	// Graceful stop: the registry writes its clean-shutdown WAL marker and
	// journals registry.shutdown, so the next boot skips tail recovery.
	// The deferred Close is then a no-op.
	srv.Shutdown()
}
