// Command vsrd runs a standalone Virtual Service Repository: the
// WSDL/UDDI registry every gateway publishes to, resolves from, and
// watches for change notifications. -journal sizes the change journal;
// watchers further behind than it are told to resync.
//
//	vsrd -addr 127.0.0.1:8600
//	vsrd -addr 127.0.0.1:8600 -journal 8192
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"os/signal"
)

func main() {
	addr := flag.String("addr", "127.0.0.1:8600", "listen address")
	journal := flag.Int("journal", 0, "change-journal capacity (0 = default)")
	flag.Parse()

	srv, err := startServer(*addr, *journal)
	if err != nil {
		log.Fatal(err)
	}
	defer srv.Close()
	fmt.Printf("vsrd: repository at %s (gateways may watch for changes here)\n", srv.URL())

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt)
	<-sig
	fmt.Println("vsrd: shutting down")
}
