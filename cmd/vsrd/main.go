// Command vsrd runs a standalone Virtual Service Repository: the
// WSDL/UDDI registry every gateway publishes to and resolves from.
//
//	vsrd -addr 127.0.0.1:8600
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"os/signal"
)

func main() {
	addr := flag.String("addr", "127.0.0.1:8600", "listen address")
	flag.Parse()

	srv, err := startServer(*addr)
	if err != nil {
		log.Fatal(err)
	}
	defer srv.Close()
	fmt.Printf("vsrd: repository at %s\n", srv.URL())

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt)
	<-sig
	fmt.Println("vsrd: shutting down")
}
