// Command vsrd runs a standalone Virtual Service Repository: the
// WSDL/UDDI registry every gateway publishes to, resolves from, and
// watches for change notifications. -journal sizes the change journal;
// watchers further behind than it are told to resync.
//
// With -home the repository also serves a peering endpoint (/peer):
// other homes replicate this registry's exports from it, and -peer
// imports theirs in return, filing each remote service under its home
// scope ("home-a/jini:laserdisc-1"). -export-allow/-export-deny set the
// export policy (service-ID patterns, deny wins, "havi:*" style
// wildcards).
//
//	vsrd -addr 127.0.0.1:8600
//	vsrd -addr 127.0.0.1:8600 -journal 8192
//	vsrd -addr 127.0.0.1:8600 -home cottage \
//	     -peer http://apartment.example:8600/peer -export-deny 'x10:*'
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"os/signal"
	"syscall"
)

// multiFlag collects a repeatable string flag.
type multiFlag []string

func (m *multiFlag) String() string { return fmt.Sprint([]string(*m)) }

func (m *multiFlag) Set(v string) error {
	*m = append(*m, v)
	return nil
}

func main() {
	addr := flag.String("addr", "127.0.0.1:8600", "listen address")
	journal := flag.Int("journal", 0, "change-journal capacity (0 = default)")
	home := flag.String("home", "", "home name for inter-home federation (enables /peer)")
	var peers, allow, deny multiFlag
	flag.Var(&peers, "peer", "peer endpoint to import from (repeatable; requires -home)")
	flag.Var(&allow, "export-allow", "export-policy allow pattern (repeatable)")
	flag.Var(&deny, "export-deny", "export-policy deny pattern (repeatable)")
	flag.Parse()

	srv, err := startServer(config{
		addr:    *addr,
		journal: *journal,
		home:    *home,
		peers:   peers,
		allow:   allow,
		deny:    deny,
	})
	if err != nil {
		log.Fatal(err)
	}
	defer srv.Close()
	fmt.Printf("vsrd: repository at %s (gateways may watch for changes here)\n", srv.URL())
	if *home != "" {
		fmt.Printf("vsrd: home %q peering endpoint at %s\n", *home, srv.PeerURL())
	}
	for _, p := range peers {
		fmt.Printf("vsrd: importing from peer %s\n", p)
	}

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	<-sig
	fmt.Println("vsrd: shutting down")
}
