// Server assembly for vsrd: repository, journal sizing and the optional
// inter-home peering layer, kept out of main so it stays flag-only and
// testable.
package main

import (
	"fmt"

	"homeconnect/internal/core/peer"
	"homeconnect/internal/core/vsr"
)

// config carries vsrd's flags.
type config struct {
	addr    string
	journal int
	home    string
	peers   []string
	allow   []string
	deny    []string
}

// server is the assembled repository plus its peering layer.
type server struct {
	*vsr.Server
	peering *peer.Peering
}

// Close stops replication links before the repository they write to.
func (s *server) Close() {
	if s.peering != nil {
		s.peering.Close()
	}
	s.Server.Close()
}

// startServer brings up the repository per config. A positive journal
// capacity resizes the change journal before traffic flows; a home name
// mounts the peering endpoint and starts one import link per peer URL.
func startServer(cfg config) (*server, error) {
	srv, err := vsr.StartServer(cfg.addr)
	if err != nil {
		return nil, err
	}
	if cfg.journal > 0 {
		srv.Registry().SetJournalCapacity(cfg.journal)
	}
	s := &server{Server: srv}
	if cfg.home == "" {
		if len(cfg.peers) > 0 || len(cfg.allow) > 0 || len(cfg.deny) > 0 {
			srv.Close()
			return nil, fmt.Errorf("vsrd: -peer/-export-allow/-export-deny require -home")
		}
		return s, nil
	}
	p, err := peer.New(cfg.home, srv.Registry())
	if err != nil {
		srv.Close()
		return nil, err
	}
	p.SetPolicy(peer.Policy{Allow: cfg.allow, Deny: cfg.deny})
	srv.MountPeer(p.ExportHandler())
	s.peering = p
	for _, url := range cfg.peers {
		if _, err := p.Peer(url); err != nil {
			s.Close()
			return nil, err
		}
	}
	return s, nil
}
