package main

import "homeconnect/internal/core/vsr"

// startServer wraps vsr.StartServer so main stays flag-only.
func startServer(addr string) (*vsr.Server, error) {
	return vsr.StartServer(addr)
}
