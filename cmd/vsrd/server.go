package main

import "homeconnect/internal/core/vsr"

// startServer wraps vsr.StartServer so main stays flag-only. A positive
// journal capacity resizes the change journal before traffic flows.
func startServer(addr string, journal int) (*vsr.Server, error) {
	srv, err := vsr.StartServer(addr)
	if err != nil {
		return nil, err
	}
	if journal > 0 {
		srv.Registry().SetJournalCapacity(journal)
	}
	return srv, nil
}
