// Server assembly for vsrd: repository, journal sizing, the optional
// inter-home peering layer and the home's authentication context, kept
// out of main so it stays flag-only and testable.
package main

import (
	"context"
	"fmt"
	"strings"

	"homeconnect/internal/core/audit"
	"homeconnect/internal/core/identity"
	"homeconnect/internal/core/ops"
	"homeconnect/internal/core/peer"
	"homeconnect/internal/core/replica"
	"homeconnect/internal/core/vsr"
	"homeconnect/internal/transport"
	"homeconnect/internal/uddi"
)

// config carries vsrd's flags.
type config struct {
	addr       string
	journal    int
	home       string
	peers      []string
	allow      []string
	deny       []string
	idFile     string
	trust      []string
	aclAllow   []string
	aclDeny    []string
	audit      bool
	auditPath  string
	auditBatch int
	// binary gates the session-keyed binary fast path (effective only
	// with an identity; SOAP/HTTP always remains available).
	binary bool
	// dataDir, fsync, snapshotEvery arm the durable registry (WAL +
	// snapshots under dataDir, recovered on restart).
	dataDir       string
	fsync         string
	snapshotEvery int
	// replicaOf boots this repository as a replica feeding from that
	// leader; replicaSet is the ordered replica-set endpoint list (the
	// election tie-break order — give every member the same list).
	replicaOf  string
	replicaSet []string
}

// server is the assembled repository plus its peering layer.
type server struct {
	*vsr.Server
	peering *peer.Peering
	// audit is the home's audit log, nil when auditing is off.
	audit *audit.Log
	// identity is the loaded (or freshly generated) home identity, nil
	// when the repository runs open.
	identity *identity.Identity
	// identityGenerated reports that this run created the identity file,
	// so main can print the new public key once.
	identityGenerated bool
	// node is the replica-set coordination loop, nil outside a set.
	node     *replica.Node
	nodeStop context.CancelFunc
	// replicationWarn is a non-fatal bootstrap failure (e.g. the
	// configured leader was not up yet); the loop keeps retrying, main
	// just reports it.
	replicationWarn error
}

// Close stops replication links before the repository they write to.
func (s *server) Close() {
	if s.nodeStop != nil {
		s.nodeStop()
	}
	if s.peering != nil {
		s.peering.Close()
	}
	s.Server.Close()
	_ = s.audit.Close()
}

// Shutdown is the graceful (SIGTERM) stop: replication halts first, then
// the registry writes its clean-shutdown WAL marker and journals a
// registry.shutdown audit event, so the next boot from the same -data-dir
// skips tail-scan recovery. Safe (and equivalent to Close) without
// -data-dir.
func (s *server) Shutdown() {
	if s.nodeStop != nil {
		s.nodeStop()
	}
	if s.peering != nil {
		s.peering.Close()
	}
	_ = s.Registry().Shutdown()
	s.Server.Close()
	_ = s.audit.Close()
}

// healthReport is vsrd's /health face body: the standalone repository's
// condition (no gateways here — each vsgd serves its own).
type healthReport struct {
	Home        string                 `json:"home,omitempty"`
	AuthEnabled bool                   `json:"auth_enabled"`
	Registry    registryStats          `json:"registry"`
	Replication *replica.Status        `json:"replication,omitempty"`
	Peers       map[string]peer.Status `json:"peers,omitempty"`
	Wire        transport.WireStats    `json:"wire,omitempty"`
	Audit       audit.Stats            `json:"audit"`
	Durability  *uddi.DurabilityStats  `json:"durability,omitempty"`
}

type registryStats struct {
	Entries int    `json:"entries"`
	Saves   int64  `json:"saves"`
	Finds   int64  `json:"finds"`
	Seq     uint64 `json:"seq"`
}

// mountOps installs the /health and /audit faces and, when the audit
// flags ask for it, opens the audit log and wires every component's
// recorder into it.
func (s *server) mountOps(cfg config, auth *identity.Auth) error {
	if cfg.audit || cfg.auditPath != "" {
		l, err := audit.New(audit.Options{Path: cfg.auditPath, BatchSize: cfg.auditBatch})
		if err != nil {
			return err
		}
		s.audit = l
		if auth != nil {
			auth.SetRecorder(audit.WithFace(l, "auth", cfg.home))
		}
		s.Registry().SetAuditRecorder(audit.WithFace(l, "vsr", cfg.home))
		if s.peering != nil {
			s.peering.SetRecorder(audit.WithFace(l, "peer", cfg.home))
		}
		if s.node != nil {
			s.node.SetRecorder(audit.WithFace(l, "replica", cfg.home))
		}
	}
	s.MountOps(
		ops.HealthHandler(func() any {
			saves, finds := s.Registry().Stats()
			var peers map[string]peer.Status
			var wire transport.WireStats
			if s.peering != nil {
				peers = s.peering.Status()
				wire = s.peering.WireStats()
			}
			var durability *uddi.DurabilityStats
			if d := s.Registry().Durability(); d.Enabled {
				durability = &d
			}
			var repl *replica.Status
			if s.node != nil {
				st := s.node.Status()
				repl = &st
			}
			return healthReport{
				Home:        cfg.home,
				AuthEnabled: auth != nil && auth.Enabled(),
				Registry: registryStats{
					Entries: s.Registry().Len(),
					Saves:   saves,
					Finds:   finds,
					Seq:     s.Registry().Seq(),
				},
				Replication: repl,
				Peers:       peers,
				Wire:        wire,
				Audit:       s.audit.Stats(),
				Durability:  durability,
			}
		}),
		ops.AuditHandler(func() *audit.Log { return s.audit }),
	)
	return nil
}

// normalizeEndpoint turns a replica-set member name into the registry
// URL form the set compares by: bare "host:port" gains the scheme and
// the /uddi path, so flags can name members the same way -addr does.
func normalizeEndpoint(ep string) string {
	if ep == "" {
		return ""
	}
	if !strings.Contains(ep, "://") {
		ep = "http://" + ep
	}
	if !strings.HasSuffix(ep, "/uddi") {
		ep = strings.TrimRight(ep, "/") + "/uddi"
	}
	return ep
}

// buildNode assembles the replica-set coordination node (nil config →
// nil node). It only constructs; bootReplication later decides the role
// and starts the loop, after the operability faces are mounted.
func buildNode(cfg config, srv *vsr.Server) (*replica.Node, error) {
	if cfg.replicaOf == "" && len(cfg.replicaSet) == 0 {
		return nil, nil
	}
	set := make([]string, 0, len(cfg.replicaSet))
	for _, ep := range cfg.replicaSet {
		set = append(set, normalizeEndpoint(ep))
	}
	return replica.New(replica.Config{
		Self:      srv.URL(),
		Set:       set,
		ReplicaOf: normalizeEndpoint(cfg.replicaOf),
		Registry:  srv.Registry(),
	})
}

// bootReplication decides the node's initial role and starts the
// coordination loop. A failed first attach is not fatal — the loop keeps
// retrying (and elects, if the configured leader stays dead) — but it is
// returned so main can report it.
func (s *server) bootReplication() error {
	if s.node == nil {
		return nil
	}
	ctx, cancel := context.WithCancel(context.Background())
	s.nodeStop = cancel
	err := s.node.Bootstrap(ctx)
	go s.node.Run(ctx)
	return err
}

// buildAuth assembles the authentication context from flags: the home's
// identity file (created on first use), trust entries and ACL rules.
func buildAuth(cfg config) (*identity.Auth, *identity.Identity, bool, error) {
	auth := identity.NewAuth(cfg.home)
	var id *identity.Identity
	generated := false
	if cfg.idFile != "" {
		var err error
		id, generated, err = identity.LoadOrGenerate(cfg.idFile, cfg.home)
		if err != nil {
			return nil, nil, false, err
		}
		if err := auth.SetIdentity(id); err != nil {
			return nil, nil, false, err
		}
	}
	if err := identity.Configure(auth, cfg.trust, cfg.aclAllow, cfg.aclDeny); err != nil {
		return nil, nil, false, err
	}
	return auth, id, generated, nil
}

// buildRegistry constructs the backing store: durable (WAL + snapshots
// under -data-dir, recovered on boot) when dataDir is set, plain
// in-memory otherwise.
func buildRegistry(cfg config) (*uddi.Server, error) {
	if cfg.dataDir == "" {
		if cfg.fsync != "" || cfg.snapshotEvery != 0 {
			return nil, fmt.Errorf("vsrd: -fsync/-snapshot-every require -data-dir")
		}
		return uddi.NewServer(), nil
	}
	return uddi.NewDurableServer(uddi.DurabilityOptions{
		Dir:           cfg.dataDir,
		Fsync:         uddi.FsyncPolicy(cfg.fsync),
		SnapshotEvery: cfg.snapshotEvery,
	})
}

// startServer brings up the repository per config. A positive journal
// capacity resizes the change journal before traffic flows; a data
// directory makes the registry durable; a home name mounts the peering
// endpoint and starts one import link per peer URL; an identity file
// arms authentication on every face.
func startServer(cfg config) (*server, error) {
	authFlagged := cfg.idFile != "" || len(cfg.trust) > 0 || len(cfg.aclAllow) > 0 || len(cfg.aclDeny) > 0
	if cfg.home == "" {
		if len(cfg.peers) > 0 || len(cfg.allow) > 0 || len(cfg.deny) > 0 || authFlagged {
			return nil, fmt.Errorf("vsrd: -peer/-export-*/-identity/-trust/-acl-* require -home")
		}
		reg, err := buildRegistry(cfg)
		if err != nil {
			return nil, err
		}
		srv, err := vsr.StartServerWith(cfg.addr, reg, nil)
		if err != nil {
			return nil, err
		}
		if cfg.journal > 0 {
			srv.Registry().SetJournalCapacity(cfg.journal)
		}
		s := &server{Server: srv}
		if s.node, err = buildNode(cfg, srv); err != nil {
			srv.Close()
			return nil, err
		}
		if err := s.mountOps(cfg, nil); err != nil {
			s.Close()
			return nil, err
		}
		s.replicationWarn = s.bootReplication()
		return s, nil
	}
	auth, id, generated, err := buildAuth(cfg)
	if err != nil {
		return nil, err
	}
	reg, err := buildRegistry(cfg)
	if err != nil {
		return nil, err
	}
	srv, err := vsr.StartServerWith(cfg.addr, reg, auth)
	if err != nil {
		return nil, err
	}
	if cfg.journal > 0 {
		srv.Registry().SetJournalCapacity(cfg.journal)
	}
	s := &server{Server: srv, identity: id, identityGenerated: generated}
	if s.node, err = buildNode(cfg, srv); err != nil {
		srv.Close()
		return nil, err
	}
	p, err := peer.New(cfg.home, srv.Registry(), auth)
	if err != nil {
		srv.Close()
		return nil, err
	}
	p.SetPolicy(peer.Policy{Allow: cfg.allow, Deny: cfg.deny})
	srv.MountPeer(p.ExportHandler())
	srv.MountPeerView(p.ExportView)
	s.peering = p
	if !cfg.binary {
		srv.SetBinaryEnabled(false)
		p.SetBinaryEnabled(false)
	}
	if err := s.mountOps(cfg, auth); err != nil {
		s.Close()
		return nil, err
	}
	for _, url := range cfg.peers {
		if _, err := p.Peer(url); err != nil {
			s.Close()
			return nil, err
		}
	}
	s.replicationWarn = s.bootReplication()
	return s, nil
}
