// Server assembly for vsrd: repository, journal sizing, the optional
// inter-home peering layer and the home's authentication context, kept
// out of main so it stays flag-only and testable.
package main

import (
	"fmt"

	"homeconnect/internal/core/identity"
	"homeconnect/internal/core/peer"
	"homeconnect/internal/core/vsr"
)

// config carries vsrd's flags.
type config struct {
	addr     string
	journal  int
	home     string
	peers    []string
	allow    []string
	deny     []string
	idFile   string
	trust    []string
	aclAllow []string
	aclDeny  []string
}

// server is the assembled repository plus its peering layer.
type server struct {
	*vsr.Server
	peering *peer.Peering
	// identity is the loaded (or freshly generated) home identity, nil
	// when the repository runs open.
	identity *identity.Identity
	// identityGenerated reports that this run created the identity file,
	// so main can print the new public key once.
	identityGenerated bool
}

// Close stops replication links before the repository they write to.
func (s *server) Close() {
	if s.peering != nil {
		s.peering.Close()
	}
	s.Server.Close()
}

// buildAuth assembles the authentication context from flags: the home's
// identity file (created on first use), trust entries and ACL rules.
func buildAuth(cfg config) (*identity.Auth, *identity.Identity, bool, error) {
	auth := identity.NewAuth(cfg.home)
	var id *identity.Identity
	generated := false
	if cfg.idFile != "" {
		var err error
		id, generated, err = identity.LoadOrGenerate(cfg.idFile, cfg.home)
		if err != nil {
			return nil, nil, false, err
		}
		if err := auth.SetIdentity(id); err != nil {
			return nil, nil, false, err
		}
	}
	if err := identity.Configure(auth, cfg.trust, cfg.aclAllow, cfg.aclDeny); err != nil {
		return nil, nil, false, err
	}
	return auth, id, generated, nil
}

// startServer brings up the repository per config. A positive journal
// capacity resizes the change journal before traffic flows; a home name
// mounts the peering endpoint and starts one import link per peer URL;
// an identity file arms authentication on every face.
func startServer(cfg config) (*server, error) {
	authFlagged := cfg.idFile != "" || len(cfg.trust) > 0 || len(cfg.aclAllow) > 0 || len(cfg.aclDeny) > 0
	if cfg.home == "" {
		if len(cfg.peers) > 0 || len(cfg.allow) > 0 || len(cfg.deny) > 0 || authFlagged {
			return nil, fmt.Errorf("vsrd: -peer/-export-*/-identity/-trust/-acl-* require -home")
		}
		srv, err := vsr.StartServer(cfg.addr)
		if err != nil {
			return nil, err
		}
		if cfg.journal > 0 {
			srv.Registry().SetJournalCapacity(cfg.journal)
		}
		return &server{Server: srv}, nil
	}
	auth, id, generated, err := buildAuth(cfg)
	if err != nil {
		return nil, err
	}
	srv, err := vsr.StartServerAuth(cfg.addr, auth)
	if err != nil {
		return nil, err
	}
	if cfg.journal > 0 {
		srv.Registry().SetJournalCapacity(cfg.journal)
	}
	s := &server{Server: srv, identity: id, identityGenerated: generated}
	p, err := peer.New(cfg.home, srv.Registry(), auth)
	if err != nil {
		srv.Close()
		return nil, err
	}
	p.SetPolicy(peer.Policy{Allow: cfg.allow, Deny: cfg.deny})
	srv.MountPeer(p.ExportHandler())
	s.peering = p
	for _, url := range cfg.peers {
		if _, err := p.Peer(url); err != nil {
			s.Close()
			return nil, err
		}
	}
	return s, nil
}
