// Tests for vsrd's server assembly: peering wire-up and flag validation.
package main

import (
	"context"
	"testing"
	"time"

	"homeconnect/internal/core/vsr"
	"homeconnect/internal/service"
)

func TestStartServerRejectsPeerFlagsWithoutHome(t *testing.T) {
	if _, err := startServer(config{addr: "127.0.0.1:0", peers: []string{"http://x/peer"}}); err == nil {
		t.Error("peers without -home accepted")
	}
	if _, err := startServer(config{addr: "127.0.0.1:0", deny: []string{"x10:*"}}); err == nil {
		t.Error("export policy without -home accepted")
	}
}

func TestStartServerPeersTwoRepositories(t *testing.T) {
	a, err := startServer(config{addr: "127.0.0.1:0", home: "home-a", deny: []string{"x10:*"}})
	if err != nil {
		t.Fatal(err)
	}
	defer a.Close()
	b, err := startServer(config{addr: "127.0.0.1:0", home: "home-b", peers: []string{a.PeerURL()}})
	if err != nil {
		t.Fatal(err)
	}
	defer b.Close()

	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	desc := service.Description{
		ID: "jini:laserdisc-1", Name: "laserdisc", Middleware: "jini",
		Interface: service.Interface{Name: "Laserdisc", Operations: []service.Operation{
			{Name: "Play", Output: service.KindVoid},
		}},
	}
	va := vsr.New(a.URL())
	if _, err := va.Register(ctx, desc, "http://gw-a/services/jini:laserdisc-1"); err != nil {
		t.Fatal(err)
	}
	denied := desc
	denied.ID, denied.Name = "x10:lamp-1", "lamp"
	if _, err := va.Register(ctx, denied, "http://gw-a/services/x10:lamp-1"); err != nil {
		t.Fatal(err)
	}

	vb := vsr.New(b.URL())
	for {
		if _, err := vb.Lookup(ctx, "home-a/jini:laserdisc-1"); err == nil {
			break
		}
		select {
		case <-ctx.Done():
			t.Fatal("replication to vsrd peer never happened")
		case <-time.After(10 * time.Millisecond):
		}
	}
	if _, err := vb.Lookup(ctx, "home-a/x10:lamp-1"); err == nil {
		t.Error("export-denied service replicated")
	}
}
