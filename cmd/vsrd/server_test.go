// Tests for vsrd's server assembly: peering wire-up and flag validation.
package main

import (
	"context"
	"errors"
	"path/filepath"
	"testing"
	"time"

	"homeconnect/internal/core/vsr"
	"homeconnect/internal/service"
)

func TestStartServerRejectsPeerFlagsWithoutHome(t *testing.T) {
	if _, err := startServer(config{addr: "127.0.0.1:0", peers: []string{"http://x/peer"}}); err == nil {
		t.Error("peers without -home accepted")
	}
	if _, err := startServer(config{addr: "127.0.0.1:0", deny: []string{"x10:*"}}); err == nil {
		t.Error("export policy without -home accepted")
	}
	if _, err := startServer(config{addr: "127.0.0.1:0", idFile: "x.id"}); err == nil {
		t.Error("-identity without -home accepted")
	}
	if _, err := startServer(config{addr: "127.0.0.1:0", trust: []string{"a=bb"}}); err == nil {
		t.Error("-trust without -home accepted")
	}
}

func TestStartServerArmsIdentity(t *testing.T) {
	idFile := filepath.Join(t.TempDir(), "cottage.id")
	s, err := startServer(config{
		addr: "127.0.0.1:0", home: "cottage", idFile: idFile,
		aclDeny: []string{"*=x10:*"},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	if s.identity == nil || !s.identityGenerated || s.identity.Home() != "cottage" {
		t.Fatalf("identity not generated: %+v generated=%v", s.identity, s.identityGenerated)
	}
	if !s.Auth().Enabled() {
		t.Error("auth not enabled with -identity")
	}
	// Unsigned requests are refused on every face.
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if _, err := vsr.New(s.URL()).Find(ctx, vsr.Query{}); !errors.Is(err, service.ErrUnauthenticated) {
		t.Errorf("unsigned find against armed vsrd: %v, want ErrUnauthenticated", err)
	}
	// A second start reloads the same identity.
	s2, err := startServer(config{addr: "127.0.0.1:0", home: "cottage", idFile: idFile})
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	if s2.identityGenerated || s2.identity.PublicKey() != s.identity.PublicKey() {
		t.Errorf("identity not reloaded: generated=%v", s2.identityGenerated)
	}
	// Malformed trust/ACL specs are refused.
	if _, err := startServer(config{addr: "127.0.0.1:0", home: "x", idFile: filepath.Join(t.TempDir(), "x.id"), trust: []string{"no-separator"}}); err == nil {
		t.Error("malformed trust spec accepted")
	}
	if _, err := startServer(config{addr: "127.0.0.1:0", home: "x", idFile: filepath.Join(t.TempDir(), "x.id"), aclAllow: []string{"="}}); err == nil {
		t.Error("malformed ACL spec accepted")
	}
}

func TestStartServerRejectsDurabilityFlagsWithoutDataDir(t *testing.T) {
	if _, err := startServer(config{addr: "127.0.0.1:0", fsync: "off"}); err == nil {
		t.Error("-fsync without -data-dir accepted")
	}
	if _, err := startServer(config{addr: "127.0.0.1:0", snapshotEvery: 16}); err == nil {
		t.Error("-snapshot-every without -data-dir accepted")
	}
	if _, err := startServer(config{addr: "127.0.0.1:0", dataDir: t.TempDir(), fsync: "sometimes"}); err == nil {
		t.Error("unknown fsync policy accepted")
	}
}

// TestKillRestartServesPreCrashState is the daemon-level acceptance
// scenario: a durable vsrd killed without ceremony and restarted over
// the same -data-dir serves every acknowledged registration, and its
// sequence numbers continue where they left off.
func TestKillRestartServesPreCrashState(t *testing.T) {
	dir := t.TempDir()
	cfg := config{addr: "127.0.0.1:0", dataDir: dir, fsync: "off"}
	s, err := startServer(cfg)
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	c := vsr.New(s.URL())
	for _, id := range []string{"jini:laserdisc-1", "havi:dvcam-1", "upnp:tv-1"} {
		desc := service.Description{
			ID: id, Name: id, Middleware: "jini",
			Interface: service.Interface{Name: "Svc", Operations: []service.Operation{
				{Name: "Ping", Output: service.KindVoid},
			}},
		}
		if _, err := c.Register(ctx, desc, "http://gw/services/"+id); err != nil {
			t.Fatal(err)
		}
	}
	preSeq := s.Registry().Seq()
	if d := s.Registry().Durability(); !d.Enabled || d.Appends == 0 {
		t.Fatalf("durability not armed: %+v", d)
	}

	// Kill: close the WAL fd with no sync, no marker, no shutdown event.
	s.Registry().CrashClose()
	s.Close()

	// Restart over the same directory.
	s2, err := startServer(cfg)
	if err != nil {
		t.Fatalf("restart: %v", err)
	}
	defer s2.Shutdown()
	rec := s2.Registry().Recovery()
	if rec.CleanShutdown {
		t.Fatalf("kill -9 recorded as clean shutdown: %+v", rec)
	}
	if s2.Registry().Seq() < preSeq {
		t.Fatalf("seq regressed across restart: %d < %d", s2.Registry().Seq(), preSeq)
	}
	c2 := vsr.New(s2.URL())
	for _, id := range []string{"jini:laserdisc-1", "havi:dvcam-1", "upnp:tv-1"} {
		if _, err := c2.Lookup(ctx, id); err != nil {
			t.Errorf("pre-crash registration %s lost: %v", id, err)
		}
	}
	// New registrations keep the sequence monotone.
	desc := service.Description{
		ID: "x10:lamp-1", Name: "lamp", Middleware: "x10",
		Interface: service.Interface{Name: "Lamp", Operations: []service.Operation{
			{Name: "On", Output: service.KindVoid},
		}},
	}
	if _, err := c2.Register(ctx, desc, "http://gw/services/x10:lamp-1"); err != nil {
		t.Fatal(err)
	}
	if s2.Registry().Seq() <= preSeq {
		t.Fatalf("post-restart registration did not advance seq past %d", preSeq)
	}

	// A graceful stop marks the WAL; the third boot skips recovery.
	s2.Shutdown()
	s3, err := startServer(cfg)
	if err != nil {
		t.Fatalf("boot after graceful stop: %v", err)
	}
	defer s3.Shutdown()
	rec = s3.Registry().Recovery()
	if !rec.CleanShutdown || rec.TornTail {
		t.Fatalf("graceful stop not detected on next boot: %+v", rec)
	}
	if _, err := vsr.New(s3.URL()).Lookup(ctx, "x10:lamp-1"); err != nil {
		t.Errorf("registration lost across graceful restart: %v", err)
	}
}

func TestStartServerPeersTwoRepositories(t *testing.T) {
	a, err := startServer(config{addr: "127.0.0.1:0", home: "home-a", deny: []string{"x10:*"}})
	if err != nil {
		t.Fatal(err)
	}
	defer a.Close()
	b, err := startServer(config{addr: "127.0.0.1:0", home: "home-b", peers: []string{a.PeerURL()}})
	if err != nil {
		t.Fatal(err)
	}
	defer b.Close()

	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	desc := service.Description{
		ID: "jini:laserdisc-1", Name: "laserdisc", Middleware: "jini",
		Interface: service.Interface{Name: "Laserdisc", Operations: []service.Operation{
			{Name: "Play", Output: service.KindVoid},
		}},
	}
	va := vsr.New(a.URL())
	if _, err := va.Register(ctx, desc, "http://gw-a/services/jini:laserdisc-1"); err != nil {
		t.Fatal(err)
	}
	denied := desc
	denied.ID, denied.Name = "x10:lamp-1", "lamp"
	if _, err := va.Register(ctx, denied, "http://gw-a/services/x10:lamp-1"); err != nil {
		t.Fatal(err)
	}

	vb := vsr.New(b.URL())
	for {
		if _, err := vb.Lookup(ctx, "home-a/jini:laserdisc-1"); err == nil {
			break
		}
		select {
		case <-ctx.Done():
			t.Fatal("replication to vsrd peer never happened")
		case <-time.After(10 * time.Millisecond):
		}
	}
	if _, err := vb.Lookup(ctx, "home-a/x10:lamp-1"); err == nil {
		t.Error("export-denied service replicated")
	}
}
