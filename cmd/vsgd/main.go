// Command vsgd runs one Virtual Service Gateway for a middleware network
// and attaches the requested Protocol Conversion Manager. Networks whose
// hardware is in-process-only (the X10 powerline and HAVi bus
// simulations) are hosted by cmd/homesim instead; vsgd covers the
// middleware reachable over real sockets: Jini lookup services, UPnP
// devices, and mail servers.
//
// The gateway watches the repository for change notifications, so its
// resolve cache is push-invalidated; -cache-ttl sets the fallback TTL
// used while the watch is down, and -no-watch reverts to the paper's
// blind TTL poll model. Calls that resolve to a gateway in the same
// process dispatch in-process (loopback) instead of over SOAP/HTTP;
// -no-loopback forces every call onto the wire.
//
// When the repository federates with other homes (vsrd -home), pass the
// same name via -home so peers' scoped calls ("cottage/jini:lamp-1")
// reach this gateway's exports.
//
// When the home has an identity (vsrd -identity), give every gateway the
// same identity file and trust entries: the gateway then signs its
// repository and cross-home traffic, requires a trusted caller identity
// on its SOAP and event faces, and enforces the home's service ACL
// (-acl-allow/-acl-deny, 'caller-pattern=service-pattern', deny wins) on
// calls arriving from other homes. See docs/security.md and
// docs/operations.md.
//
//	vsgd -vsr http://127.0.0.1:8600/uddi -name jini-net -middleware jini -jini-lookup 127.0.0.1:4160
//	vsgd -vsr ... -name upnp-net -middleware upnp -ssdp 127.0.0.1:1900
//	vsgd -vsr ... -name mail-net -middleware mail -smtp 127.0.0.1:2525 -pop3 127.0.0.1:2110 -mailbox home@house.example
//	vsgd -vsr ... -home cottage -name jini-net -middleware jini -jini-lookup ...
//	vsgd -vsr ... -home cottage -identity cottage.id -trust 'apartment=2b7e...' \
//	     -acl-deny '*=x10:*' -name havi-net -middleware none
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"os"
	"os/signal"
	"strings"
	"time"

	"homeconnect/internal/bridge/jinipcm"
	"homeconnect/internal/bridge/mailpcm"
	"homeconnect/internal/bridge/upnppcm"
	"homeconnect/internal/cli"
	"homeconnect/internal/core/audit"
	"homeconnect/internal/core/identity"
	"homeconnect/internal/core/pcm"
	"homeconnect/internal/core/vsg"
)

// buildAuth assembles the gateway's authentication context from flags,
// or returns nil when no identity file is given (open mode).
func buildAuth(home, idFile string, trust, aclAllow, aclDeny []string) (*identity.Auth, error) {
	if idFile == "" {
		if len(trust) > 0 || len(aclAllow) > 0 || len(aclDeny) > 0 {
			return nil, fmt.Errorf("vsgd: -trust/-acl-* require -identity")
		}
		return nil, nil
	}
	if home == "" {
		return nil, fmt.Errorf("vsgd: -identity requires -home")
	}
	id, err := identity.Load(idFile)
	if err != nil {
		return nil, err
	}
	auth := identity.NewAuth(home)
	if err := auth.SetIdentity(id); err != nil {
		return nil, err
	}
	if err := identity.Configure(auth, trust, aclAllow, aclDeny); err != nil {
		return nil, err
	}
	return auth, nil
}

func main() {
	vsrURL := flag.String("vsr", "http://127.0.0.1:8600/uddi", "Virtual Service Repository URL")
	name := flag.String("name", "", "network name (required)")
	addr := flag.String("addr", "127.0.0.1:0", "gateway listen address")
	cacheTTL := flag.Duration("cache-ttl", 2*time.Second, "resolve-cache fallback TTL while the VSR watch is down (0 disables caching)")
	noWatch := flag.Bool("no-watch", false, "disable the VSR change watch (blind TTL caching, the paper's poll model)")
	noLoopback := flag.Bool("no-loopback", false, "disable in-process loopback dispatch; every call goes over SOAP/HTTP")
	binary := flag.Bool("binary", true, "negotiate the session-keyed binary fast path with framework peers (effective with -identity; SOAP/HTTP stays available)")
	home := flag.String("home", "", "home name; must match the repository's vsrd -home when federating")
	idFile := flag.String("identity", "", "home identity file (same file as vsrd's; requires -home)")
	auditOn := flag.Bool("audit", false, "enable the in-memory audit log (see -audit-log to persist)")
	auditLog := flag.String("audit-log", "", "persist the audit log to this file (implies -audit)")
	auditBatch := flag.Int("audit-batch", 0, "audit Merkle batch size (0 = default 64)")
	var trust, aclAllow, aclDeny cli.Multi
	flag.Var(&trust, "trust", "trusted home, 'name=hex-public-key' (repeatable; requires -identity)")
	flag.Var(&aclAllow, "acl-allow", "service-ACL allow rule, 'caller-pattern=service-pattern' (repeatable)")
	flag.Var(&aclDeny, "acl-deny", "service-ACL deny rule, 'caller-pattern=service-pattern' (repeatable)")
	middleware := flag.String("middleware", "", "PCM to attach: jini, upnp, mail, none")
	jiniLookup := flag.String("jini-lookup", "", "jini: lookup service address")
	ssdp := flag.String("ssdp", "", "upnp: comma-separated SSDP addresses to search")
	smtp := flag.String("smtp", "", "mail: SMTP server address")
	pop3 := flag.String("pop3", "", "mail: POP3 server address")
	mailbox := flag.String("mailbox", "", "mail: command mailbox address")
	flag.Parse()
	if *name == "" {
		log.Fatal("vsgd: -name is required")
	}

	auth, err := buildAuth(*home, *idFile, trust, aclAllow, aclDeny)
	if err != nil {
		log.Fatal(err)
	}

	gw := vsg.New(*name, *vsrURL)
	// In a federated deployment (vsrd -home) peers address this gateway
	// by the home's scoped IDs; the gateway must know its home to strip
	// that scope on inbound calls and to keep cross-home calls off the
	// loopback fast path.
	gw.SetHome(*home)
	if auth != nil {
		gw.SetAuth(auth)
	}
	gw.SetCacheTTL(*cacheTTL)
	gw.SetWatchEnabled(!*noWatch)
	gw.SetLoopbackEnabled(!*noLoopback)
	gw.SetBinaryEnabled(*binary)
	if *auditOn || *auditLog != "" {
		l, err := audit.New(audit.Options{Path: *auditLog, BatchSize: *auditBatch})
		if err != nil {
			log.Fatal(err)
		}
		defer l.Close()
		gw.SetAudit(l)
		if auth != nil {
			auth.SetRecorder(audit.WithFace(l, "auth", *home))
		}
	}
	if err := gw.Start(*addr); err != nil {
		log.Fatal(err)
	}
	defer gw.Close()
	mode := "watch-invalidated resolve cache"
	if *noWatch {
		mode = fmt.Sprintf("TTL resolve cache (%v)", *cacheTTL)
	}
	fmt.Printf("vsgd: gateway %q at %s (events at %s, %s)\n", *name, gw.BaseURL(), gw.EventsURL(), mode)
	if auth != nil {
		fmt.Printf("vsgd: authentication enforced as home %q; trusted homes: %v\n", *home, auth.TrustedHomes())
	}
	if *auditOn || *auditLog != "" {
		where := "in memory"
		if *auditLog != "" {
			where = *auditLog
		}
		fmt.Printf("vsgd: audit plane on (%s); health at %s/health, audit at %s/audit\n", where, gw.BaseURL(), gw.BaseURL())
	}

	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	var p pcm.PCM
	switch *middleware {
	case "", "none":
	case "jini":
		if *jiniLookup == "" {
			log.Fatal("vsgd: -jini-lookup is required for the jini PCM")
		}
		p = jinipcm.New(*jiniLookup)
	case "upnp":
		if *ssdp == "" {
			log.Fatal("vsgd: -ssdp is required for the upnp PCM")
		}
		p = upnppcm.New(upnppcm.Config{SSDPAddrs: strings.Split(*ssdp, ",")})
	case "mail":
		if *smtp == "" || *pop3 == "" || *mailbox == "" {
			log.Fatal("vsgd: -smtp, -pop3 and -mailbox are required for the mail PCM")
		}
		p = mailpcm.New(mailpcm.Config{SMTPAddr: *smtp, POP3Addr: *pop3, CommandAddr: *mailbox})
	default:
		log.Fatalf("vsgd: unknown middleware %q", *middleware)
	}
	if p != nil {
		if err := p.Start(ctx, gw); err != nil {
			log.Fatal(err)
		}
		defer func() { _ = p.Stop() }()
		fmt.Printf("vsgd: %s PCM attached\n", p.Middleware())
	}

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt)
	<-sig
	fmt.Println("vsgd: shutting down")
}
