// Command nbsim drives the neighborhood-scale deterministic simulation
// and its hypothesis harness. Every run is a pure function of
// (scenario, seed): same inputs, byte-identical findings — which is what
// lets CI diff two runs to prove determinism and diff a fresh knee
// against a committed baseline to catch capacity regressions.
//
//	nbsim list
//	nbsim run -scenario churn -homes 256 -seeds 3 [-out FILE] [-csv FILE]
//	nbsim hypothesis -id propagation-knee -seeds 1,2,3 [-scales 4,8,16] [-out FILE] [-csv FILE]
//	nbsim compare A.json B.json            # determinism: equal modulo generated_at
//	nbsim compare -knee-floor 32 A.json    # capacity: knee must not move below the floor
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"sort"
	"strconv"
	"strings"
	"time"

	"homeconnect/internal/neighborhood"
	"homeconnect/internal/neighborhood/hypothesis"
)

func main() {
	if len(os.Args) < 2 {
		usage()
		os.Exit(2)
	}
	var err error
	switch os.Args[1] {
	case "list":
		err = list()
	case "run":
		err = run(os.Args[2:])
	case "hypothesis":
		err = runHypothesis(os.Args[2:])
	case "compare":
		err = compare(os.Args[2:])
	default:
		usage()
		os.Exit(2)
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "nbsim:", err)
		os.Exit(1)
	}
}

func usage() {
	fmt.Fprintln(os.Stderr, `usage:
  nbsim list
  nbsim run -scenario NAME -homes N -seeds K [-seed-base B] [-out FILE] [-csv FILE]
  nbsim hypothesis -id ID [-seeds 1,2,3] [-scales 4,8,16] [-out FILE] [-csv FILE]
  nbsim compare [-knee-floor N] A.json [B.json]`)
}

func list() error {
	names := make([]string, 0)
	for name := range neighborhood.Presets() {
		names = append(names, name)
	}
	sort.Strings(names)
	fmt.Println("scenarios:")
	for _, n := range names {
		s := neighborhood.Presets()[n]
		fmt.Printf("  %-12s %s topology, %d homes default, %v duration\n", n, s.Topology, s.Homes, s.Duration)
	}
	fmt.Println("hypotheses:")
	for _, h := range hypothesis.Registry() {
		fmt.Printf("  %-18s scales %v  %s\n", h.ID, h.DefaultScales, h.Title)
	}
	return nil
}

// seedList expands -seeds: either a count ("3", meaning base..base+2) or
// an explicit comma list ("7,11,13").
func seedList(spec string, base int64) ([]int64, error) {
	if strings.Contains(spec, ",") {
		parts := strings.Split(spec, ",")
		seeds := make([]int64, 0, len(parts))
		for _, p := range parts {
			v, err := strconv.ParseInt(strings.TrimSpace(p), 10, 64)
			if err != nil {
				return nil, fmt.Errorf("bad seed %q: %w", p, err)
			}
			seeds = append(seeds, v)
		}
		return seeds, nil
	}
	n, err := strconv.Atoi(spec)
	if err != nil || n < 1 {
		return nil, fmt.Errorf("bad seed count %q", spec)
	}
	seeds := make([]int64, n)
	for i := range seeds {
		seeds[i] = base + int64(i)
	}
	return seeds, nil
}

func scaleList(spec string) ([]int, error) {
	if spec == "" {
		return nil, nil
	}
	parts := strings.Split(spec, ",")
	scales := make([]int, 0, len(parts))
	for _, p := range parts {
		v, err := strconv.Atoi(strings.TrimSpace(p))
		if err != nil {
			return nil, fmt.Errorf("bad scale %q: %w", p, err)
		}
		scales = append(scales, v)
	}
	return scales, nil
}

// runDoc is the `nbsim run` output: the scenario, the seeds, and one
// deterministic Result per seed. GeneratedAt is the only wall-clock
// field; compare ignores it.
type runDoc struct {
	Schema      string                `json:"schema"`
	Scenario    neighborhood.Scenario `json:"scenario"`
	Seeds       []int64               `json:"seeds"`
	Results     []neighborhood.Result `json:"results"`
	GeneratedAt string                `json:"generated_at,omitempty"`
}

func run(args []string) error {
	fs := flag.NewFlagSet("run", flag.ContinueOnError)
	scenario := fs.String("scenario", "churn", "preset scenario name (see nbsim list)")
	homes := fs.Int("homes", 0, "override the preset's home count")
	seeds := fs.String("seeds", "3", "seed count, or comma-separated explicit seeds")
	seedBase := fs.Int64("seed-base", 1, "first seed when -seeds is a count")
	out := fs.String("out", "", "write findings JSON here (default stdout)")
	csvOut := fs.String("csv", "", "also write a per-seed CSV table here")
	if err := fs.Parse(args); err != nil {
		return err
	}
	preset, ok := neighborhood.Presets()[*scenario]
	if !ok {
		return fmt.Errorf("unknown scenario %q (try: nbsim list)", *scenario)
	}
	if *homes > 0 {
		switch *scenario {
		case "churn":
			preset = neighborhood.Churn(*homes)
		case "propagation":
			preset = neighborhood.Propagation(*homes)
		case "secure":
			preset = neighborhood.Secure(*homes)
		case "crash-recovery":
			preset = neighborhood.CrashRecovery(*homes)
		case "replica-failover":
			preset = neighborhood.ReplicaFailover(*homes)
		}
	}
	seedv, err := seedList(*seeds, *seedBase)
	if err != nil {
		return err
	}
	results, err := neighborhood.RunSeeds(preset, seedv)
	if err != nil {
		return err
	}
	doc := runDoc{Schema: hypothesis.SchemaVersion, Scenario: preset, Seeds: seedv, Results: results}
	if *out != "" {
		doc.GeneratedAt = time.Now().UTC().Format(time.RFC3339)
	}
	if err := writeJSON(*out, doc); err != nil {
		return err
	}
	if *csvOut != "" {
		if err := writeRunCSV(*csvOut, doc); err != nil {
			return err
		}
	}
	return nil
}

func runHypothesis(args []string) error {
	fs := flag.NewFlagSet("hypothesis", flag.ContinueOnError)
	id := fs.String("id", "", "hypothesis ID (see nbsim list)")
	seeds := fs.String("seeds", "3", "seed count, or comma-separated explicit seeds")
	seedBase := fs.Int64("seed-base", 1, "first seed when -seeds is a count")
	scales := fs.String("scales", "", "comma-separated home counts to sweep (default per hypothesis)")
	out := fs.String("out", "", "write findings JSON here (default stdout)")
	csvOut := fs.String("csv", "", "also write the scale table as CSV here")
	if err := fs.Parse(args); err != nil {
		return err
	}
	spec, ok := hypothesis.Lookup(*id)
	if !ok {
		return fmt.Errorf("unknown hypothesis %q (try: nbsim list)", *id)
	}
	seedv, err := seedList(*seeds, *seedBase)
	if err != nil {
		return err
	}
	scalev, err := scaleList(*scales)
	if err != nil {
		return err
	}
	if len(scalev) == 0 {
		scalev = spec.DefaultScales
	}
	f, err := spec.Run(seedv, scalev)
	if err != nil {
		return err
	}
	if *out != "" {
		f.Stamp(time.Now())
	}
	if err := writeJSON(*out, f); err != nil {
		return err
	}
	if *csvOut != "" {
		cf, err := os.Create(*csvOut)
		if err != nil {
			return err
		}
		defer cf.Close()
		if err := hypothesis.WriteCSV(cf, f); err != nil {
			return err
		}
	}
	fmt.Fprintf(os.Stderr, "nbsim: %s: %s — %s\n", f.Hypothesis, f.Verdict, f.Detail)
	return nil
}

func writeJSON(path string, v any) error {
	b, err := json.MarshalIndent(v, "", "  ")
	if err != nil {
		return err
	}
	b = append(b, '\n')
	if path == "" {
		_, err = os.Stdout.Write(b)
		return err
	}
	return os.WriteFile(path, b, 0o644)
}

func writeRunCSV(path string, doc runDoc) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close()
	fmt.Fprintln(f, "scenario,seed,homes,prop_p50_ms,prop_p99_ms,call_p50_ms,call_p99_ms,pulls,pull_errors,deltas,registers,expires,shard_cv_max")
	for _, r := range doc.Results {
		fmt.Fprintf(f, "%s,%d,%d,%g,%g,%g,%g,%d,%d,%d,%d,%d,%g\n",
			r.Scenario, r.Seed, r.Homes,
			r.Propagation.P50, r.Propagation.P99,
			r.Call.P50, r.Call.P99,
			r.Pulls, r.PullErrors, r.DeltasApplied, r.Registers, r.Expires,
			r.ShardCVMax)
	}
	return nil
}

// compare checks two findings documents for byte equality modulo the
// generated_at stamp (determinism), and optionally enforces a knee
// floor: the first document's knee (if any) must not sit below
// -knee-floor homes (capacity regression).
func compare(args []string) error {
	fs := flag.NewFlagSet("compare", flag.ContinueOnError)
	kneeFloor := fs.Int("knee-floor", 0, "fail if the knee lands below this many homes")
	if err := fs.Parse(args); err != nil {
		return err
	}
	paths := fs.Args()
	if len(paths) == 0 || (len(paths) < 2 && *kneeFloor == 0) {
		return fmt.Errorf("compare needs two files, or one file with -knee-floor")
	}

	if *kneeFloor > 0 {
		var f hypothesis.Finding
		if err := readJSON(paths[0], &f); err != nil {
			return err
		}
		if f.Knee != nil && f.Knee.Homes < *kneeFloor {
			return fmt.Errorf("capacity regression: knee at %d homes, floor is %d", f.Knee.Homes, *kneeFloor)
		}
		fmt.Printf("knee ok: %s\n", kneeString(f.Knee, *kneeFloor))
	}

	if len(paths) >= 2 {
		a, err := canonical(paths[0])
		if err != nil {
			return err
		}
		b, err := canonical(paths[1])
		if err != nil {
			return err
		}
		if a != b {
			return fmt.Errorf("determinism violation: %s and %s differ beyond generated_at", paths[0], paths[1])
		}
		fmt.Printf("determinism ok: %s == %s (modulo generated_at)\n", paths[0], paths[1])
	}
	return nil
}

func kneeString(k *hypothesis.Knee, floor int) string {
	if k == nil {
		return fmt.Sprintf("no knee at or above the %d-home floor", floor)
	}
	return fmt.Sprintf("knee at %d homes (floor %d)", k.Homes, floor)
}

func readJSON(path string, v any) error {
	b, err := os.ReadFile(path)
	if err != nil {
		return err
	}
	if err := json.Unmarshal(b, v); err != nil {
		return fmt.Errorf("%s: %w", path, err)
	}
	return nil
}

// canonical loads a findings document, clears generated_at, and
// re-marshals with sorted keys so the comparison sees content only.
func canonical(path string) (string, error) {
	var doc map[string]any
	if err := readJSON(path, &doc); err != nil {
		return "", err
	}
	delete(doc, "generated_at")
	b, err := json.Marshal(doc) // map keys marshal sorted
	if err != nil {
		return "", err
	}
	return string(b), nil
}
