package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func TestSeedList(t *testing.T) {
	cases := []struct {
		spec    string
		base    int64
		want    []int64
		wantErr bool
	}{
		{spec: "3", base: 1, want: []int64{1, 2, 3}},
		{spec: "2", base: 10, want: []int64{10, 11}},
		{spec: "7,11,13", base: 1, want: []int64{7, 11, 13}},
		{spec: "0", base: 1, wantErr: true},
		{spec: "x", base: 1, wantErr: true},
		{spec: "1,b", base: 1, wantErr: true},
	}
	for _, c := range cases {
		got, err := seedList(c.spec, c.base)
		if c.wantErr != (err != nil) {
			t.Fatalf("seedList(%q): err = %v, wantErr %v", c.spec, err, c.wantErr)
		}
		if err != nil {
			continue
		}
		if len(got) != len(c.want) {
			t.Fatalf("seedList(%q) = %v, want %v", c.spec, got, c.want)
		}
		for i := range got {
			if got[i] != c.want[i] {
				t.Fatalf("seedList(%q) = %v, want %v", c.spec, got, c.want)
			}
		}
	}
}

// TestRunDeterminismEndToEnd drives the exact workflow the CI smoke job
// uses: run the same (scenario, seeds) twice into files, then compare —
// the two documents must match modulo generated_at even though the
// stamps differ.
func TestRunDeterminismEndToEnd(t *testing.T) {
	dir := t.TempDir()
	a := filepath.Join(dir, "a.json")
	b := filepath.Join(dir, "b.json")
	for _, out := range []string{a, b} {
		if err := run([]string{"-scenario", "churn", "-homes", "8", "-seeds", "2", "-out", out}); err != nil {
			t.Fatalf("run: %v", err)
		}
	}
	ab, _ := os.ReadFile(a)
	bb, _ := os.ReadFile(b)
	if len(ab) == 0 || len(bb) == 0 {
		t.Fatal("run wrote empty findings")
	}
	if err := compare([]string{a, b}); err != nil {
		t.Fatalf("determinism compare failed: %v", err)
	}
}

func TestCompareDetectsDivergence(t *testing.T) {
	dir := t.TempDir()
	a := filepath.Join(dir, "a.json")
	b := filepath.Join(dir, "b.json")
	if err := os.WriteFile(a, []byte(`{"schema":"s","verdict":"supported","generated_at":"2026-01-01T00:00:00Z"}`), 0o644); err != nil {
		t.Fatal(err)
	}
	// Same content, different stamp: equal.
	if err := os.WriteFile(b, []byte(`{"schema":"s","verdict":"supported","generated_at":"2026-02-02T00:00:00Z"}`), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := compare([]string{a, b}); err != nil {
		t.Fatalf("stamp-only difference flagged: %v", err)
	}
	// Different content: must fail.
	if err := os.WriteFile(b, []byte(`{"schema":"s","verdict":"refuted"}`), 0o644); err != nil {
		t.Fatal(err)
	}
	err := compare([]string{a, b})
	if err == nil || !strings.Contains(err.Error(), "determinism violation") {
		t.Fatalf("divergent findings not flagged: %v", err)
	}
}

func TestCompareKneeFloor(t *testing.T) {
	dir := t.TempDir()
	f := filepath.Join(dir, "f.json")
	write := func(doc string) {
		if err := os.WriteFile(f, []byte(doc), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	write(`{"schema":"s","knee":{"homes":32,"p99_ms":5000}}`)
	if err := compare([]string{"-knee-floor", "32", f}); err != nil {
		t.Fatalf("knee at the floor rejected: %v", err)
	}
	write(`{"schema":"s","knee":{"homes":16,"p99_ms":5000}}`)
	err := compare([]string{"-knee-floor", "32", f})
	if err == nil || !strings.Contains(err.Error(), "capacity regression") {
		t.Fatalf("knee below floor not flagged: %v", err)
	}
	// No knee at all means capacity is at least the floor.
	write(`{"schema":"s"}`)
	if err := compare([]string{"-knee-floor", "32", f}); err != nil {
		t.Fatalf("absent knee rejected: %v", err)
	}
}

func TestRunRejectsUnknownScenarioAndHypothesis(t *testing.T) {
	if err := run([]string{"-scenario", "nope", "-seeds", "1"}); err == nil {
		t.Fatal("unknown scenario accepted")
	}
	if err := runHypothesis([]string{"-id", "nope"}); err == nil {
		t.Fatal("unknown hypothesis accepted")
	}
}
