// Tests for the perf-regression gate: bench-output parsing, minima
// across -count repetitions, thresholds, and the guarded-set pattern.
package main

import (
	"strings"
	"testing"
)

const sampleOutput = `goos: linux
goarch: amd64
pkg: homeconnect/internal/soap
cpu: Intel(R) Xeon(R) Processor @ 2.70GHz
BenchmarkSOAPEncode-8   	       1	      3120 ns/op	       472.0 wire-B/op	    1832 B/op	       4 allocs/op
BenchmarkSOAPEncode-8   	       1	       700 ns/op	       472.0 wire-B/op	     480 B/op	       1 allocs/op
BenchmarkSOAPDecode-8   	       1	      4200 ns/op	    1512 B/op	      15 allocs/op
BenchmarkSceneFanOut/N=16-8 	       1	    150000 ns/op	   42783 B/op	     244 allocs/op
BenchmarkNoMem-8        	       1	       100 ns/op
PASS
`

func TestParseBenchTakesMinimaAcrossCounts(t *testing.T) {
	got, cpu, err := parseBench(strings.NewReader(sampleOutput))
	if err != nil {
		t.Fatal(err)
	}
	if cpu != "Intel(R) Xeon(R) Processor @ 2.70GHz" {
		t.Errorf("cpu = %q", cpu)
	}
	enc := got["BenchmarkSOAPEncode"]
	if enc.AllocsOp != 1 || enc.BytesOp != 480 || enc.NsOp != 700 {
		t.Errorf("encode minima = %+v, want warm-run numbers", enc)
	}
	if got["BenchmarkSceneFanOut/N=16"].AllocsOp != 244 {
		t.Errorf("sub-benchmark not parsed: %+v", got["BenchmarkSceneFanOut/N=16"])
	}
	if got["BenchmarkNoMem"].AllocsOp != -1 {
		t.Errorf("benchmark without -benchmem should have no alloc count: %+v", got["BenchmarkNoMem"])
	}
}

// TestParseBenchMalformedInput covers the ways a CI pipe goes wrong:
// truncated result lines, a missing allocs column, and garbled values.
// None of these may parse into numbers that would slip under the gate.
func TestParseBenchMalformedInput(t *testing.T) {
	t.Run("empty input fails every guarded benchmark", func(t *testing.T) {
		got, _, err := parseBench(strings.NewReader(""))
		if err != nil {
			t.Fatal(err)
		}
		if len(got) != 0 {
			t.Fatalf("parsed %d benchmarks from empty input", len(got))
		}
		baseline := map[string]benchNumbers{"BenchmarkSOAPEncode": {AllocsOp: 1}}
		for _, r := range gate(baseline, got) {
			if !r.failed || !r.missing {
				t.Errorf("empty run passed the gate for %s: %+v", r.name, r)
			}
		}
	})
	t.Run("count=1 single line parses as its own minimum", func(t *testing.T) {
		got, _, err := parseBench(strings.NewReader(
			"BenchmarkSOAPEncode-8 \t 1 \t 700 ns/op \t 480 B/op \t 1 allocs/op\n"))
		if err != nil {
			t.Fatal(err)
		}
		n := got["BenchmarkSOAPEncode"]
		if n.NsOp != 700 || n.BytesOp != 480 || n.AllocsOp != 1 {
			t.Errorf("single-count line = %+v", n)
		}
	})
	t.Run("truncated line drops the benchmark, not the error", func(t *testing.T) {
		// Cut after the iteration count: no value/unit pairs survive, so
		// the line must be ignored and the benchmark stays missing.
		got, _, err := parseBench(strings.NewReader("BenchmarkSOAPDecode-8 \t 1 \t 4200\nPASS\n"))
		if err != nil {
			t.Fatal(err)
		}
		if _, ok := got["BenchmarkSOAPDecode"]; ok {
			t.Errorf("truncated line parsed as a result: %+v", got["BenchmarkSOAPDecode"])
		}
		baseline := map[string]benchNumbers{"BenchmarkSOAPDecode": {AllocsOp: 15}}
		if rs := gate(baseline, got); !rs[0].failed {
			t.Error("truncated run passed the gate")
		}
	})
	t.Run("missing allocs column reads as not-reported and fails the gate", func(t *testing.T) {
		got, _, err := parseBench(strings.NewReader(
			"BenchmarkSOAPDecode-8 \t 1 \t 4200 ns/op \t 1512 B/op\n"))
		if err != nil {
			t.Fatal(err)
		}
		if n := got["BenchmarkSOAPDecode"]; n.AllocsOp != -1 {
			t.Fatalf("missing allocs column parsed as %d allocs/op", n.AllocsOp)
		}
		baseline := map[string]benchNumbers{"BenchmarkSOAPDecode": {AllocsOp: 15}}
		if rs := gate(baseline, got); !rs[0].failed {
			t.Error("run without alloc counts passed the gate")
		}
	})
	t.Run("garbled allocs value is a parse error, not zero allocs", func(t *testing.T) {
		// "1x" would ParseInt to 0 if errors were swallowed — 0 allocs/op
		// sails under every limit, so this must hard-fail instead.
		_, _, err := parseBench(strings.NewReader(
			"BenchmarkSOAPEncode-8 \t 1 \t 700 ns/op \t 480 B/op \t 1x allocs/op\n"))
		if err == nil || !strings.Contains(err.Error(), "malformed allocs/op") {
			t.Fatalf("garbled allocs value not rejected: %v", err)
		}
	})
	t.Run("garbled ns value is a parse error", func(t *testing.T) {
		_, _, err := parseBench(strings.NewReader(
			"BenchmarkSOAPEncode-8 \t 1 \t 7e0e0 ns/op\n"))
		if err == nil || !strings.Contains(err.Error(), "malformed ns/op") {
			t.Fatalf("garbled ns value not rejected: %v", err)
		}
	})
	t.Run("garbled run does not downgrade a good run's minima", func(t *testing.T) {
		// count=2 where the second repetition's line is corrupted: the
		// parse must fail rather than fold a fake 0 into the minimum.
		_, _, err := parseBench(strings.NewReader(
			"BenchmarkSOAPEncode-8 \t 1 \t 700 ns/op \t 480 B/op \t 1 allocs/op\n" +
				"BenchmarkSOAPEncode-8 \t 1 \t 650 ns/op \t 480 B/op \t , allocs/op\n"))
		if err == nil {
			t.Fatal("corrupted second repetition not rejected")
		}
	})
	t.Run("non-result Benchmark lines are skipped", func(t *testing.T) {
		got, _, err := parseBench(strings.NewReader(
			"BenchmarkSOAPEncode \t --- FAIL: BenchmarkSOAPEncode\nPASS\n"))
		if err != nil {
			t.Fatal(err)
		}
		if len(got) != 0 {
			t.Errorf("FAIL line parsed as a result: %+v", got)
		}
	})
}

func TestAllocLimit(t *testing.T) {
	cases := []struct{ base, want int64 }{
		{0, 2},   // zero-alloc paths may not grow past pool-warm-up noise
		{1, 3},   // pooled encode: de-pooling to 8 allocs must trip
		{15, 20}, // pooled decode: regressing to 72 must trip
		{124, 157},
	}
	for _, c := range cases {
		if got := allocLimit(c.base); got != c.want {
			t.Errorf("allocLimit(%d) = %d, want %d", c.base, got, c.want)
		}
	}
}

func TestGate(t *testing.T) {
	baseline := map[string]benchNumbers{
		"BenchmarkSOAPEncode":         {AllocsOp: 1},
		"BenchmarkSOAPDecode":         {AllocsOp: 15},
		"BenchmarkSceneFanOut/N=16":   {AllocsOp: 244},
		"BenchmarkGone":               {AllocsOp: 3},
		"BenchmarkLostItsReportAlloc": {AllocsOp: 3},
	}
	got := map[string]benchNumbers{
		"BenchmarkSOAPEncode":         {AllocsOp: 8},   // regressed: de-pooled
		"BenchmarkSOAPDecode":         {AllocsOp: 17},  // within tolerance
		"BenchmarkSceneFanOut/N=16":   {AllocsOp: 244}, // unchanged
		"BenchmarkLostItsReportAlloc": {AllocsOp: -1},  // stopped reporting
	}
	want := map[string]bool{
		"BenchmarkSOAPEncode":         true,
		"BenchmarkSOAPDecode":         false,
		"BenchmarkSceneFanOut/N=16":   false,
		"BenchmarkGone":               true,
		"BenchmarkLostItsReportAlloc": true,
	}
	for _, r := range gate(baseline, got) {
		if r.failed != want[r.name] {
			t.Errorf("gate(%s): failed = %v, want %v", r.name, r.failed, want[r.name])
		}
	}
}

// TestGateNsCeiling covers the absolute-latency gate: ceiling-only
// entries (allocs_op -1) ignore allocation counts entirely, combined
// entries enforce both bounds, and a missing benchmark still fails.
func TestGateNsCeiling(t *testing.T) {
	baseline := map[string]benchNumbers{
		"BenchmarkBinaryCrossHomeCall": {AllocsOp: -1, NsCeiling: 10000},
		"BenchmarkBinaryPeerPropagate": {AllocsOp: -1, NsCeiling: 100000},
		"BenchmarkBoth":                {AllocsOp: 1, NsCeiling: 5000},
		"BenchmarkCeilingGone":         {AllocsOp: -1, NsCeiling: 1000},
	}
	got := map[string]benchNumbers{
		// Under ceiling; alloc count irrelevant (and unreported).
		"BenchmarkBinaryCrossHomeCall": {NsOp: 6200, AllocsOp: -1},
		// Over ceiling: must fail even with fine allocs.
		"BenchmarkBinaryPeerPropagate": {NsOp: 140000, AllocsOp: 10},
		// Allocs fine, latency blown.
		"BenchmarkBoth": {NsOp: 9000, AllocsOp: 1},
	}
	want := map[string]struct{ failed, nsFailed bool }{
		"BenchmarkBinaryCrossHomeCall": {false, false},
		"BenchmarkBinaryPeerPropagate": {true, true},
		"BenchmarkBoth":                {true, true},
		"BenchmarkCeilingGone":         {true, false},
	}
	for _, r := range gate(baseline, got) {
		w := want[r.name]
		if r.failed != w.failed || r.nsFailed != w.nsFailed {
			t.Errorf("gate(%s): failed=%v nsFailed=%v, want %+v", r.name, r.failed, r.nsFailed, w)
		}
	}
}

func TestPattern(t *testing.T) {
	baseline := map[string]benchNumbers{
		"BenchmarkSOAPEncode":              {},
		"BenchmarkSceneFanOut/N=16":        {},
		"BenchmarkHubPublishParallel/subs": {},
	}
	got := pattern(baseline)
	want := "^(BenchmarkHubPublishParallel|BenchmarkSOAPEncode|BenchmarkSceneFanOut)$"
	if got != want {
		t.Errorf("pattern = %q, want %q", got, want)
	}
}
