// Tests for the perf-regression gate: bench-output parsing, minima
// across -count repetitions, thresholds, and the guarded-set pattern.
package main

import (
	"strings"
	"testing"
)

const sampleOutput = `goos: linux
goarch: amd64
pkg: homeconnect/internal/soap
cpu: Intel(R) Xeon(R) Processor @ 2.70GHz
BenchmarkSOAPEncode-8   	       1	      3120 ns/op	       472.0 wire-B/op	    1832 B/op	       4 allocs/op
BenchmarkSOAPEncode-8   	       1	       700 ns/op	       472.0 wire-B/op	     480 B/op	       1 allocs/op
BenchmarkSOAPDecode-8   	       1	      4200 ns/op	    1512 B/op	      15 allocs/op
BenchmarkSceneFanOut/N=16-8 	       1	    150000 ns/op	   42783 B/op	     244 allocs/op
BenchmarkNoMem-8        	       1	       100 ns/op
PASS
`

func TestParseBenchTakesMinimaAcrossCounts(t *testing.T) {
	got, cpu, err := parseBench(strings.NewReader(sampleOutput))
	if err != nil {
		t.Fatal(err)
	}
	if cpu != "Intel(R) Xeon(R) Processor @ 2.70GHz" {
		t.Errorf("cpu = %q", cpu)
	}
	enc := got["BenchmarkSOAPEncode"]
	if enc.AllocsOp != 1 || enc.BytesOp != 480 || enc.NsOp != 700 {
		t.Errorf("encode minima = %+v, want warm-run numbers", enc)
	}
	if got["BenchmarkSceneFanOut/N=16"].AllocsOp != 244 {
		t.Errorf("sub-benchmark not parsed: %+v", got["BenchmarkSceneFanOut/N=16"])
	}
	if got["BenchmarkNoMem"].AllocsOp != -1 {
		t.Errorf("benchmark without -benchmem should have no alloc count: %+v", got["BenchmarkNoMem"])
	}
}

func TestAllocLimit(t *testing.T) {
	cases := []struct{ base, want int64 }{
		{0, 2},   // zero-alloc paths may not grow past pool-warm-up noise
		{1, 3},   // pooled encode: de-pooling to 8 allocs must trip
		{15, 20}, // pooled decode: regressing to 72 must trip
		{124, 157},
	}
	for _, c := range cases {
		if got := allocLimit(c.base); got != c.want {
			t.Errorf("allocLimit(%d) = %d, want %d", c.base, got, c.want)
		}
	}
}

func TestGate(t *testing.T) {
	baseline := map[string]benchNumbers{
		"BenchmarkSOAPEncode":         {AllocsOp: 1},
		"BenchmarkSOAPDecode":         {AllocsOp: 15},
		"BenchmarkSceneFanOut/N=16":   {AllocsOp: 244},
		"BenchmarkGone":               {AllocsOp: 3},
		"BenchmarkLostItsReportAlloc": {AllocsOp: 3},
	}
	got := map[string]benchNumbers{
		"BenchmarkSOAPEncode":         {AllocsOp: 8},   // regressed: de-pooled
		"BenchmarkSOAPDecode":         {AllocsOp: 17},  // within tolerance
		"BenchmarkSceneFanOut/N=16":   {AllocsOp: 244}, // unchanged
		"BenchmarkLostItsReportAlloc": {AllocsOp: -1},  // stopped reporting
	}
	want := map[string]bool{
		"BenchmarkSOAPEncode":         true,
		"BenchmarkSOAPDecode":         false,
		"BenchmarkSceneFanOut/N=16":   false,
		"BenchmarkGone":               true,
		"BenchmarkLostItsReportAlloc": true,
	}
	for _, r := range gate(baseline, got) {
		if r.failed != want[r.name] {
			t.Errorf("gate(%s): failed = %v, want %v", r.name, r.failed, want[r.name])
		}
	}
}

func TestPattern(t *testing.T) {
	baseline := map[string]benchNumbers{
		"BenchmarkSOAPEncode":              {},
		"BenchmarkSceneFanOut/N=16":        {},
		"BenchmarkHubPublishParallel/subs": {},
	}
	got := pattern(baseline)
	want := "^(BenchmarkHubPublishParallel|BenchmarkSOAPEncode|BenchmarkSceneFanOut)$"
	if got != want {
		t.Errorf("pattern = %q, want %q", got, want)
	}
}
