// Command benchgate is the CI perf-regression gate: it parses `go test
// -bench` output and fails when any benchmark guarded by a baseline
// snapshot (BENCH_prN.json at the repo root) regresses its allocs/op.
// Allocation counts — unlike nanoseconds — are deterministic enough to
// gate on in shared CI runners, and they are exactly what the PR-3
// pooled code paths must not lose.
//
//	go test -run '^$' -bench "$(go run ./cmd/benchgate -baseline BENCH_pr3.json -pattern)" \
//	        -benchtime 1x -benchmem -count=2 ./... | \
//	    go run ./cmd/benchgate -baseline BENCH_pr3.json
//
// With -count=2 each benchmark runs twice in one process; benchgate takes
// the minimum allocs/op across runs, so one-shot pool warm-up (the first
// iteration fills the sync.Pools the steady state reuses) does not read
// as a regression. The tolerance — allocs may not exceed base + base/4 + 2
// — absorbs residual cold-path noise while still catching any real
// de-pooling: removing the SOAP encoder's buffer pool, for instance,
// moves 1 alloc/op to 8 and trips the gate.
//
// Baseline entries may additionally (or instead) declare "ns_ceiling":
// an absolute ns/op bound for latency-target benchmarks — the binary
// fast path's cross-home-call and peer-propagate budgets. Entries gated
// only on a ceiling set "allocs_op": -1, and the run feeding them must
// use a real -benchtime so ns/op is a steady-state average.
//
// -snapshot FILE additionally writes the parsed run in the BENCH_prN.json
// format, for committing a PR's numbers.
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"regexp"
	"sort"
	"strconv"
	"strings"
)

// baselineFile mirrors the BENCH_prN.json layout (extra fields ignored).
type baselineFile struct {
	Benchmarks map[string]benchNumbers `json:"benchmarks"`
	// Gate names the benchmarks to guard. When absent, every benchmark
	// in the snapshot is guarded — but wire-path benchmarks dial fresh
	// connections every `go test` process, so their 1x-iteration alloc
	// counts are not gateable; snapshots list them for the record and
	// name the deterministic pooled paths here.
	Gate []string `json:"gate"`
}

// guarded returns the benchmark set the gate compares, keyed by name.
func (f baselineFile) guarded() (map[string]benchNumbers, error) {
	if len(f.Gate) == 0 {
		return f.Benchmarks, nil
	}
	out := make(map[string]benchNumbers, len(f.Gate))
	for _, name := range f.Gate {
		n, ok := f.Benchmarks[name]
		if !ok {
			return nil, fmt.Errorf("benchgate: gate entry %q has no baseline numbers", name)
		}
		out[name] = n
	}
	return out, nil
}

type benchNumbers struct {
	NsOp     float64 `json:"ns_op"`
	BytesOp  int64   `json:"bytes_op"`
	AllocsOp int64   `json:"allocs_op"`
	// NsCeiling, when set in a baseline, gates the benchmark's measured
	// ns/op against an absolute latency target (a paper- or design-level
	// bound like "cross-home call under 10µs") instead of a relative
	// regression margin. Wire-path benchmarks use it with allocs_op: -1,
	// since their alloc counts at -benchtime 1x are not deterministic;
	// runs feeding a ceiling-gated baseline must use a real -benchtime so
	// ns/op is a steady-state average, not one cold iteration.
	NsCeiling float64 `json:"ns_ceiling,omitempty"`
}

// trailingProcs strips the -GOMAXPROCS suffix from a benchmark name.
var trailingProcs = regexp.MustCompile(`-\d+$`)

// parseBench folds bench output into per-benchmark minima across -count
// repetitions (and across packages, though names do not collide here).
// Lines are parsed field-wise — "<name> <iters> <value> <unit> ..." —
// so custom b.ReportMetric units (wire-B/op and friends) pass through
// harmlessly.
func parseBench(r io.Reader) (map[string]benchNumbers, string, error) {
	out := make(map[string]benchNumbers)
	cpu := ""
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1024*1024), 1024*1024)
	for sc.Scan() {
		line := sc.Text()
		if rest, ok := strings.CutPrefix(line, "cpu: "); ok {
			cpu = strings.TrimSpace(rest)
			continue
		}
		fields := strings.Fields(line)
		if len(fields) < 4 || !strings.HasPrefix(fields[0], "Benchmark") {
			continue
		}
		if _, err := strconv.ParseInt(fields[1], 10, 64); err != nil {
			continue // not a result line (e.g. "BenchmarkX  \t--- FAIL")
		}
		name := trailingProcs.ReplaceAllString(fields[0], "")
		n := benchNumbers{NsOp: -1, BytesOp: -1, AllocsOp: -1}
		for i := 2; i+1 < len(fields); i += 2 {
			val := fields[i]
			var err error
			switch fields[i+1] {
			case "ns/op":
				n.NsOp, err = strconv.ParseFloat(val, 64)
			case "B/op":
				n.BytesOp, err = strconv.ParseInt(val, 10, 64)
			case "allocs/op":
				n.AllocsOp, err = strconv.ParseInt(val, 10, 64)
			}
			if err != nil {
				// A recognized unit with a garbled value means the bench
				// output is corrupted (truncated pipe, interleaved writes).
				// Swallowing it would read as 0 allocs/op and silently
				// pass the gate, so fail the whole parse instead.
				return nil, cpu, fmt.Errorf("malformed %s value %q in line %q", fields[i+1], val, line)
			}
		}
		if n.NsOp < 0 {
			continue
		}
		if prev, seen := out[name]; seen {
			if prev.NsOp >= 0 && prev.NsOp < n.NsOp {
				n.NsOp = prev.NsOp
			}
			if prev.BytesOp >= 0 && (n.BytesOp < 0 || prev.BytesOp < n.BytesOp) {
				n.BytesOp = prev.BytesOp
			}
			if prev.AllocsOp >= 0 && (n.AllocsOp < 0 || prev.AllocsOp < n.AllocsOp) {
				n.AllocsOp = prev.AllocsOp
			}
		}
		out[name] = n
	}
	return out, cpu, sc.Err()
}

// allocLimit is the gate threshold for a baseline allocation count.
func allocLimit(base int64) int64 { return base + base/4 + 2 }

// gateResult is one guarded benchmark's verdict.
type gateResult struct {
	name           string
	base, got, lim int64
	ceil, ns       float64
	missing        bool
	failed         bool
	nsFailed       bool
}

// gate compares measured minima against the baseline's guarded set: the
// relative allocs/op margin for entries with a non-negative baseline
// count, plus the absolute ns/op ceiling for entries that declare one.
func gate(baseline map[string]benchNumbers, got map[string]benchNumbers) []gateResult {
	names := make([]string, 0, len(baseline))
	for name := range baseline {
		names = append(names, name)
	}
	sort.Strings(names)
	results := make([]gateResult, 0, len(names))
	for _, name := range names {
		b := baseline[name]
		r := gateResult{name: name, base: b.AllocsOp, lim: allocLimit(b.AllocsOp), ceil: b.NsCeiling}
		n, ok := got[name]
		switch {
		case !ok || (b.AllocsOp >= 0 && n.AllocsOp < 0):
			// A guarded benchmark that vanished (or stopped reporting
			// allocations) is a rotted gate, which is itself a failure.
			r.missing, r.failed = true, true
		default:
			r.got, r.ns = n.AllocsOp, n.NsOp
			if b.AllocsOp >= 0 && n.AllocsOp > r.lim {
				r.failed = true
			}
			if r.ceil > 0 && n.NsOp > r.ceil {
				r.nsFailed, r.failed = true, true
			}
		}
		results = append(results, r)
	}
	return results
}

// pattern renders the -bench regex covering every guarded benchmark's
// top-level function (sub-benchmark paths run whole).
func pattern(baseline map[string]benchNumbers) string {
	seen := make(map[string]bool)
	var tops []string
	for name := range baseline {
		top, _, _ := strings.Cut(name, "/")
		if !seen[top] {
			seen[top] = true
			tops = append(tops, top)
		}
	}
	sort.Strings(tops)
	return "^(" + strings.Join(tops, "|") + ")$"
}

func main() {
	baselinePath := flag.String("baseline", "", "baseline BENCH_prN.json to gate against")
	printPattern := flag.Bool("pattern", false, "print the -bench regex for the guarded set and exit")
	snapshotPath := flag.String("snapshot", "", "also write the parsed run to this BENCH_prN.json-style file")
	flag.Parse()

	if *baselinePath == "" {
		fmt.Fprintln(os.Stderr, "benchgate: -baseline is required")
		os.Exit(2)
	}
	data, err := os.ReadFile(*baselinePath)
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchgate:", err)
		os.Exit(2)
	}
	var baseline baselineFile
	if err := json.Unmarshal(data, &baseline); err != nil {
		fmt.Fprintf(os.Stderr, "benchgate: parse %s: %v\n", *baselinePath, err)
		os.Exit(2)
	}
	guarded, err := baseline.guarded()
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}
	if len(guarded) == 0 {
		fmt.Fprintf(os.Stderr, "benchgate: %s guards no benchmarks\n", *baselinePath)
		os.Exit(2)
	}
	if *printPattern {
		fmt.Println(pattern(guarded))
		return
	}

	got, cpu, err := parseBench(os.Stdin)
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchgate:", err)
		os.Exit(2)
	}
	if *snapshotPath != "" {
		if err := writeSnapshot(*snapshotPath, got, cpu); err != nil {
			fmt.Fprintln(os.Stderr, "benchgate:", err)
			os.Exit(2)
		}
	}

	failed := false
	fmt.Printf("benchgate: gating %d benchmarks against %s (limit = base + base/4 + 2 allocs/op; ns_ceiling absolute)\n",
		len(guarded), *baselinePath)
	for _, r := range gate(guarded, got) {
		if r.missing {
			failed = true
			fmt.Printf("  FAIL %-44s guarded benchmark missing from run\n", r.name)
			continue
		}
		if r.base >= 0 {
			if r.got > r.lim {
				failed = true
				fmt.Printf("  FAIL %-44s allocs/op %d > limit %d (baseline %d)\n", r.name, r.got, r.lim, r.base)
			} else {
				fmt.Printf("  ok   %-44s allocs/op %d <= limit %d (baseline %d)\n", r.name, r.got, r.lim, r.base)
			}
		}
		if r.ceil > 0 {
			if r.nsFailed {
				failed = true
				fmt.Printf("  FAIL %-44s ns/op %.0f > ceiling %.0f\n", r.name, r.ns, r.ceil)
			} else {
				fmt.Printf("  ok   %-44s ns/op %.0f <= ceiling %.0f\n", r.name, r.ns, r.ceil)
			}
		}
	}
	if failed {
		fmt.Println("benchgate: regression detected")
		os.Exit(1)
	}
	fmt.Println("benchgate: no regressions")
}

// writeSnapshot renders the parsed run in the committed-snapshot layout.
func writeSnapshot(path string, got map[string]benchNumbers, cpu string) error {
	names := make([]string, 0, len(got))
	for name := range got {
		names = append(names, name)
	}
	sort.Strings(names)
	var b strings.Builder
	b.WriteString("{\n")
	if cpu != "" {
		fmt.Fprintf(&b, "  %q: %q,\n", "cpu", cpu)
	}
	b.WriteString("  \"benchmarks\": {\n")
	for i, name := range names {
		n := got[name]
		fmt.Fprintf(&b, "    %q: { \"ns_op\": %g, \"bytes_op\": %d, \"allocs_op\": %d }",
			name, n.NsOp, n.BytesOp, n.AllocsOp)
		if i < len(names)-1 {
			b.WriteString(",")
		}
		b.WriteString("\n")
	}
	b.WriteString("  }\n}\n")
	return os.WriteFile(path, []byte(b.String()), 0o644)
}
