// Command stubgen generates a typed Go client from a WSDL service
// description — the compile-time counterpart of the framework's runtime
// proxy generation (Javassist in the paper's prototype).
//
//	stubgen -pkg vcrstub -o vcr_client.go vcr.wsdl
//	homectl describe havi:vcr-vcr1   # WSDL lives in the repository
package main

import (
	"flag"
	"fmt"
	"log"
	"os"

	"homeconnect/internal/stubgen"
	"homeconnect/internal/wsdl"
)

func main() {
	pkg := flag.String("pkg", "stubs", "package name for the generated file")
	out := flag.String("o", "", "output file (stdout if empty)")
	flag.Parse()
	if flag.NArg() != 1 {
		fmt.Fprintln(os.Stderr, "usage: stubgen [-pkg name] [-o file] <wsdl-file>")
		os.Exit(2)
	}
	raw, err := os.ReadFile(flag.Arg(0))
	if err != nil {
		log.Fatal(err)
	}
	doc, err := wsdl.Parse(raw)
	if err != nil {
		log.Fatal(err)
	}
	src, err := stubgen.Generate(doc, stubgen.Options{Package: *pkg})
	if err != nil {
		log.Fatal(err)
	}
	if *out == "" {
		_, _ = os.Stdout.Write(src)
		return
	}
	if err := os.WriteFile(*out, src, 0o644); err != nil {
		log.Fatal(err)
	}
	fmt.Fprintf(os.Stderr, "stubgen: wrote %s\n", *out)
}
