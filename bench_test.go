// Benchmark harness for the reproduction. One benchmark (family) per
// experiment in DESIGN.md §4. The paper itself reports no quantitative
// results, so these benchmarks quantify the qualitative claims its text
// makes: bridged calls cost more than native ones but stay interactive;
// SOAP is small and cheap enough for appliance control; pairwise bridges
// scale quadratically while the framework scales linearly; HTTP long-poll
// loses to push on event latency; and the repository's change watch
// (E12) beats TTL polling on both staleness and registry load.
package homeconnect

import (
	"context"
	"fmt"
	"io"
	"log"
	"os"
	"sync"
	"testing"
	"time"

	"homeconnect/internal/bridge/jinipcm"
	"homeconnect/internal/core"
	"homeconnect/internal/core/audit"
	"homeconnect/internal/core/events"
	"homeconnect/internal/core/identity"
	"homeconnect/internal/core/pcm"
	"homeconnect/internal/core/scene"
	"homeconnect/internal/core/vsg"
	"homeconnect/internal/core/vsr"
	"homeconnect/internal/jini"
	"homeconnect/internal/service"
	"homeconnect/internal/sim"
	"homeconnect/internal/soap"
	"homeconnect/internal/transport"
	"homeconnect/internal/uddi"
	"homeconnect/internal/x10"
)

// benchHome builds a simulated home once per benchmark.
func benchHome(b *testing.B, cfg sim.Config, minServices int) *sim.Home {
	b.Helper()
	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancel()
	h, err := sim.NewHome(ctx, cfg)
	if err != nil {
		b.Fatalf("NewHome: %v", err)
	}
	b.Cleanup(h.Close)
	if err := h.WaitForServices(ctx, minServices); err != nil {
		b.Fatalf("WaitForServices: %v", err)
	}
	return h
}

// --- E1 / Figure 1: any-to-any federation call ------------------------

// BenchmarkFigure1FederationCall measures one cross-middleware control
// call: a client on the Jini network reads the X10 lamp level through
// VSR resolution + SOAP + the X10 PCM.
func BenchmarkFigure1FederationCall(b *testing.B) {
	h := benchHome(b, sim.Config{Jini: true, X10: true}, 2)
	gw := h.Fed.Network("jini-net").Gateway()
	ctx := context.Background()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := gw.Call(ctx, "x10:lamp-1", "Level", nil); err != nil {
			b.Fatal(err)
		}
	}
}

// --- E2 / Figure 2: proxy module overhead ------------------------------

// BenchmarkFigure2NativeJiniCall is the baseline: a Jini client calling a
// Jini service directly, no framework involved.
func BenchmarkFigure2NativeJiniCall(b *testing.B) {
	h := benchHome(b, sim.Config{Jini: true}, 1)
	ctx := context.Background()
	reg, err := jini.Discover(ctx, h.Lookup.Addr())
	if err != nil {
		b.Fatal(err)
	}
	items, err := reg.Lookup(ctx, jini.ServiceTemplate{IfaceName: "Laserdisc"})
	if err != nil || len(items) != 1 {
		b.Fatalf("lookup: %v %v", items, err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := jini.Call(ctx, items[0].Proxy, "State", nil); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFigure2ClientProxy measures the CP direction: the federation
// calling the native Jini Laserdisc through the Jini PCM.
func BenchmarkFigure2ClientProxy(b *testing.B) {
	h := benchHome(b, sim.Config{Jini: true, X10: true}, 2)
	// Call from the X10 network so the full SOAP path is exercised.
	gw := h.Fed.Network("x10-net").Gateway()
	ctx := context.Background()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := gw.Call(ctx, "jini:laserdisc-1", "State", nil); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFigure2ServerProxy measures the SP direction: an unmodified
// Jini client calling the X10 lamp through the planted Jini proxy
// (Jini RMI-sim → PCM → SOAP → X10 PCM → CM11A → powerline).
func BenchmarkFigure2ServerProxy(b *testing.B) {
	h := benchHome(b, sim.Config{Jini: true, X10: true}, 2)
	ctx := context.Background()
	reg, err := jini.Discover(ctx, h.Lookup.Addr())
	if err != nil {
		b.Fatal(err)
	}
	var proxy jini.ProxyDescriptor
	deadline := time.Now().Add(15 * time.Second)
	for {
		items, err := reg.Lookup(ctx, jini.ServiceTemplate{IfaceName: "X10Lamp"})
		if err == nil && len(items) == 1 {
			proxy = items[0].Proxy
			break
		}
		if time.Now().After(deadline) {
			b.Fatal("X10 lamp proxy never appeared in Jini lookup")
		}
		time.Sleep(25 * time.Millisecond)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := jini.Call(ctx, proxy, "Level", nil); err != nil {
			b.Fatal(err)
		}
	}
}

// --- E3 / Figure 3: cross-middleware latency matrix ---------------------

// BenchmarkFigure3CrossMatrix measures a read call from each network to
// each other middleware's service — the latency matrix of the full
// prototype.
func BenchmarkFigure3CrossMatrix(b *testing.B) {
	h := benchHome(b, sim.Prototype(), 7)
	ctx := context.Background()
	targets := []struct {
		id, op string
	}{
		{"jini:laserdisc-1", "State"},
		{"x10:lamp-1", "Level"},
		{"havi:vcr-vcr1", "State"},
	}
	for _, netName := range h.Fed.Networks() {
		gw := h.Fed.Network(netName).Gateway()
		for _, target := range targets {
			b.Run(fmt.Sprintf("%s_to_%s", netName, target.id), func(b *testing.B) {
				for i := 0; i < b.N; i++ {
					if _, err := gw.Call(ctx, target.id, target.op, nil); err != nil {
						b.Fatal(err)
					}
				}
			})
		}
	}
}

// --- E4 / Figure 4: Jini → X10 full conversion, write path --------------

// BenchmarkFigure4JiniToX10 measures the full Figure 4 transaction: a
// Jini client switching the X10 lamp, including CM11A serial handshakes
// and powerline frames.
func BenchmarkFigure4JiniToX10(b *testing.B) {
	h := benchHome(b, sim.Config{Jini: true, X10: true}, 2)
	ctx := context.Background()
	reg, err := jini.Discover(ctx, h.Lookup.Addr())
	if err != nil {
		b.Fatal(err)
	}
	var proxy jini.ProxyDescriptor
	deadline := time.Now().Add(15 * time.Second)
	for {
		items, err := reg.Lookup(ctx, jini.ServiceTemplate{IfaceName: "X10Lamp"})
		if err == nil && len(items) == 1 {
			proxy = items[0].Proxy
			break
		}
		if time.Now().After(deadline) {
			b.Fatal("lamp proxy missing")
		}
		time.Sleep(25 * time.Millisecond)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		op := "On"
		if i%2 == 1 {
			op = "Off"
		}
		if _, err := jini.Call(ctx, proxy, op, nil); err != nil {
			b.Fatal(err)
		}
	}
}

// --- E5 / Figure 5: Universal Remote Controller -------------------------

// BenchmarkFigure5RemotePress measures a remote keypress round trip:
// powerline frame → CM11A upload → X10 PCM binding → SOAP → Jini PCM →
// RMI-sim → Laserdisc state change.
func BenchmarkFigure5RemotePress(b *testing.B) {
	h := benchHome(b, sim.Prototype(), 7)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		fn, want := x10.On, "playing"
		if i%2 == 1 {
			fn, want = x10.Off, "stopped"
		}
		if err := h.Remote.Press(sim.RemoteLaserdiscUnit, fn); err != nil {
			b.Fatal(err)
		}
		for h.Laserdisc.State() != want {
			time.Sleep(500 * time.Microsecond)
		}
	}
}

// --- E6 / §4.1: SOAP cost vs the RMI-sim baseline ------------------------

func benchCall() soap.Call {
	return soap.Call{
		Namespace: "urn:homeconnect:bench:svc",
		Operation: "SetLevel",
		Args: []soap.Arg{
			{Name: "level", Value: service.IntValue(42)},
			{Name: "fade", Value: service.BoolValue(true)},
		},
	}
}

// BenchmarkSOAPEncode measures envelope serialization and reports the
// message size the paper calls "light-weight for network".
func BenchmarkSOAPEncode(b *testing.B) {
	call := benchCall()
	data, err := soap.EncodeCall(call)
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := soap.EncodeCall(call); err != nil {
			b.Fatal(err)
		}
	}
	// After the loop: ResetTimer discards user metrics set before it.
	b.ReportMetric(float64(len(data)), "wire-B/op")
}

// BenchmarkSOAPDecode measures envelope parsing.
func BenchmarkSOAPDecode(b *testing.B) {
	data, err := soap.EncodeCall(benchCall())
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := soap.DecodeCall(data); err != nil {
			b.Fatal(err)
		}
	}
}

// echoRig builds two gateways on one repository with an integer echo
// service exported on the first — the minimal inter-VSG call shape shared
// by the wire and loopback round-trip benchmarks.
func echoRig(b *testing.B) (caller, exporter *vsg.VSG, warmArgs []service.Value) {
	b.Helper()
	srv, err := vsr.StartServer("127.0.0.1:0")
	if err != nil {
		b.Fatal(err)
	}
	b.Cleanup(srv.Close)
	gw1 := vsg.New("a", srv.URL())
	gw2 := vsg.New("b", srv.URL())
	if err := gw1.Start("127.0.0.1:0"); err != nil {
		b.Fatal(err)
	}
	b.Cleanup(gw1.Close)
	if err := gw2.Start("127.0.0.1:0"); err != nil {
		b.Fatal(err)
	}
	b.Cleanup(gw2.Close)
	ctx := context.Background()
	desc := service.Description{
		ID: "bench:echo", Name: "echo", Middleware: "bench",
		Interface: service.Interface{Name: "Echo", Operations: []service.Operation{
			{Name: "Echo", Inputs: []service.Parameter{{Name: "v", Type: service.KindInt}}, Output: service.KindInt},
		}},
	}
	inv := service.InvokerFunc(func(_ context.Context, _ string, args []service.Value) (service.Value, error) {
		return args[0], nil
	})
	if err := gw1.Export(ctx, desc, inv); err != nil {
		b.Fatal(err)
	}
	arg := []service.Value{service.IntValue(7)}
	if _, err := gw2.Call(ctx, "bench:echo", "Echo", arg); err != nil {
		b.Fatal(err)
	}
	return gw2, gw1, arg
}

// BenchmarkSOAPRoundTrip measures a full SOAP/HTTP RPC between two
// gateways — the inter-VSG wire hop. Loopback is disabled so the paper's
// protocol stays the thing measured.
func BenchmarkSOAPRoundTrip(b *testing.B) {
	gw, _, arg := echoRig(b)
	gw.SetLoopbackEnabled(false)
	ctx := context.Background()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := gw.Call(ctx, "bench:echo", "Echo", arg); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkLoopbackCall measures the same resolved federation call taking
// the in-process loopback fast path: VSR resolution and argument
// validation still run, HTTP and the SOAP codec do not. Compare against
// BenchmarkSOAPRoundTrip (same rig) or BenchmarkFigure1FederationCall
// (the full prototype's wire path).
func BenchmarkLoopbackCall(b *testing.B) {
	gw, _, arg := echoRig(b)
	ctx := context.Background()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := gw.Call(ctx, "bench:echo", "Echo", arg); err != nil {
			b.Fatal(err)
		}
	}
	b.StopTimer()
	if _, out, loop := gw.Stats(); loop == 0 || loop != out {
		b.Fatalf("loopback hits = %d of %d outbound calls; the fast path was not measured", loop, out)
	}
}

// BenchmarkAuditAppend measures one audit record append on a memory-only
// log: canonical encode, chain hash, ring insert, and — every batch-size
// records — a Merkle seal, amortized into the mean.
func BenchmarkAuditAppend(b *testing.B) {
	l, err := audit.New(audit.Options{})
	if err != nil {
		b.Fatal(err)
	}
	b.Cleanup(func() { _ = l.Close() })
	ev := audit.Event{
		Type: audit.CallAdmit, Face: "vsg:bench", Home: "home-a",
		Caller: "home-b", Service: "bench:echo", Op: "Echo", Detail: "wire",
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		l.Record(ev)
	}
	b.StopTimer()
	if l.Seq() != uint64(b.N) {
		b.Fatalf("recorded %d of %d appends", l.Seq(), b.N)
	}
}

// BenchmarkCallWithAudit is BenchmarkLoopbackCall with the audit plane
// on: the delta between the two is what auditing costs the call fast
// path (one call.admit append per dispatch). With auditing off that cost
// must be zero — BenchmarkLoopbackCall's 0 allocs/op stays gated.
func BenchmarkCallWithAudit(b *testing.B) {
	caller, exporter, arg := echoRig(b)
	l, err := audit.New(audit.Options{})
	if err != nil {
		b.Fatal(err)
	}
	b.Cleanup(func() { _ = l.Close() })
	exporter.SetAudit(l)
	caller.SetAudit(l)
	ctx := context.Background()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := caller.Call(ctx, "bench:echo", "Echo", arg); err != nil {
			b.Fatal(err)
		}
	}
	b.StopTimer()
	if l.Seq() == 0 {
		b.Fatal("no audit records on the call path")
	}
}

// benchRegistryEntry is the registration payload the durability
// benchmarks write — a realistic service record, not a minimal one.
func benchRegistryEntry() uddi.Entry {
	return uddi.Entry{
		Name:        "bench:lamp-1",
		Description: "benchmark registration",
		AccessPoint: "http://gw.example/services/bench:lamp-1",
		TModel:      "tmodel:bench",
		Categories:  map[string]string{"room": "den", "kind": "bench"},
	}
}

// BenchmarkJournalAppend is the in-memory baseline for the WAL: one
// registry Save (shard write + change-journal ring append) with no
// persistence armed. BenchmarkWALAppend is gated against staying within
// 2 allocs/op of this.
func BenchmarkJournalAppend(b *testing.B) {
	reg := uddi.NewManualServer()
	b.Cleanup(reg.Close)
	entry := benchRegistryEntry()
	key := reg.Save(entry, time.Hour)
	entry.Key = key
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		reg.Save(entry, time.Hour)
	}
	b.StopTimer()
	if reg.Seq() < uint64(b.N) {
		b.Fatalf("journal advanced %d of %d saves", reg.Seq(), b.N)
	}
}

// BenchmarkWALAppend is the same Save with the write-ahead log armed,
// fsync off: the added cost is one CRC-framed record encode into a
// reused scratch buffer and one fd write before acknowledgment.
func BenchmarkWALAppend(b *testing.B) {
	reg, err := uddi.NewManualDurableServer(uddi.DurabilityOptions{
		Dir: b.TempDir(), Fsync: uddi.FsyncOff, SnapshotEvery: -1,
	})
	if err != nil {
		b.Fatal(err)
	}
	b.Cleanup(reg.Close)
	entry := benchRegistryEntry()
	entry.Key = reg.Save(entry, time.Hour)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		reg.Save(entry, time.Hour)
	}
	b.StopTimer()
	if d := reg.Durability(); d.Appends < uint64(b.N) || d.LastError != "" {
		b.Fatalf("WAL appended %d of %d saves (last error %q)", d.Appends, b.N, d.LastError)
	}
}

// BenchmarkBootReplay measures recovery: opening a data directory whose
// WAL holds ~1024 records and rebuilding registry state, journal ring
// and sequence from it — the fixed cost a restart pays before serving.
func BenchmarkBootReplay(b *testing.B) {
	dir := b.TempDir()
	opts := uddi.DurabilityOptions{Dir: dir, Fsync: uddi.FsyncOff, SnapshotEvery: -1}
	seed, err := uddi.NewManualDurableServer(opts)
	if err != nil {
		b.Fatal(err)
	}
	entry := benchRegistryEntry()
	for i := 0; i < 1024; i++ {
		e := entry
		e.Name = fmt.Sprintf("bench:dev-%d", i)
		seed.Save(e, time.Hour)
	}
	seed.Close() // sync + close, no clean marker: every boot replays
	// Recovery logs one line per unclean open — b.N times here.
	log.SetOutput(io.Discard)
	b.Cleanup(func() { log.SetOutput(os.Stderr) })
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		reg, err := uddi.NewManualDurableServer(opts)
		if err != nil {
			b.Fatal(err)
		}
		if reg.Len() != 1024 {
			b.Fatalf("replay restored %d of 1024 entries", reg.Len())
		}
		reg.Close()
	}
}

// BenchmarkRMISimRoundTrip is the binary-protocol baseline for E6: the
// same echo shape over the Jini RMI simulation.
func BenchmarkRMISimRoundTrip(b *testing.B) {
	ex := jini.NewExporter()
	if err := ex.Start("127.0.0.1:0"); err != nil {
		b.Fatal(err)
	}
	defer ex.Close()
	spec := jini.InterfaceSpec{Name: "Echo", Methods: []jini.MethodSpec{
		{Name: "Echo", Params: []string{"int"}, Return: "int"},
	}}
	proxy := ex.Export(spec, jini.InvocableFunc(func(_ string, args []any) (any, error) {
		return args[0], nil
	}))
	ctx := context.Background()
	args := []any{int64(7)}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := jini.Call(ctx, proxy, "Echo", args); err != nil {
			b.Fatal(err)
		}
	}
}

// --- E7 / §4.2: event delivery, long-poll vs push ------------------------

// BenchmarkEventLongPoll measures publish→deliver latency when the
// consumer long-polls over HTTP (the best plain client/server HTTP can
// do, per §4.2).
func BenchmarkEventLongPoll(b *testing.B) {
	hub, client := benchHub(b)
	ctx := context.Background()
	var cursor uint64
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		type out struct {
			n    int
			next uint64
		}
		done := make(chan out, 1)
		go func(since uint64) {
			evs, next, _ := client.Poll(ctx, since, "bench", 5*time.Second)
			done <- out{len(evs), next}
		}(cursor)
		// Give the poll time to park server-side, as a steady-state
		// poller would be parked when the event fires.
		time.Sleep(100 * time.Microsecond)
		hub.Publish(service.Event{Source: "bench", Topic: "bench", Seq: uint64(i)})
		o := <-done
		if o.n == 0 {
			b.Fatal("poll returned no events")
		}
		cursor = o.next
	}
}

// BenchmarkEventPush measures publish→deliver latency over a push
// subscription (HTTP callback).
func BenchmarkEventPush(b *testing.B) {
	hub, client := benchHub(b)
	ctx := context.Background()
	var mu sync.Mutex
	delivered := make(chan struct{}, 64)
	recv, err := events.NewPushReceiver(func(service.Event) {
		mu.Lock()
		mu.Unlock()
		delivered <- struct{}{}
	})
	if err != nil {
		b.Fatal(err)
	}
	defer recv.Close()
	sid, err := client.Subscribe(ctx, recv.URL(), "bench")
	if err != nil {
		b.Fatal(err)
	}
	defer func() { _ = client.Unsubscribe(ctx, sid) }()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		hub.Publish(service.Event{Source: "bench", Topic: "bench", Seq: uint64(i)})
		<-delivered
	}
}

func benchHub(b *testing.B) (*events.Hub, *events.Client) {
	b.Helper()
	srv, err := vsr.StartServer("127.0.0.1:0") // unused, keeps symmetry cheap
	if err != nil {
		b.Fatal(err)
	}
	b.Cleanup(srv.Close)
	gw := vsg.New("bench", srv.URL())
	if err := gw.Start("127.0.0.1:0"); err != nil {
		b.Fatal(err)
	}
	b.Cleanup(gw.Close)
	return gw.Hub(), &events.Client{BaseURL: gw.EventsURL()}
}

// --- E8 / §5: framework vs pairwise bridge scaling -----------------------

// BenchmarkBridgeScaling measures steady-state cross-middleware call
// latency as the number of connected middleware grows, and reports the
// adapter counts: N for the framework vs N(N-1)/2 pairwise.
func BenchmarkBridgeScaling(b *testing.B) {
	for _, n := range []int{2, 4, 8} {
		b.Run(fmt.Sprintf("N=%d", n), func(b *testing.B) {
			fed, err := core.NewFederation()
			if err != nil {
				b.Fatal(err)
			}
			defer fed.Close()
			// E8 measures cross-middleware wire scaling (adapter counts
			// and TCP behavior); keep loopback out of the measurement.
			fed.SetLoopback(false)
			ctx := context.Background()
			for i := 0; i < n; i++ {
				name := fmt.Sprintf("mw%d", i)
				net, err := fed.AddNetwork(name)
				if err != nil {
					b.Fatal(err)
				}
				if err := net.Attach(ctx, newBenchPCM(name)); err != nil {
					b.Fatal(err)
				}
			}
			deadline := time.Now().Add(30 * time.Second)
			for {
				remotes, err := fed.Services(ctx)
				if err == nil && len(remotes) == n {
					break
				}
				if time.Now().After(deadline) {
					b.Fatal("services missing")
				}
				time.Sleep(10 * time.Millisecond)
			}
			gw := fed.Network("mw0").Gateway()
			arg := []service.Value{service.StringValue("x")}
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				id := fmt.Sprintf("mw%d:echo", 1+i%(n-1))
				if _, err := gw.Call(ctx, id, "Echo", arg); err != nil {
					b.Fatal(err)
				}
			}
			b.ReportMetric(float64(n), "framework-adapters")
			b.ReportMetric(float64(n*(n-1)/2), "pairwise-bridges")
		})
	}
}

// benchPCM is the E8 synthetic middleware adapter.
type benchPCM struct {
	name   string
	runner pcm.Runner
}

func newBenchPCM(name string) *benchPCM { return &benchPCM{name: name} }

func (s *benchPCM) Middleware() string { return s.name }

func (s *benchPCM) Start(ctx context.Context, gw *vsg.VSG) error {
	runCtx := s.runner.Start(ctx)
	exp := &pcm.Exporter{List: func(context.Context) ([]pcm.LocalService, error) {
		desc := service.Description{
			ID: s.name + ":echo", Name: "echo", Middleware: s.name,
			Interface: service.Interface{Name: "Echo", Operations: []service.Operation{
				{Name: "Echo", Inputs: []service.Parameter{{Name: "v", Type: service.KindString}}, Output: service.KindString},
			}},
		}
		inv := service.InvokerFunc(func(_ context.Context, _ string, args []service.Value) (service.Value, error) {
			return args[0], nil
		})
		return []pcm.LocalService{{Desc: desc, Invoker: inv}}, nil
	}}
	s.runner.Go(func() { exp.Run(runCtx, gw) })
	return nil
}

func (s *benchPCM) Stop() error {
	s.runner.Stop()
	return nil
}

// --- E9 / §3.3: VSR registration and discovery ---------------------------

// BenchmarkVSRRegister measures service publication (WSDL generation +
// UDDI save).
func BenchmarkVSRRegister(b *testing.B) {
	srv, err := vsr.StartServer("127.0.0.1:0")
	if err != nil {
		b.Fatal(err)
	}
	defer srv.Close()
	v := vsr.New(srv.URL())
	ctx := context.Background()
	desc := service.Description{
		ID: "bench:svc", Name: "svc", Middleware: "bench",
		Interface: service.Interface{Name: "Svc", Operations: []service.Operation{
			{Name: "Ping", Output: service.KindVoid},
		}},
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := v.Register(ctx, desc, "http://h/1"); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkVSRFind measures repository inquiries without gateway caching.
func BenchmarkVSRFind(b *testing.B) {
	srv, err := vsr.StartServer("127.0.0.1:0")
	if err != nil {
		b.Fatal(err)
	}
	defer srv.Close()
	v := vsr.New(srv.URL())
	ctx := context.Background()
	for i := 0; i < 16; i++ {
		desc := service.Description{
			ID: fmt.Sprintf("bench:svc%d", i), Name: "svc", Middleware: "bench",
			Interface: service.Interface{Name: "Svc", Operations: []service.Operation{
				{Name: "Ping", Output: service.KindVoid},
			}},
		}
		if _, err := v.Register(ctx, desc, "http://h/1"); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := v.Lookup(ctx, "bench:svc7"); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkVSRFindCached measures the same resolution through a gateway's
// resolve cache — the caching ablation of DESIGN.md §7.
func BenchmarkVSRFindCached(b *testing.B) {
	srv, err := vsr.StartServer("127.0.0.1:0")
	if err != nil {
		b.Fatal(err)
	}
	defer srv.Close()
	gw := vsg.New("bench", srv.URL())
	if err := gw.Start("127.0.0.1:0"); err != nil {
		b.Fatal(err)
	}
	defer gw.Close()
	ctx := context.Background()
	desc := service.Description{
		ID: "bench:svc", Name: "svc", Middleware: "bench",
		Interface: service.Interface{Name: "Svc", Operations: []service.Operation{
			{Name: "Ping", Output: service.KindVoid},
		}},
	}
	v := vsr.New(srv.URL())
	if _, err := v.Register(ctx, desc, "http://h/1"); err != nil {
		b.Fatal(err)
	}
	gw.SetCacheTTL(time.Hour)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := gw.Resolve(ctx, "bench:svc"); err != nil {
			b.Fatal(err)
		}
	}
}

// --- E12: VSR watch subsystem — push vs poll ----------------------------

// BenchmarkVSRWatchPropagate measures change-propagation latency through
// the repository's watch stream: one registration update → journal →
// long-poll wake → delta on the watcher's channel. This is the push
// counterpart of the TTL staleness window (up to the full cache TTL)
// that gateways paid under the poll model.
func BenchmarkVSRWatchPropagate(b *testing.B) {
	srv, err := vsr.StartServer("127.0.0.1:0")
	if err != nil {
		b.Fatal(err)
	}
	defer srv.Close()
	v := vsr.New(srv.URL())
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	desc := service.Description{
		ID: "bench:svc", Name: "svc", Middleware: "bench",
		Interface: service.Interface{Name: "Svc", Operations: []service.Operation{
			{Name: "Ping", Output: service.KindVoid},
		}},
	}
	if _, err := v.Register(ctx, desc, "http://h/1"); err != nil {
		b.Fatal(err)
	}
	ch, err := v.Watch(ctx, 0)
	if err != nil {
		b.Fatal(err)
	}
	// Drain the stream-up signal and the pre-registration delta.
	for d := range ch {
		if d.Op == vsr.DeltaAdd || d.Op == vsr.DeltaUpdate {
			break
		}
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := v.Register(ctx, desc, "http://h/1"); err != nil {
			b.Fatal(err)
		}
		for d := range ch {
			if d.Op == vsr.DeltaUpdate || d.Op == vsr.DeltaAdd {
				break
			}
		}
	}
}

// BenchmarkVSRBatchRefresh measures a refresh round for a gateway with N
// exports: the paper's model re-registers each export individually (N
// repository round trips); the batched API renews them all in one.
func BenchmarkVSRBatchRefresh(b *testing.B) {
	const nExports = 16
	setup := func(b *testing.B) (*vsr.VSR, []vsr.Registration, func()) {
		srv, err := vsr.StartServer("127.0.0.1:0")
		if err != nil {
			b.Fatal(err)
		}
		v := vsr.New(srv.URL())
		regs := make([]vsr.Registration, nExports)
		for i := range regs {
			regs[i] = vsr.Registration{
				Desc: service.Description{
					ID: fmt.Sprintf("bench:svc%d", i), Name: "svc", Middleware: "bench",
					Interface: service.Interface{Name: "Svc", Operations: []service.Operation{
						{Name: "Ping", Output: service.KindVoid},
					}},
				},
				Endpoint: "http://h/1",
			}
		}
		return v, regs, srv.Close
	}
	b.Run("PerExport", func(b *testing.B) {
		v, regs, done := setup(b)
		defer done()
		ctx := context.Background()
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			for _, r := range regs {
				if _, err := v.Register(ctx, r.Desc, r.Endpoint); err != nil {
					b.Fatal(err)
				}
			}
		}
		b.ReportMetric(nExports, "round-trips/op")
	})
	b.Run("Batched", func(b *testing.B) {
		v, regs, done := setup(b)
		defer done()
		ctx := context.Background()
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, err := v.RegisterAll(ctx, regs); err != nil {
				b.Fatal(err)
			}
		}
		b.ReportMetric(1, "round-trips/op")
	})
}

// BenchmarkVSRFindCachedChurn re-runs the E9 cached-resolution benchmark
// under registry churn: a background publisher keeps re-registering other
// services while the gateway resolves one target in a loop. With the
// watch-invalidated cache the target entry stays valid — deltas for other
// services don't touch it — so steady-state resolution makes zero
// repository inquiries regardless of churn or how long the run lasts;
// the TTL sub-benchmark pays a repository inquiry every TTL expiry, and
// shrinking the TTL to bound staleness multiplies that load.
func BenchmarkVSRFindCachedChurn(b *testing.B) {
	run := func(b *testing.B, watch bool) {
		srv, err := vsr.StartServer("127.0.0.1:0")
		if err != nil {
			b.Fatal(err)
		}
		defer srv.Close()
		gw := vsg.New("bench", srv.URL())
		gw.SetWatchEnabled(watch)
		gw.SetCacheTTL(200 * time.Millisecond)
		if err := gw.Start("127.0.0.1:0"); err != nil {
			b.Fatal(err)
		}
		defer gw.Close()
		ctx := context.Background()
		v := vsr.New(srv.URL())
		mkDesc := func(id string) service.Description {
			return service.Description{
				ID: id, Name: "svc", Middleware: "bench",
				Interface: service.Interface{Name: "Svc", Operations: []service.Operation{
					{Name: "Ping", Output: service.KindVoid},
				}},
			}
		}
		if _, err := v.Register(ctx, mkDesc("bench:target"), "http://h/1"); err != nil {
			b.Fatal(err)
		}
		// Churn: other services keep changing in the background.
		churnCtx, stopChurn := context.WithCancel(ctx)
		defer stopChurn()
		go func() {
			for i := 0; churnCtx.Err() == nil; i++ {
				_, _ = v.Register(churnCtx, mkDesc(fmt.Sprintf("bench:churn%d", i%8)), "http://h/2")
				time.Sleep(time.Millisecond)
			}
		}()
		// Warm the cache, and give a watch-enabled gateway time to see
		// the stream come up so hits stop consulting the TTL.
		if _, err := gw.Resolve(ctx, "bench:target"); err != nil {
			b.Fatal(err)
		}
		if watch {
			deadline := time.Now().Add(5 * time.Second)
			for !gw.Health().WatchActive {
				if time.Now().After(deadline) {
					b.Fatal("watch never came up")
				}
				time.Sleep(5 * time.Millisecond)
			}
		}
		_, findsBefore := srv.Registry().Stats()
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, err := gw.Resolve(ctx, "bench:target"); err != nil {
				b.Fatal(err)
			}
		}
		b.StopTimer()
		_, findsAfter := srv.Registry().Stats()
		b.ReportMetric(float64(findsAfter-findsBefore)/float64(b.N), "registry-finds/op")
	}
	b.Run("WatchInvalidated", func(b *testing.B) { run(b, true) })
	b.Run("TTL", func(b *testing.B) { run(b, false) })
}

// --- E10 / §5: UPnP PCM -----------------------------------------------

// BenchmarkUPnPControl measures a federation call into a UPnP device
// through the UPnP PCM (double SOAP: inter-VSG, then UPnP control).
func BenchmarkUPnPControl(b *testing.B) {
	h := benchHome(b, sim.Config{UPnP: true, X10: true}, 2)
	gw := h.Fed.Network("x10-net").Gateway()
	ctx := context.Background()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := gw.Call(ctx, "upnp:porch-SwitchPower", "GetStatus", nil); err != nil {
			b.Fatal(err)
		}
	}
}

// --- E11: scene engine — declarative cross-middleware composition --------

// sceneRig is a two-network federation with an echo service on network
// "b" and the scene engine triggered from network "a"'s hub, so every
// scene action crosses the full VSR + SOAP path between gateways.
func sceneRig(b *testing.B) (*core.Federation, *events.Hub, chan scene.Record) {
	b.Helper()
	fed, err := core.NewFederation()
	if err != nil {
		b.Fatal(err)
	}
	b.Cleanup(fed.Close)
	ctx := context.Background()
	netA, err := fed.AddNetwork("a")
	if err != nil {
		b.Fatal(err)
	}
	netB, err := fed.AddNetwork("b")
	if err != nil {
		b.Fatal(err)
	}
	desc := service.Description{
		ID: "bench:echo", Name: "echo", Middleware: "bench",
		Interface: service.Interface{Name: "Echo", Operations: []service.Operation{
			{Name: "Echo", Inputs: []service.Parameter{{Name: "v", Type: service.KindString}}, Output: service.KindString},
		}},
	}
	inv := service.InvokerFunc(func(_ context.Context, _ string, args []service.Value) (service.Value, error) {
		return args[0], nil
	})
	if err := netB.Gateway().Export(ctx, desc, inv); err != nil {
		b.Fatal(err)
	}
	done := make(chan scene.Record, 1024)
	fed.Scenes().SetRunHook(func(r scene.Record) { done <- r })
	return fed, netA.Gateway().Hub(), done
}

func benchScene(name string) *scene.Scene {
	return &scene.Scene{
		Name:     name,
		Triggers: []scene.Trigger{{Topic: "bench.tick", Network: "a"}},
		Guards:   []scene.Guard{{Left: "${trigger.payload.v}", Op: scene.OpNe, Right: ""}},
		Steps: []scene.Step{{
			Kind: scene.StepCall, Name: "echo", Service: "bench:echo", Op: "Echo",
			Timeout: 10 * time.Second,
			Args:    []scene.Arg{{Type: service.KindString, Text: "${trigger.payload.v}"}},
		}},
	}
}

// BenchmarkSceneTrigger measures one full composition firing: event
// publish → trigger match → guard → templated cross-gateway SOAP call →
// run accounting.
func BenchmarkSceneTrigger(b *testing.B) {
	fed, hub, done := sceneRig(b)
	eng := fed.Scenes()
	if err := eng.Load(benchScene("bench")); err != nil {
		b.Fatal(err)
	}
	if err := eng.Start("bench"); err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		hub.Publish(service.Event{
			Source:  "bench",
			Topic:   "bench.tick",
			Payload: map[string]service.Value{"v": service.StringValue("x")},
		})
		rec := <-done
		if rec.Outcome != scene.OutcomeCompleted {
			b.Fatalf("outcome = %s, %v", rec.Outcome, rec.Err)
		}
	}
}

// BenchmarkSceneFanOut measures one event fanning out to N armed scenes,
// each making its own cross-gateway call — the many-compositions load
// shape of a home full of automations.
func BenchmarkSceneFanOut(b *testing.B) {
	for _, n := range []int{4, 16, 64} {
		b.Run(fmt.Sprintf("N=%d", n), func(b *testing.B) {
			fed, hub, done := sceneRig(b)
			eng := fed.Scenes()
			for i := 0; i < n; i++ {
				if err := eng.Load(benchScene(fmt.Sprintf("bench%d", i))); err != nil {
					b.Fatal(err)
				}
			}
			if err := eng.StartAll(); err != nil {
				b.Fatal(err)
			}
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				hub.Publish(service.Event{
					Source:  "bench",
					Topic:   "bench.tick",
					Payload: map[string]service.Value{"v": service.StringValue("x")},
				})
				for j := 0; j < n; j++ {
					rec := <-done
					if rec.Outcome != scene.OutcomeCompleted {
						b.Fatalf("outcome = %s, %v", rec.Outcome, rec.Err)
					}
				}
			}
		})
	}
}

// --- Ablation: metadata-driven proxy generation cost ---------------------

// BenchmarkProxyGeneration measures converting Jini interface metadata to
// a federation interface — the per-discovery cost of automatic proxy
// generation.
func BenchmarkProxyGeneration(b *testing.B) {
	spec := jini.InterfaceSpec{
		Name: "Laserdisc",
		Methods: []jini.MethodSpec{
			{Name: "Play"},
			{Name: "Stop"},
			{Name: "SetChapter", Params: []string{"int"}},
			{Name: "Chapter", Return: "int"},
			{Name: "State", Return: "string"},
		},
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := jinipcm.InterfaceFromSpec(spec); err != nil {
			b.Fatal(err)
		}
	}
}

// --- E13: inter-home federation (PR 4) ----------------------------------

// benchFleet builds n lightweight peered homes: each is a home-named
// federation with one network and one exported echo service
// ("bench:svc-<i>"), and every pair of homes peers in both directions.
// It returns the federations in home order.
func benchFleet(b *testing.B, n int) []*core.Federation {
	b.Helper()
	ctx, cancel := context.WithTimeout(context.Background(), 120*time.Second)
	defer cancel()
	homes := make([]*core.Federation, n)
	for i := range homes {
		fed, err := core.NewHomeFederation(fmt.Sprintf("home-%d", i+1))
		if err != nil {
			b.Fatal(err)
		}
		b.Cleanup(fed.Close)
		homes[i] = fed
		net, err := fed.AddNetwork("net")
		if err != nil {
			b.Fatal(err)
		}
		id := fmt.Sprintf("bench:svc-%d", i+1)
		desc := service.Description{
			ID: id, Name: id, Middleware: "bench",
			Interface: service.Interface{Name: "Echo", Operations: []service.Operation{
				{Name: "Ping", Output: service.KindInt},
			}},
		}
		inv := service.InvokerFunc(func(context.Context, string, []service.Value) (service.Value, error) {
			return service.IntValue(int64(42)), nil
		})
		if err := net.Gateway().Export(ctx, desc, inv); err != nil {
			b.Fatal(err)
		}
	}
	for i, fed := range homes {
		for j, other := range homes {
			if i == j {
				continue
			}
			if err := fed.Peer(other.PeerURL()); err != nil {
				b.Fatal(err)
			}
		}
	}
	// Wait until every home resolves every other home's service.
	for i, fed := range homes {
		gw := fed.Network("net").Gateway()
		for j := range homes {
			if i == j {
				continue
			}
			id := fmt.Sprintf("home-%d/bench:svc-%d", j+1, j+1)
			for {
				if _, err := gw.Resolve(ctx, id); err == nil {
					break
				}
				select {
				case <-ctx.Done():
					b.Fatalf("home-%d never saw %s: %v", i+1, id, ctx.Err())
				case <-time.After(5 * time.Millisecond):
				}
			}
		}
	}
	return homes
}

// BenchmarkPeerPropagate measures inter-home change-propagation latency:
// one registration update in home A → A's journal → A-side watch round →
// scoped re-registration in home B → delta on a B-side watcher. This is
// the federation counterpart of BenchmarkVSRWatchPropagate, and the bound
// behind "callable from home B within one watch round trip".
func BenchmarkPeerPropagate(b *testing.B) {
	homes := benchFleet(b, 2)
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	v := vsr.New(homes[1].VSRURL())
	ch, err := v.Watch(ctx, 0)
	if err != nil {
		b.Fatal(err)
	}
	a := vsr.New(homes[0].VSRURL())
	desc := service.Description{
		ID: "bench:svc-1", Name: "bench:svc-1", Middleware: "bench",
		Interface: service.Interface{Name: "Echo", Operations: []service.Operation{
			{Name: "Ping", Output: service.KindInt},
		}},
	}
	// Drain until the stream is up and quiet.
	for drained := false; !drained; {
		select {
		case <-ch:
		case <-time.After(200 * time.Millisecond):
			drained = true
		}
	}
	endpoint := homes[0].Network("net").Gateway().EndpointFor("bench:svc-1")
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := a.Register(ctx, desc, endpoint); err != nil {
			b.Fatal(err)
		}
		for {
			d, ok := <-ch
			if !ok {
				b.Fatal("watch closed")
			}
			if (d.Op == vsr.DeltaAdd || d.Op == vsr.DeltaUpdate) && d.ServiceID == "home-1/bench:svc-1" {
				break
			}
		}
	}
}

// BenchmarkCrossHomeCall measures one away-from-home control call: home
// B's gateway invoking a service imported from home A, addressed by its
// scoped ID. Both homes share this process, but the home boundary forces
// the call onto the wire — the path a real remote call takes.
func BenchmarkCrossHomeCall(b *testing.B) {
	homes := benchFleet(b, 2)
	gw := homes[1].Network("net").Gateway()
	ctx := context.Background()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := gw.Call(ctx, "home-1/bench:svc-1", "Ping", nil); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFederationHomesScale holds the O(1) resolve claim: with N
// homes fully meshed, the per-call cost of a cross-home call from home 1
// must not grow with N — resolution rides the local (push-maintained)
// registry copy, never a wide-area lookup. N=1 is the in-home baseline
// (a local call, no wire).
func BenchmarkFederationHomesScale(b *testing.B) {
	for _, n := range []int{1, 4, 16} {
		b.Run(fmt.Sprintf("homes=%d", n), func(b *testing.B) {
			homes := benchFleet(b, n)
			gw := homes[0].Network("net").Gateway()
			target := fmt.Sprintf("home-%d/bench:svc-%d", n, n)
			if n == 1 {
				target = "bench:svc-1"
			}
			ctx := context.Background()
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := gw.Call(ctx, target, "Ping", nil); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// --- E14: binary fast-path wire (PR 9) ----------------------------------

// benchSecureFleet is benchFleet with authentication enforced: every
// home gets a generated identity and the fleet trusts itself mutually,
// so framework links negotiate the session-keyed binary fast path.
func benchSecureFleet(b *testing.B, n int) []*core.Federation {
	b.Helper()
	ctx, cancel := context.WithTimeout(context.Background(), 120*time.Second)
	defer cancel()
	homes := make([]*core.Federation, n)
	ids := make([]*identity.Identity, n)
	for i := range homes {
		name := fmt.Sprintf("home-%d", i+1)
		id, err := identity.Generate(name)
		if err != nil {
			b.Fatal(err)
		}
		fed, err := core.NewHomeFederation(name)
		if err != nil {
			b.Fatal(err)
		}
		b.Cleanup(fed.Close)
		if err := fed.SetIdentity(id); err != nil {
			b.Fatal(err)
		}
		homes[i], ids[i] = fed, id
		net, err := fed.AddNetwork("net")
		if err != nil {
			b.Fatal(err)
		}
		svcID := fmt.Sprintf("bench:svc-%d", i+1)
		desc := service.Description{
			ID: svcID, Name: svcID, Middleware: "bench",
			Interface: service.Interface{Name: "Echo", Operations: []service.Operation{
				{Name: "Ping", Output: service.KindInt},
			}},
		}
		inv := service.InvokerFunc(func(context.Context, string, []service.Value) (service.Value, error) {
			return service.IntValue(int64(42)), nil
		})
		if err := net.Gateway().Export(ctx, desc, inv); err != nil {
			b.Fatal(err)
		}
	}
	for i, fed := range homes {
		for j := range homes {
			if i == j {
				continue
			}
			if err := fed.TrustHome(ids[j].Home(), ids[j].PublicKey()); err != nil {
				b.Fatal(err)
			}
		}
	}
	for i, fed := range homes {
		for j, other := range homes {
			if i == j {
				continue
			}
			if err := fed.Peer(other.PeerURL()); err != nil {
				b.Fatal(err)
			}
		}
	}
	for i, fed := range homes {
		gw := fed.Network("net").Gateway()
		for j := range homes {
			if i == j {
				continue
			}
			id := fmt.Sprintf("home-%d/bench:svc-%d", j+1, j+1)
			for {
				if _, err := gw.Resolve(ctx, id); err == nil {
					break
				}
				select {
				case <-ctx.Done():
					b.Fatalf("home-%d never saw %s: %v", i+1, id, ctx.Err())
				case <-time.After(5 * time.Millisecond):
				}
			}
		}
	}
	return homes
}

// BenchmarkBinaryCrossHomeCall is BenchmarkCrossHomeCall with the
// session-keyed binary fast path negotiated: the per-call cost is one
// MAC'd length-prefixed frame each way instead of a signed SOAP/HTTP
// exchange. Target: < 10µs/op (the gate in BENCH_pr9.json).
func BenchmarkBinaryCrossHomeCall(b *testing.B) {
	homes := benchSecureFleet(b, 2)
	gw := homes[1].Network("net").Gateway()
	ctx := context.Background()
	// Warm one call so the session handshake happens outside the
	// measured region, then insist the fast path actually negotiated —
	// a silent SOAP fallback would invalidate the number.
	if _, err := gw.Call(ctx, "home-1/bench:svc-1", "Ping", nil); err != nil {
		b.Fatal(err)
	}
	if !wireHasBinary(homes[1].WireStats()) {
		b.Fatalf("binary fast path not negotiated: %v", homes[1].WireStats())
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := gw.Call(ctx, "home-1/bench:svc-1", "Ping", nil); err != nil {
			b.Fatal(err)
		}
	}
}

// wireHasBinary reports whether any link in ws negotiated the fast path.
func wireHasBinary(ws transport.WireStats) bool {
	for _, ls := range ws {
		if ls.Protocol == "binary" {
			return true
		}
	}
	return false
}

// BenchmarkBinaryPeerPropagate is BenchmarkPeerPropagate over the
// authenticated fleet: registration update in home 1 → watch round over
// the binary wire → delta on a home-2-side watcher. Target: < 100µs/op.
func BenchmarkBinaryPeerPropagate(b *testing.B) {
	homes := benchSecureFleet(b, 2)
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	// With authentication on, each repository's /uddi face is private to
	// its own home: both the watcher and the registering client must
	// carry their home's credentials.
	watchD := transport.NewDialer(homes[1].Auth())
	defer watchD.Close()
	v := vsr.New(homes[1].VSRURL())
	v.SetDialer(watchD)
	ch, err := v.Watch(ctx, 0)
	if err != nil {
		b.Fatal(err)
	}
	regD := transport.NewDialer(homes[0].Auth())
	defer regD.Close()
	a := vsr.New(homes[0].VSRURL())
	a.SetDialer(regD)
	desc := service.Description{
		ID: "bench:svc-1", Name: "bench:svc-1", Middleware: "bench",
		Interface: service.Interface{Name: "Echo", Operations: []service.Operation{
			{Name: "Ping", Output: service.KindInt},
		}},
	}
	for drained := false; !drained; {
		select {
		case <-ch:
		case <-time.After(200 * time.Millisecond):
			drained = true
		}
	}
	endpoint := homes[0].Network("net").Gateway().EndpointFor("bench:svc-1")
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := a.Register(ctx, desc, endpoint); err != nil {
			b.Fatal(err)
		}
		for {
			d, ok := <-ch
			if !ok {
				b.Fatal("watch closed")
			}
			if (d.Op == vsr.DeltaAdd || d.Op == vsr.DeltaUpdate) && d.ServiceID == "home-1/bench:svc-1" {
				break
			}
		}
	}
}

// BenchmarkSessionHandshake prices the signed mutual handshake that
// replaces per-operation signatures: one full dialer↔listener exchange
// (two signatures, two verifications, one ECDH agreement, key
// derivation). Paid once per peer pair per session lifetime instead of
// twice per call.
func BenchmarkSessionHandshake(b *testing.B) {
	aID, err := identity.Generate("cottage")
	if err != nil {
		b.Fatal(err)
	}
	bID, err := identity.Generate("apartment")
	if err != nil {
		b.Fatal(err)
	}
	a := identity.NewAuth("cottage")
	if err := a.SetIdentity(aID); err != nil {
		b.Fatal(err)
	}
	if err := a.Trust(bID.Home(), bID.PublicKey()); err != nil {
		b.Fatal(err)
	}
	bb := identity.NewAuth("apartment")
	if err := bb.SetIdentity(bID); err != nil {
		b.Fatal(err)
	}
	if err := bb.Trust(aID.Home(), aID.PublicKey()); err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		hc, err := a.NewSessionClient()
		if err != nil {
			b.Fatal(err)
		}
		accept, _, err := bb.AcceptSession(hc.Hello())
		if err != nil {
			b.Fatal(err)
		}
		if _, err := hc.Finish(accept); err != nil {
			b.Fatal(err)
		}
	}
}
